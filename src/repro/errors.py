"""Exception hierarchy for the Multiple Worlds library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class MemoryError_(ReproError):
    """Base class for memory-subsystem errors.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class PageFault(MemoryError_):
    """An access touched a virtual page with no mapping."""

    def __init__(self, vpn: int) -> None:
        super().__init__(f"page fault: no mapping for virtual page {vpn}")
        self.vpn = vpn


class ProtectionFault(MemoryError_):
    """A write touched a page mapped read-only (outside COW handling)."""

    def __init__(self, vpn: int) -> None:
        super().__init__(f"protection fault: page {vpn} is read-only")
        self.vpn = vpn


class AddressError(MemoryError_):
    """An address or length was invalid (negative, out of segment, ...)."""


class FileSystemError(ReproError):
    """Errors from the single-level-store file layer."""


class KernelError(ReproError):
    """Base class for simulation-kernel errors."""


class InvalidSyscall(KernelError):
    """A process yielded something the kernel does not understand."""


class ProcessDied(KernelError):
    """An operation referenced a process that no longer exists."""


class DeadlockError(KernelError):
    """The simulation reached a state where no process can make progress."""


class PredicateError(ReproError):
    """Inconsistent or malformed predicate manipulation."""


class SourceAccessError(ReproError):
    """A predicated (speculative) process tried to touch a source device.

    The paper (section 2.4.2) forbids observable side effects while a
    process carries unresolved predicates; in ``strict`` gating mode the
    kernel raises this error instead of blocking the offender.
    """


class WorldsError(ReproError):
    """Errors from the high-level Multiple Worlds block API."""


class AllAlternativesFailed(WorldsError):
    """Every alternative in a block aborted (guard failure or error)."""


class SpawnError(WorldsError):
    """Creating the worlds themselves failed (fork/thread spawn error).

    Raised when the backend cannot even start the block — e.g. ``fork``
    returning ``EAGAIN`` under process-table pressure (or the fault plane
    simulating it). Distinct from alternatives *failing*: a supervisor
    reacts by degrading to the next backend in its fallback chain rather
    than by retrying alternatives.
    """


class BlockTimeout(WorldsError):
    """No alternative synchronized within the parent's TIMEOUT."""


class CheckpointError(ReproError):
    """Checkpoint/restart (rfork) failures."""


class NetworkError(ReproError):
    """Simulated-network failures."""


class TransferError(NetworkError):
    """Base class for per-transfer link failures (all retryable)."""


class TransferDropped(TransferError):
    """The payload was lost in flight; the sender times out waiting."""


class LinkPartitioned(TransferError):
    """The link is inside a deterministic flap/partition window."""


class TransferCorrupted(TransferError):
    """The receiver rejected a payload whose checksum did not match."""


class RetriesExhausted(NetworkError):
    """A bounded-retry loop gave up without a successful delivery.

    ``__cause__`` carries the final attempt's failure; ``attempts`` the
    total number of tries made.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class LeaseExpired(NetworkError):
    """A remote world's lease ran out (missed heartbeats / no renewal)."""


class RemoteNodeDown(NetworkError):
    """The remote node crashed mid-operation (injected or declared)."""


class JournalError(ReproError):
    """Commit-journal failures (malformed frames, protocol misuse)."""


class JournalCrash(ReproError):
    """An injected crash at a journal fault site.

    Raised by :class:`~repro.journal.wal.CommitJournal` (and the release
    loop of :class:`~repro.journal.gate.SourceGate`) when the fault plan
    schedules a crash for the current transaction: the process is
    considered dead at that instant, with only the journal bytes and the
    real device effects surviving. Test harnesses catch it, run
    :func:`repro.journal.recovery.recover` over the survivors, and
    restart.
    """

    def __init__(self, message: str, kind=None, seq: int | None = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.seq = seq


class InputExhausted(ReproError):
    """A source device was read past the end of its scripted input.

    Raised by :class:`~repro.devices.teletype.Teletype` instead of the
    old silent ``b""`` so a predicated caller cannot mistake "no more
    script" for real data. The kernel rethrows it inside the reading
    program.
    """


class ServeError(ReproError):
    """Errors from the multi-tenant speculation service (``repro.serve``)."""


class AdmissionRejected(ServeError):
    """The admission queue refused a request (backpressure).

    Raised at submit time when the tenant's queue — or the global queue —
    is at its bound. ``retry_after_s`` is the service's backpressure
    hint: an estimate of when capacity will next free up, suitable for a
    client-side backoff.
    """

    def __init__(self, message: str, tenant: str = "", retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class QuotaExceeded(ServeError):
    """A reservation asked for more worlds than the tenant's quota allows."""


class ServiceStopped(ServeError):
    """The speculation service is not running (stopped or never started)."""


class ClusterError(ServeError):
    """Errors from the sharded speculation cluster (``repro.cluster``)."""


class NoSurvivingShard(ClusterError):
    """A request could not be (re-)placed: every candidate shard is down."""


class TransportError(ClusterError):
    """Base class for shard-transport (framed RPC over socket) failures.

    Raised inside one RPC attempt; the client's retry loop treats these
    (plus raw ``ConnectionError``/``TimeoutError``) as retryable.
    """


class WireCorrupt(TransportError):
    """A received frame failed its magic/length/CRC validation.

    The connection is considered poisoned past the corrupt frame (a
    stream cannot resynchronize after a torn length header), so the
    receiver resets it and the sender retries over a fresh connect.
    """


class TransportTimeout(TransportError):
    """One RPC attempt got no response within its per-call timeout."""


class ShardUnreachable(TransportError):
    """A remote shard's transport gave up: retries exhausted or the
    per-shard circuit breaker is open.

    The router treats this exactly like a refusal from a stopped
    service — walk the placement candidates on — while the heartbeat
    detector independently escalates the silent shard through
    suspect → probe → declare-dead.
    """


class PrologError(ReproError):
    """Errors from the mini-Prolog engine."""


class PrologSyntaxError(PrologError):
    """Parse error in Prolog source text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        loc = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{loc}")
        self.line = line
        self.column = column


class SolverError(ReproError):
    """Numerical solver failures (non-convergence, bad bracket, ...)."""


class ConvergenceError(SolverError):
    """An iterative numerical method failed to converge."""
