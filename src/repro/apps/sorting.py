"""Sorting alternatives: the paper's own Scheme A example, made runnable.

Section 3.2 motivates Scheme A with "quicksort is 'almost always'
O(n log n). Thus, we'll rarely go wrong to use it." — and Scheme C with
the cases where we *do* go wrong. This module supplies deterministic
sorting algorithms with sharply input-dependent behaviour plus input
generators that rotate the winner, feeding the schemes benches and the
domain analysis with a second realistic workload.

All sorts are pure (list in, list out) and instrumented: they return the
sorted list and record comparison counts in ``ws`` when run as workspace
alternatives.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.apps.poly.polyalgorithm import Method, PolyAlgorithm
from repro.errors import SolverError


class _Counter:
    __slots__ = ("comparisons",)

    def __init__(self) -> None:
        self.comparisons = 0

    def less(self, a, b) -> bool:
        self.comparisons += 1
        return a < b


# -- the algorithms ----------------------------------------------------------
def quicksort_first_pivot(data: list, counter: _Counter | None = None) -> list:
    """Deterministic quicksort, first element as pivot.

    O(n log n) on random data, O(n²) on sorted/reversed input — the
    classic "almost always" failure mode. Iterative, so the quadratic
    case burns time rather than the recursion limit.
    """
    counter = counter or _Counter()
    data = list(data)
    stack = [(0, len(data) - 1)]
    while stack:
        lo, hi = stack.pop()
        if lo >= hi:
            continue
        pivot = data[lo]
        i, j = lo + 1, hi
        while True:
            while i <= j and not counter.less(pivot, data[i]):
                i += 1
            while i <= j and counter.less(pivot, data[j]):
                j -= 1
            if i > j:
                break
            data[i], data[j] = data[j], data[i]
        data[lo], data[j] = data[j], data[lo]
        stack.append((lo, j - 1))
        stack.append((j + 1, hi))
    return data


def mergesort(data: list, counter: _Counter | None = None) -> list:
    """Always O(n log n); higher constant factor and extra memory."""
    counter = counter or _Counter()
    items = list(data)
    width = 1
    n = len(items)
    buffer = items[:]
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            left, right = lo, mid
            for out in range(lo, hi):
                if left < mid and (
                    right >= hi or not counter.less(items[right], items[left])
                ):
                    buffer[out] = items[left]
                    left += 1
                else:
                    buffer[out] = items[right]
                    right += 1
        items, buffer = buffer, items
        width *= 2
    return items


def insertion_sort(data: list, counter: _Counter | None = None) -> list:
    """O(n + inversions): unbeatable on nearly-sorted input, dreadful
    otherwise."""
    counter = counter or _Counter()
    items = list(data)
    for i in range(1, len(items)):
        value = items[i]
        j = i - 1
        while j >= 0 and counter.less(value, items[j]):
            items[j + 1] = items[j]
            j -= 1
        items[j + 1] = value
    return items


def heapsort(data: list, counter: _Counter | None = None) -> list:
    """Always O(n log n), in place, cache-unfriendly constants."""
    counter = counter or _Counter()
    items = list(data)
    n = len(items)

    def sift(lo: int, hi: int) -> None:
        root = lo
        while True:
            child = 2 * root + 1
            if child > hi:
                return
            if child + 1 <= hi and counter.less(items[child], items[child + 1]):
                child += 1
            if counter.less(items[root], items[child]):
                items[root], items[child] = items[child], items[root]
                root = child
            else:
                return

    for start in range(n // 2 - 1, -1, -1):
        sift(start, n - 1)
    for end in range(n - 1, 0, -1):
        items[0], items[end] = items[end], items[0]
        sift(0, end - 1)
    return items


ALGORITHMS = {
    "quicksort": quicksort_first_pivot,
    "mergesort": mergesort,
    "insertion": insertion_sort,
    "heapsort": heapsort,
}


def comparison_counts(data: Iterable) -> dict[str, int]:
    """Comparisons each algorithm needs on ``data`` (the cost surface)."""
    out = {}
    items = list(data)
    for name, algorithm in ALGORITHMS.items():
        counter = _Counter()
        result = algorithm(items, counter)
        if result != sorted(items):
            raise SolverError(f"{name} produced an unsorted result")
        out[name] = counter.comparisons
    return out


# -- input generators ------------------------------------------------------------
def make_input(kind: str, n: int, seed: int = 0) -> list[int]:
    """Named input classes with different algorithm winners."""
    rng = np.random.default_rng(seed)
    if kind == "random":
        return rng.integers(0, n * 10, size=n).tolist()
    if kind == "sorted":
        return list(range(n))
    if kind == "reversed":
        return list(range(n, 0, -1))
    if kind == "nearly-sorted":
        items = list(range(n))
        for _ in range(max(1, n // 50)):
            i, j = rng.integers(0, n, size=2)
            items[i], items[j] = items[j], items[i]
        return items
    if kind == "few-unique":
        return rng.integers(0, 4, size=n).tolist()
    raise SolverError(f"unknown input kind {kind!r}")


INPUT_KINDS = ("random", "sorted", "reversed", "nearly-sorted", "few-unique")


def domain_matrix(n: int = 400, seed: int = 0) -> tuple[list[str], list[str], list[list[int]]]:
    """(input kinds, algorithm names, comparison-count matrix).

    Feed the matrix to :class:`repro.analysis.domain.DomainAnalysis` with
    comparisons as the cost unit.
    """
    names = list(ALGORITHMS)
    rows = []
    for index, kind in enumerate(INPUT_KINDS):
        counts = comparison_counts(make_input(kind, n, seed + index))
        rows.append([counts[name] for name in names])
    return list(INPUT_KINDS), names, rows


def sorting_polyalgorithm() -> PolyAlgorithm:
    """The four sorts as a polyalgorithm over ``ws["data"]``."""

    def make(name: str):
        algorithm = ALGORITHMS[name]

        def solve(ws: dict):
            counter = _Counter()
            ws["data"] = algorithm(ws["data"], counter)
            ws["comparisons"] = counter.comparisons
            return name

        return Method(
            name,
            solve,
            accept=lambda ws, v: ws["data"] == sorted(ws["data"]),
        )

    return PolyAlgorithm([make(name) for name in ALGORITHMS], name="sorting")
