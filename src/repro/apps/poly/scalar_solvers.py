"""Scalar root-finding methods: the polyalgorithm's method pool.

Five classical methods with sharply different cost/robustness profiles —
exactly the "performance differences between the alternatives, due to
data dependencies or use of heuristic methods" the paper's section 4
calls for. Each returns the root and raises
:class:`~repro.errors.SolverError` / :class:`~repro.errors.ConvergenceError`
on failure, so they can be wrapped directly as alternatives.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConvergenceError, SolverError

Fn = Callable[[float], float]
_DEFAULT_TOL = 1e-12


def _check_bracket(f: Fn, a: float, b: float) -> tuple[float, float, float, float]:
    if a >= b:
        raise SolverError(f"bad bracket: a={a} must be < b={b}")
    fa, fb = f(a), f(b)
    if fa == 0.0:
        return a, b, fa, fb
    if fb == 0.0:
        return a, b, fa, fb
    if math.copysign(1.0, fa) == math.copysign(1.0, fb):
        raise SolverError(f"f({a}) and f({b}) have the same sign; not a bracket")
    return a, b, fa, fb


def bisection(f: Fn, a: float, b: float, tol: float = _DEFAULT_TOL,
              max_iter: int = 200) -> float:
    """Robust but linear-rate bracketing; never diverges on a valid bracket."""
    a, b, fa, fb = _check_bracket(f, a, b)
    if fa == 0.0:
        return a
    if fb == 0.0:
        return b
    for _ in range(max_iter):
        mid = 0.5 * (a + b)
        fm = f(mid)
        if fm == 0.0 or (b - a) / 2 < tol:
            return mid
        if math.copysign(1.0, fm) == math.copysign(1.0, fa):
            a, fa = mid, fm
        else:
            b, fb = mid, fm
    raise ConvergenceError(f"bisection: no convergence in {max_iter} iterations")


def secant(f: Fn, x0: float, x1: float, tol: float = _DEFAULT_TOL,
           max_iter: int = 100) -> float:
    """Superlinear, derivative-free; may diverge on nasty functions."""
    f0, f1 = f(x0), f(x1)
    for _ in range(max_iter):
        if f1 == 0.0:
            return x1
        denom = f1 - f0
        if denom == 0.0:
            raise ConvergenceError("secant: flat secant line")
        x2 = x1 - f1 * (x1 - x0) / denom
        if not math.isfinite(x2):
            raise ConvergenceError("secant: iterate diverged")
        if abs(x2 - x1) < tol * max(1.0, abs(x2)):
            return x2
        x0, f0 = x1, f1
        x1, f1 = x2, f(x2)
    raise ConvergenceError(f"secant: no convergence in {max_iter} iterations")


def newton(f: Fn, x0: float, fprime: Fn | None = None, tol: float = _DEFAULT_TOL,
           max_iter: int = 60, h: float = 1e-7) -> float:
    """Quadratic near a simple root; needs a good start and derivative."""
    x = x0
    for _ in range(max_iter):
        fx = f(x)
        if fx == 0.0:
            return x
        if fprime is not None:
            d = fprime(x)
        else:
            d = (f(x + h) - f(x - h)) / (2 * h)
        if d == 0.0 or not math.isfinite(d):
            raise ConvergenceError("newton: zero/invalid derivative")
        x_new = x - fx / d
        if not math.isfinite(x_new):
            raise ConvergenceError("newton: iterate diverged")
        if abs(x_new - x) < tol * max(1.0, abs(x_new)):
            return x_new
        x = x_new
    raise ConvergenceError(f"newton: no convergence in {max_iter} iterations")


def brent(f: Fn, a: float, b: float, tol: float = _DEFAULT_TOL,
          max_iter: int = 120) -> float:
    """Brent's method: inverse quadratic / secant with bisection safety."""
    a, b, fa, fb = _check_bracket(f, a, b)
    if fa == 0.0:
        return a
    if fb == 0.0:
        return b
    if abs(fa) < abs(fb):
        a, b, fa, fb = b, a, fb, fa
    c, fc = a, fa
    mflag = True
    d = c
    for _ in range(max_iter):
        if fb == 0.0 or abs(b - a) < tol:
            return b
        if fa != fc and fb != fc:
            # inverse quadratic interpolation
            s = (
                a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
            )
        else:
            s = b - fb * (b - a) / (fb - fa)
        cond = (
            not ((3 * a + b) / 4 <= s <= b or b <= s <= (3 * a + b) / 4)
            or (mflag and abs(s - b) >= abs(b - c) / 2)
            or (not mflag and abs(s - b) >= abs(c - d) / 2)
            or (mflag and abs(b - c) < tol)
            or (not mflag and abs(c - d) < tol)
        )
        if cond:
            s = 0.5 * (a + b)
            mflag = True
        else:
            mflag = False
        fs = f(s)
        d, c, fc = c, b, fb
        if math.copysign(1.0, fa) != math.copysign(1.0, fs):
            b, fb = s, fs
        else:
            a, fa = s, fs
        if abs(fa) < abs(fb):
            a, b, fa, fb = b, a, fb, fa
    raise ConvergenceError(f"brent: no convergence in {max_iter} iterations")


def fixed_point(g: Fn, x0: float, tol: float = _DEFAULT_TOL,
                max_iter: int = 500) -> float:
    """Iterate ``x = g(x)``; converges only for contractive g."""
    x = x0
    for _ in range(max_iter):
        x_new = g(x)
        if not math.isfinite(x_new):
            raise ConvergenceError("fixed_point: iterate diverged")
        if abs(x_new - x) < tol * max(1.0, abs(x_new)):
            return x_new
        x = x_new
    raise ConvergenceError(f"fixed_point: no convergence in {max_iter} iterations")
