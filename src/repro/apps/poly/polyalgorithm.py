"""The polyalgorithm framework (Rice [15], paper section 4.3).

A :class:`PolyAlgorithm` bundles several :class:`Method` objects for one
problem. Execution strategies:

- :meth:`run_sequential` — the classical NAPSS-style loop: try methods in
  (advice-ordered) sequence until one passes its acceptance test,
  accumulating *information about the problem* between attempts (e.g. a
  failing rootfinder's last iterate seeds the next method).
- :meth:`run_worlds` — the paper's transformation: create artificial
  alternatives, each trying a different method *first*, and race them
  under Multiple Worlds — "fastest first" scheduling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.alternative import Alternative, Guard
from repro.core.outcome import BlockOutcome
from repro.core.worlds import run_alternatives
from repro.errors import SolverError


@dataclass
class Method:
    """One solution method plus the analyst's knowledge about it.

    ``applies(problem)`` encodes "the circumstances under which a method
    is likely to be successful"; ``accept(problem, result)`` is the
    acceptance test; ``hint_out`` lets a failing method contribute
    information to later attempts (``state["hints"]``).
    """

    name: str
    solve: Callable[[dict], Any]
    applies: Callable[[dict], bool] | None = None
    accept: Callable[[dict, Any], bool] | None = None
    cost_estimate: float | Callable[[dict], float] | None = None

    def is_applicable(self, problem: dict) -> bool:
        if self.applies is None:
            return True
        try:
            return bool(self.applies(problem))
        except Exception:
            return False

    def accepts(self, problem: dict, result: Any) -> bool:
        if self.accept is None:
            return True
        try:
            return bool(self.accept(problem, result))
        except Exception:
            return False


@dataclass
class PolyResult:
    """What a polyalgorithm run produced."""

    value: Any
    method: str
    attempts: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    hints: dict = field(default_factory=dict)
    outcome: BlockOutcome | None = None

    @property
    def succeeded(self) -> bool:
        return self.method != ""


class PolyAlgorithm:
    """Several methods for one problem, with Worlds-powered scheduling."""

    def __init__(self, methods: Sequence[Method], name: str = "polyalgorithm") -> None:
        if not methods:
            raise SolverError("a polyalgorithm needs at least one method")
        names = [m.name for m in methods]
        if len(set(names)) != len(names):
            raise SolverError("method names must be unique")
        self.methods = list(methods)
        self.name = name

    # -- classical sequential execution -------------------------------------
    def run_sequential(self, problem: dict) -> PolyResult:
        """Try applicable methods in order until one is accepted.

        Failing methods may leave hints in ``problem["hints"]`` for their
        successors (e.g. "discovering multiple zeros in a failing
        root-finder may be useful to the next solution method").
        """
        problem = dict(problem)
        problem.setdefault("hints", {})
        attempts = []
        t0 = time.perf_counter()
        for method in self.methods:
            if not method.is_applicable(problem):
                continue
            attempts.append(method.name)
            try:
                value = method.solve(problem)
            except Exception as exc:
                problem["hints"][method.name] = f"raised {exc!r}"
                continue
            if method.accepts(problem, value):
                return PolyResult(
                    value=value,
                    method=method.name,
                    attempts=attempts,
                    elapsed_s=time.perf_counter() - t0,
                    hints=dict(problem["hints"]),
                )
            problem["hints"][method.name] = value
        return PolyResult(
            value=None,
            method="",
            attempts=attempts,
            elapsed_s=time.perf_counter() - t0,
            hints=dict(problem["hints"]),
        )

    # -- Multiple Worlds execution ----------------------------------------------
    def _rotation(self, first: int) -> list[Method]:
        """The method order for the alternative that tries ``first`` first."""
        return self.methods[first:] + self.methods[:first]

    def alternatives(self, problem: dict) -> list[Alternative]:
        """One artificial alternative per applicable first-method."""
        alts = []
        for index, method in enumerate(self.methods):
            if not method.is_applicable(problem):
                continue
            ordering = self._rotation(index)

            def body(ws: dict, _ordering=tuple(ordering)) -> Any:
                ws.setdefault("hints", {})
                for m in _ordering:
                    if not m.is_applicable(ws):
                        continue
                    try:
                        value = m.solve(ws)
                    except Exception as exc:
                        ws["hints"][m.name] = f"raised {exc!r}"
                        continue
                    if m.accepts(ws, value):
                        ws["solved_by"] = m.name
                        return value
                    ws["hints"][m.name] = value
                raise SolverError("no method in this ordering succeeded")

            cost = method.cost_estimate
            alts.append(
                Alternative(
                    body,
                    name=f"first:{method.name}",
                    guard=Guard(name=f"applicable:{method.name}"),
                    sim_cost=cost,
                )
            )
        if not alts:
            raise SolverError("no method is applicable to this problem")
        return alts

    def run_worlds(
        self,
        problem: dict,
        backend: str = "fork",
        timeout: float | None = None,
        **kwargs: Any,
    ) -> PolyResult:
        """Race the first-method rotations under Multiple Worlds."""
        t0 = time.perf_counter()
        outcome = run_alternatives(
            self.alternatives(problem),
            initial=dict(problem),
            timeout=timeout,
            backend=backend,
            **kwargs,
        )
        elapsed = time.perf_counter() - t0
        if outcome.failed:
            return PolyResult(
                value=None, method="", elapsed_s=elapsed, outcome=outcome
            )
        state = outcome.extras.get("state", {})
        return PolyResult(
            value=outcome.value,
            method=state.get("solved_by", outcome.winner.name),
            attempts=[outcome.winner.name],
            elapsed_s=elapsed,
            hints=state.get("hints", {}),
            outcome=outcome,
        )
