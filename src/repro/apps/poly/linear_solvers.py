"""Linear-system methods: a second polyalgorithm domain (paper §4.3).

Rice's polyalgorithm examples are linear algebra; this module provides a
method pool for ``Ax = b`` whose members win on different matrix classes:

- :func:`direct_lu` — always correct, O(n³), memory-hungry;
- :func:`jacobi` — cheap per iteration, converges only for (near-)
  diagonally dominant systems;
- :func:`gauss_seidel` — like Jacobi but roughly twice the convergence
  rate where it applies;
- :func:`conjugate_gradient` — fast for symmetric positive-definite
  systems, diverges or stagnates elsewhere.

:func:`linear_polyalgorithm` packages them with the analyst's
applicability heuristics so the Multiple Worlds driver can race method
orderings.
"""

from __future__ import annotations

import numpy as np

from repro.apps.poly.polyalgorithm import Method, PolyAlgorithm
from repro.errors import ConvergenceError, SolverError

_DEFAULT_TOL = 1e-10


def _validate(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise SolverError(f"A must be square, got shape {a.shape}")
    if b.shape != (a.shape[0],):
        raise SolverError(f"b must have shape ({a.shape[0]},), got {b.shape}")
    return a, b


def residual(a: np.ndarray, b: np.ndarray, x: np.ndarray) -> float:
    """Relative residual ‖Ax − b‖ / ‖b‖ (‖b‖ floored at 1)."""
    return float(np.linalg.norm(a @ x - b) / max(np.linalg.norm(b), 1.0))


# -- matrix-class predicates (the analyst's knowledge) ----------------------
def is_diagonally_dominant(a: np.ndarray, strict: bool = True) -> bool:
    a = np.asarray(a, dtype=float)
    diag = np.abs(np.diag(a))
    off = np.abs(a).sum(axis=1) - diag
    return bool(np.all(diag > off) if strict else np.all(diag >= off))

def is_symmetric(a: np.ndarray, tol: float = 1e-10) -> bool:
    a = np.asarray(a, dtype=float)
    return bool(np.allclose(a, a.T, atol=tol))


def is_spd(a: np.ndarray) -> bool:
    """Symmetric positive definite (via Cholesky)."""
    if not is_symmetric(a):
        return False
    try:
        np.linalg.cholesky(np.asarray(a, dtype=float))
        return True
    except np.linalg.LinAlgError:
        return False


# -- the methods --------------------------------------------------------------
def direct_lu(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gaussian elimination via numpy's LAPACK solve."""
    a, b = _validate(a, b)
    try:
        return np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(f"direct solve failed: {exc}") from exc


def jacobi(a: np.ndarray, b: np.ndarray, tol: float = _DEFAULT_TOL,
           max_iter: int = 5000) -> np.ndarray:
    a, b = _validate(a, b)
    diag = np.diag(a)
    if np.any(diag == 0):
        raise SolverError("jacobi: zero diagonal entry")
    rest = a - np.diagflat(diag)
    x = np.zeros_like(b)
    for _ in range(max_iter):
        x_new = (b - rest @ x) / diag
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError("jacobi: iteration diverged")
        if np.linalg.norm(x_new - x, ord=np.inf) < tol * max(
            1.0, float(np.linalg.norm(x_new, ord=np.inf))
        ):
            return x_new
        x = x_new
    raise ConvergenceError(f"jacobi: no convergence in {max_iter} iterations")


def gauss_seidel(a: np.ndarray, b: np.ndarray, tol: float = _DEFAULT_TOL,
                 max_iter: int = 5000) -> np.ndarray:
    a, b = _validate(a, b)
    n = len(b)
    if np.any(np.diag(a) == 0):
        raise SolverError("gauss_seidel: zero diagonal entry")
    x = np.zeros_like(b)
    for _ in range(max_iter):
        x_old = x.copy()
        for i in range(n):
            sigma = a[i, :i] @ x[:i] + a[i, i + 1:] @ x_old[i + 1:]
            x[i] = (b[i] - sigma) / a[i, i]
        if not np.all(np.isfinite(x)):
            raise ConvergenceError("gauss_seidel: iteration diverged")
        if np.linalg.norm(x - x_old, ord=np.inf) < tol * max(
            1.0, float(np.linalg.norm(x, ord=np.inf))
        ):
            return x
    raise ConvergenceError(f"gauss_seidel: no convergence in {max_iter} iterations")


def conjugate_gradient(a: np.ndarray, b: np.ndarray, tol: float = _DEFAULT_TOL,
                       max_iter: int | None = None) -> np.ndarray:
    """Plain CG; mathematically sound for SPD matrices."""
    a, b = _validate(a, b)
    n = len(b)
    if max_iter is None:
        max_iter = 10 * n
    x = np.zeros_like(b)
    r = b - a @ x
    p = r.copy()
    rs = float(r @ r)
    b_norm = max(float(np.linalg.norm(b)), 1.0)
    for _ in range(max_iter):
        if np.sqrt(rs) < tol * b_norm:
            return x
        ap = a @ p
        denom = float(p @ ap)
        if denom <= 0 or not np.isfinite(denom):
            raise ConvergenceError("conjugate_gradient: matrix is not SPD")
        alpha = rs / denom
        x = x + alpha * p
        r = r - alpha * ap
        rs_new = float(r @ r)
        if not np.isfinite(rs_new):
            raise ConvergenceError("conjugate_gradient: diverged")
        p = r + (rs_new / rs) * p
        rs = rs_new
    if np.sqrt(rs) < 1e-6 * b_norm:  # close enough to call converged
        return x
    raise ConvergenceError(f"conjugate_gradient: no convergence in {max_iter} iterations")


# -- the polyalgorithm ------------------------------------------------------------
def linear_polyalgorithm(tol: float = 1e-8) -> PolyAlgorithm:
    """A PolyAlgorithm over the four methods, with applicability advice.

    Problems are dicts with keys ``A`` (matrix) and ``b`` (vector); the
    solution lands in the result and ``ws["x"]``.
    """

    def accept(ws, x):
        return x is not None and residual(np.asarray(ws["A"]), np.asarray(ws["b"]), x) < tol

    def make(name, solver, applies=None):
        def solve(ws):
            x = solver(np.asarray(ws["A"], dtype=float),
                       np.asarray(ws["b"], dtype=float))
            ws["x"] = x.tolist()
            return x

        return Method(name, solve, applies=applies, accept=accept)

    return PolyAlgorithm(
        [
            make("conjugate_gradient", conjugate_gradient,
                 applies=lambda ws: is_symmetric(np.asarray(ws["A"]))),
            make("jacobi", jacobi,
                 applies=lambda ws: is_diagonally_dominant(np.asarray(ws["A"]),
                                                           strict=False)),
            make("gauss_seidel", gauss_seidel,
                 applies=lambda ws: is_diagonally_dominant(np.asarray(ws["A"]),
                                                           strict=False)),
            make("direct_lu", direct_lu),
        ],
        name="linear-solver",
    )
