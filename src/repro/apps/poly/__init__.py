"""Polyalgorithms and numerical applications (paper section 4.3).

A *polyalgorithm* (Rice [15]) packages several methods for the same
numerical problem with knowledge about when each is likely to succeed.
"Multiple Worlds" turns a polyalgorithm's method ordering into artificial
alternatives, each trying a different method first — "fastest first"
scheduling.

- :mod:`repro.apps.poly.polyalgorithm` — the framework.
- :mod:`repro.apps.poly.scalar_solvers` — bisection/secant/Newton/Brent
  scalar root finders (method pool for the examples and benches).
- :mod:`repro.apps.poly.rootfind` — the complex-polynomial Jenkins-Traub
  zero finder whose random-angle degree of freedom the paper parallelizes
  (Table I).
"""

from repro.apps.poly.polyalgorithm import Method, PolyAlgorithm, PolyResult
from repro.apps.poly.scalar_solvers import (
    bisection,
    brent,
    fixed_point,
    newton,
    secant,
)
from repro.apps.poly.linear_solvers import (
    conjugate_gradient,
    direct_lu,
    gauss_seidel,
    jacobi,
    linear_polyalgorithm,
)

__all__ = [
    "Method",
    "PolyAlgorithm",
    "PolyResult",
    "bisection",
    "secant",
    "newton",
    "brent",
    "fixed_point",
    "direct_lu",
    "jacobi",
    "gauss_seidel",
    "conjugate_gradient",
    "linear_polyalgorithm",
]
