"""Dense complex polynomials for the Jenkins-Traub zero finder."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SolverError


class Polynomial:
    """A dense polynomial over the complex numbers.

    Coefficients are stored highest-degree first (``coeffs[0]`` is the
    leading coefficient), matching numpy's ``polyval`` convention. The
    constructor strips leading zeros; the zero polynomial is rejected
    (it has no well-defined zero set).
    """

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[complex] | np.ndarray) -> None:
        arr = np.asarray(coeffs, dtype=np.complex128)
        if arr.ndim != 1 or arr.size == 0:
            raise SolverError("polynomial needs a 1-D, non-empty coefficient array")
        nonzero = np.nonzero(arr)[0]
        if nonzero.size == 0:
            raise SolverError("the zero polynomial has no zero set")
        self.coeffs = arr[nonzero[0] :].copy()

    # -- construction -------------------------------------------------------
    @classmethod
    def from_roots(cls, roots: Iterable[complex], leading: complex = 1.0) -> "Polynomial":
        """The monic-times-``leading`` polynomial with the given roots."""
        coeffs = np.array([leading], dtype=np.complex128)
        for root in roots:
            coeffs = np.convolve(coeffs, [1.0, -complex(root)])
        return cls(coeffs)

    @classmethod
    def wilkinson(cls, n: int) -> "Polynomial":
        """The classic ill-conditioned test polynomial Π (x - k), k=1..n."""
        return cls.from_roots(range(1, n + 1))

    # -- basic queries --------------------------------------------------------
    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    @property
    def leading(self) -> complex:
        return complex(self.coeffs[0])

    @property
    def constant(self) -> complex:
        return complex(self.coeffs[-1])

    def monic(self) -> "Polynomial":
        return Polynomial(self.coeffs / self.coeffs[0])

    def __call__(self, z: complex) -> complex:
        """Horner evaluation."""
        acc = 0.0 + 0.0j
        for c in self.coeffs:
            acc = acc * z + c
        return complex(acc)

    def eval_with_error_bound(self, z: complex) -> tuple[complex, float]:
        """Horner value plus a running bound on its rounding error.

        The bound is the standard ``Σ |aᵢ||z|ⁱ`` magnitude scaled by
        machine epsilon — used as the Stage 3 stopping criterion ("the
        computed value is dominated by rounding error").
        """
        acc = 0.0 + 0.0j
        mag = 0.0
        az = abs(z)
        for c in self.coeffs:
            acc = acc * z + c
            mag = mag * az + abs(acc)
        eps = np.finfo(np.float64).eps
        return complex(acc), 2.0 * mag * eps

    def derivative(self) -> "Polynomial":
        n = self.degree
        if n == 0:
            raise SolverError("derivative of a constant has no zero set")
        powers = np.arange(n, 0, -1)
        return Polynomial(self.coeffs[:-1] * powers)

    # -- algebra -------------------------------------------------------------------
    def deflate(self, root: complex) -> "Polynomial":
        """Synthetic division by ``(z - root)``; drops the remainder.

        The remainder equals ``p(root)`` and is discarded — standard
        forward deflation, adequate when roots are found smallest-modulus
        first (which the Cauchy-radius start encourages).
        """
        if self.degree < 1:
            raise SolverError("cannot deflate a constant")
        out = np.empty(len(self.coeffs) - 1, dtype=np.complex128)
        acc = 0.0 + 0.0j
        for i, c in enumerate(self.coeffs[:-1]):
            acc = acc * root + c
            out[i] = acc
        return Polynomial(out)

    def divide_out_linear(self, s: complex) -> tuple["Polynomial", complex]:
        """Quotient and remainder of division by ``(z - s)``."""
        quotient = np.empty(len(self.coeffs) - 1, dtype=np.complex128)
        acc = 0.0 + 0.0j
        for i, c in enumerate(self.coeffs[:-1]):
            acc = acc * s + c
            quotient[i] = acc
        remainder = acc * s + self.coeffs[-1]
        return Polynomial(quotient), complex(remainder)

    def scaled(self, factor: complex) -> "Polynomial":
        return Polynomial(self.coeffs * factor)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        a, b = self.coeffs, other.coeffs
        width = max(len(a), len(b))
        pa = np.zeros(width, dtype=np.complex128)
        pb = np.zeros(width, dtype=np.complex128)
        pa[width - len(a) :] = a
        pb[width - len(b) :] = b
        diff = pa - pb
        if not np.any(diff):
            raise SolverError("difference is the zero polynomial")
        return Polynomial(diff)

    # -- root-radius estimation --------------------------------------------------------
    def cauchy_lower_radius(self) -> float:
        """A lower bound on the modulus of the smallest zero.

        The unique positive root β of
        ``|a_0| xⁿ + |a_1| xⁿ⁻¹ + ... + |a_{n-1}| x − |a_n| = 0``
        (moduli of this polynomial's coefficients, constant negated) is
        the Jenkins-Traub starting radius: zeros of ``p`` satisfy
        ``|z| ≥ β``. Solved by Newton from a small positive start.
        """
        mods = np.abs(self.coeffs)
        if mods[-1] == 0:
            return 0.0  # zero at the origin
        work = mods.copy()
        work[-1] = -work[-1]
        powers = np.arange(self.degree, -1, -1)

        def f(x: float) -> float:
            return float(np.sum(work * x**powers))

        def fprime(x: float) -> float:
            return float(np.sum(work[:-1] * powers[:-1] * x ** (powers[:-1] - 1)))

        # bracket: f(0) < 0, f grows without bound
        x = (mods[-1] / mods[0]) ** (1.0 / self.degree)  # geometric guess
        for _ in range(200):
            fx = f(x)
            d = fprime(x)
            if d <= 0:
                x *= 2.0
                continue
            step = fx / d
            x_new = x - step
            if x_new <= 0:
                x_new = x / 2.0
            if abs(x_new - x) <= 1e-12 * max(x, 1e-300):
                return float(x_new)
            x = x_new
        return float(x)

    # -- misc ------------------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return len(self.coeffs) == len(other.coeffs) and bool(
            np.allclose(self.coeffs, other.coeffs)
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(self.coeffs.tobytes())

    def __repr__(self) -> str:
        return f"Polynomial(degree={self.degree})"
