"""The three-stage Jenkins-Traub iteration (CPOLY, Algorithm 419 [11]).

Structure (complex coefficients):

- **Stage 1 (no shift)** — a few iterations of
  ``H⁽λ⁺¹⁾(z) = (1/z)·[H⁽λ⁾(z) − (H⁽λ⁾(0)/p(0))·p(z)]``
  starting from ``H⁽⁰⁾ = p′``, to accentuate the smallest zeros.
- **Stage 2 (fixed shift)** — pick a starting point ``s = β·e^{iθ}``
  where ``β`` is the Cauchy lower bound on the zero moduli and **θ is the
  random angle** — the degree of freedom the paper parallelizes. Iterate
  the same recurrence at ``z = s`` while watching the sequence
  ``t_λ = s − p(s)/H̄⁽λ⁾(s)``; when two successive ``t`` agree to half a
  percent, move on.
- **Stage 3 (variable shift)** — Newton-like iteration
  ``s_{λ+1} = s_λ − p(s_λ)/H̄⁽λ⁺¹⁾(s_λ)`` with the H-recurrence now
  following ``s_λ``; converged when ``|p(s)|`` sinks below its own
  rounding-error bound.

A zero found is deflated out and the process repeats on the quotient.
If stage 2/3 fail to converge within their iteration budgets the attempt
is retried with another angle; attempts are counted, and running out of
angle retries marks the run *failed* — the Table I ``fails`` column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.apps.poly.rootfind.polynomial import Polynomial
from repro.errors import ConvergenceError


@dataclass(frozen=True)
class JTOptions:
    """Tunables of the zero finder."""

    stage1_iterations: int = 5
    stage2_max_iterations: int = 120
    stage3_max_iterations: int = 60
    max_angle_tries: int = 9
    #: first angle when no RNG is supplied (the published choice is 49°,
    #: rotating by 94° on retries)
    first_angle_deg: float = 49.0
    angle_step_deg: float = 94.0


@dataclass
class JTReport:
    """Accounting for one full-polynomial run."""

    zeros: list[complex] = field(default_factory=list)
    angle_tries: int = 0
    stage2_iterations: int = 0
    stage3_iterations: int = 0
    elapsed_s: float = 0.0
    failed: bool = False
    failure_reason: str = ""


def _next_h(p: Polynomial, h: Polynomial, s: complex) -> Polynomial:
    """One H-recurrence step: ``(H − (H(s)/p(s))·p) / (z − s)``.

    The numerator vanishes at ``s`` by construction, so the synthetic
    division is exact.
    """
    ps = p(s)
    if ps == 0:
        # s is itself a zero of p; caller handles this case
        raise ZeroDivisionError("shift point is a zero of p")
    c = h(s) / ps
    numerator_coeffs = np.zeros(len(p.coeffs), dtype=np.complex128)
    numerator_coeffs[len(p.coeffs) - len(h.coeffs) :] = h.coeffs
    numerator_coeffs -= c * p.coeffs
    numerator = Polynomial(numerator_coeffs) if np.any(numerator_coeffs) else None
    if numerator is None:
        # H became an exact multiple of p (degenerate); restart from p'
        return p.derivative()
    quotient, _ = numerator.divide_out_linear(s)
    return quotient


def _t_value(p: Polynomial, h: Polynomial, s: complex) -> complex:
    """``t = s − p(s)/H̄(s)`` with H̄ the monic-normalized H."""
    hs = h(s) / h.leading
    if hs == 0:
        return complex(np.inf)
    return s - p(s) / hs


def find_one_zero(
    p: Polynomial,
    angle: float | None = None,
    options: JTOptions = JTOptions(),
    rng: np.random.Generator | None = None,
    report: JTReport | None = None,
) -> complex:
    """Find one zero of ``p`` (degree ≥ 1) via the three-stage iteration.

    ``angle`` fixes the first starting angle in radians; otherwise angles
    come from ``rng`` (uniform) or from the published 49°+k·94° ladder.
    Raises :class:`~repro.errors.ConvergenceError` when every angle try
    is exhausted.
    """
    if report is None:
        report = JTReport()
    if p.degree == 1:
        return complex(-p.coeffs[1] / p.coeffs[0])
    if p.constant == 0:
        return 0.0 + 0.0j

    beta = p.cauchy_lower_radius()
    if beta == 0.0:
        return 0.0 + 0.0j

    # Stage 1: no-shift iterations sharpen H toward the small zeros
    h = p.derivative()
    for _ in range(options.stage1_iterations):
        h0 = h(0.0)
        p0 = p(0.0)
        if p0 == 0:
            return 0.0 + 0.0j
        c = h0 / p0
        numerator_coeffs = np.zeros(len(p.coeffs), dtype=np.complex128)
        numerator_coeffs[len(p.coeffs) - len(h.coeffs) :] = h.coeffs
        numerator_coeffs -= c * p.coeffs
        if not np.any(numerator_coeffs):
            h = p.derivative()
            continue
        # division by z: drop the trailing coefficient (it is ~0)
        h = Polynomial(numerator_coeffs[:-1])

    for attempt in range(options.max_angle_tries):
        report.angle_tries += 1
        if angle is not None and attempt == 0:
            theta = angle
        elif rng is not None:
            theta = float(rng.uniform(0.0, 2.0 * np.pi))
        else:
            theta = np.deg2rad(
                options.first_angle_deg + attempt * options.angle_step_deg
            )
        s = beta * complex(np.cos(theta), np.sin(theta))
        try:
            zero = _stage2_stage3(p, h, s, options, report)
        except (ConvergenceError, ZeroDivisionError, FloatingPointError):
            continue
        if zero is not None:
            return zero
    raise ConvergenceError(
        f"Jenkins-Traub failed on degree {p.degree} after "
        f"{options.max_angle_tries} starting angles"
    )


def _stage2_stage3(
    p: Polynomial,
    h_in: Polynomial,
    s: complex,
    options: JTOptions,
    report: JTReport,
) -> complex | None:
    h = h_in
    # ---- Stage 2: fixed shift -------------------------------------------
    t_prev: complex | None = None
    t_prev2: complex | None = None
    entered_stage3 = False
    for _ in range(options.stage2_max_iterations):
        report.stage2_iterations += 1
        ps = p(s)
        if ps == 0:
            return s
        h = _next_h(p, h, s)
        t = _t_value(p, h, s)
        if not np.isfinite(t.real) or not np.isfinite(t.imag):
            t_prev2, t_prev = None, None
            continue
        if t_prev is not None and t_prev2 is not None:
            # weak convergence test: successive t's agree to ~0.5 %
            if (
                abs(t - t_prev) <= 0.5 * abs(t_prev)
                and abs(t_prev - t_prev2) <= 0.5 * abs(t_prev2)
            ):
                entered_stage3 = True
                break
        t_prev2, t_prev = t_prev, t
    if not entered_stage3:
        return None

    # ---- Stage 3: variable shift ----------------------------------------------
    s = t_prev if t_prev is not None else s
    for _ in range(options.stage3_max_iterations):
        report.stage3_iterations += 1
        value, bound = p.eval_with_error_bound(s)
        if abs(value) <= max(bound, 1e-300):
            return s
        try:
            h = _next_h(p, h, s)
        except ZeroDivisionError:
            return s  # landed exactly on a zero
        hbar_s = h(s) / h.leading
        if hbar_s == 0:
            return None
        step = value / hbar_s
        s = s - step
        if not np.isfinite(s.real) or not np.isfinite(s.imag):
            return None
        if abs(step) <= 1e-15 * max(abs(s), 1e-300):
            value, bound = p.eval_with_error_bound(s)
            if abs(value) <= max(bound * 10, 1e-280):
                return s
            return None
    return None


def find_all_zeros(
    p: Polynomial,
    options: JTOptions = JTOptions(),
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    polish: bool = True,
) -> JTReport:
    """All zeros of ``p`` by repeated find-one + deflation.

    ``seed`` (or an explicit ``rng``) drives the random starting angles —
    the per-alternative degree of freedom. The report carries timing and
    iteration counts; on failure ``report.failed`` is set and the zeros
    found so far remain in ``report.zeros``.
    """
    if rng is None and seed is not None:
        rng = np.random.default_rng(seed)
    report = JTReport()
    t0 = time.perf_counter()
    work = p.monic()
    original = p
    try:
        while work.degree > 0:
            if work.degree == 1:
                report.zeros.append(complex(-work.coeffs[1] / work.coeffs[0]))
                break
            if work.degree == 2:
                a, b, c = work.coeffs
                disc = np.sqrt(b * b - 4 * a * c + 0.0j)
                report.zeros.extend(
                    [complex((-b + disc) / (2 * a)), complex((-b - disc) / (2 * a))]
                )
                break
            zero = find_one_zero(work, options=options, rng=rng, report=report)
            report.zeros.append(zero)
            work = work.deflate(zero).monic()
    except ConvergenceError as exc:
        report.failed = True
        report.failure_reason = str(exc)
    if polish and not report.failed:
        report.zeros = [_polish(original, z) for z in report.zeros]
    report.elapsed_s = time.perf_counter() - t0
    return report


def _polish(p: Polynomial, z: complex, iterations: int = 3) -> complex:
    """A few Newton steps against the *original* polynomial.

    Deflation accumulates error in the later zeros; polishing against the
    undeflated p restores full accuracy when the zero is simple.
    """
    dp = p.derivative()
    for _ in range(iterations):
        d = dp(z)
        if d == 0:
            return z
        step = p(z) / d
        z_new = z - step
        if not (np.isfinite(z_new.real) and np.isfinite(z_new.imag)):
            return z
        if abs(p(z_new)) >= abs(p(z)):
            return z
        z = z_new
    return z
