"""The parallel rootfinder (paper section 4.3, Table I).

"A parallel version of this algorithm was created by making several
choices for the starting value and executing them in parallel."

:class:`ParallelRootfinder` races several angle-seeded Jenkins-Traub runs
as Multiple Worlds alternatives. :meth:`table_one` regenerates the
paper's Table I: for each process count, the sequential per-seed max /
min / avg CPU times, the number of failing seeds, and the parallel
wall-clock time (``par``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.apps.poly.rootfind.jenkins_traub import JTOptions, find_all_zeros
from repro.apps.poly.rootfind.polynomial import Polynomial
from repro.core.alternative import Alternative, Guard
from repro.core.outcome import BlockOutcome
from repro.core.worlds import run_alternatives
from repro.errors import ConvergenceError


@dataclass
class RootfinderRun:
    """One angle-seeded full run of the zero finder."""

    seed: int
    elapsed_s: float
    failed: bool
    zeros: list[complex] = field(default_factory=list)
    angle_tries: int = 0


@dataclass
class TableOneRow:
    """One row of the paper's Table I."""

    procs: int
    max_s: float
    min_s: float
    avg_s: float
    fails: int
    par_s: float

    def as_tuple(self) -> tuple:
        return (self.procs, self.max_s, self.min_s, self.avg_s, self.fails, self.par_s)

    def __str__(self) -> str:
        return (
            f"{self.procs:>5} {self.max_s:8.3f} {self.min_s:8.3f} "
            f"{self.avg_s:8.3f} {self.fails:>5} {self.par_s:8.3f}"
        )


def default_table_polynomial(degree: int = 17, seed: int = 2026) -> Polynomial:
    """A test polynomial with clustered + scattered roots.

    Clusters make some starting angles converge slowly or fail, giving
    the per-angle runtime dispersion Table I depends on.
    """
    rng = np.random.default_rng(seed)
    roots = []
    # a tight cluster near 1+0.5j
    for _ in range(degree // 3):
        roots.append(1.0 + 0.5j + 0.01 * (rng.normal() + 1j * rng.normal()))
    # a ring of moderate roots
    while len(roots) < degree:
        theta = rng.uniform(0, 2 * np.pi)
        radius = rng.uniform(0.5, 3.0)
        roots.append(radius * np.exp(1j * theta))
    return Polynomial.from_roots(roots[:degree])


def _run_one(poly: Polynomial, seed: int, options: JTOptions) -> RootfinderRun:
    t0 = time.perf_counter()
    report = find_all_zeros(poly, options=options, seed=seed)
    return RootfinderRun(
        seed=seed,
        elapsed_s=time.perf_counter() - t0,
        failed=report.failed,
        zeros=report.zeros,
        angle_tries=report.angle_tries,
    )


class ParallelRootfinder:
    """Race angle-seeded Jenkins-Traub runs under Multiple Worlds."""

    def __init__(
        self,
        poly: Polynomial | None = None,
        options: JTOptions | None = None,
    ) -> None:
        self.poly = poly if poly is not None else default_table_polynomial()
        #: a deliberately tight budget so that, as in the paper's runs,
        #: some starting choices fail outright (Table I's ``fails``)
        self.options = options if options is not None else JTOptions(
            stage2_max_iterations=40,
            stage3_max_iterations=25,
            max_angle_tries=2,
        )

    # -- sequential measurements ------------------------------------------
    def sequential_run(self, seed: int) -> RootfinderRun:
        """One angle-seeded run, timed on this CPU."""
        return _run_one(self.poly, seed, self.options)

    def sequential_runs(self, seeds: Sequence[int]) -> list[RootfinderRun]:
        return [self.sequential_run(s) for s in seeds]

    # -- parallel execution ----------------------------------------------------
    def alternatives(self, seeds: Sequence[int]) -> list[Alternative]:
        alts = []
        for seed in seeds:
            def body(ws: dict, _seed=seed) -> float:
                report = find_all_zeros(self.poly, options=self.options, seed=_seed)
                if report.failed:
                    raise ConvergenceError(report.failure_reason)
                ws["zeros"] = report.zeros
                ws["seed"] = _seed
                return _seed

            alts.append(
                Alternative(
                    body,
                    name=f"angle-seed-{seed}",
                    guard=Guard(name="found-all-zeros"),
                )
            )
        return alts

    def parallel_run(
        self,
        seeds: Sequence[int],
        backend: str = "fork",
        timeout: float | None = None,
        **kwargs,
    ) -> BlockOutcome:
        """Race the seeds; the first complete zero set wins."""
        return run_alternatives(
            self.alternatives(seeds),
            initial={},
            timeout=timeout,
            backend=backend,
            **kwargs,
        )

    # -- Table I -------------------------------------------------------------------
    def _parallel_sim(
        self, runs: Sequence[RootfinderRun], processors: int, obs=None
    ) -> float:
        """Trace-driven parallel wall clock on a simulated machine.

        The paper ran on a 2-processor Ardent Titan; this host may have
        fewer CPUs than alternatives (often just one), so the parallel
        row is replayed on the simulation kernel: each alternative's
        *measured* sequential CPU time becomes its virtual compute cost
        (failing seeds abort after their measured time), ``processors``
        virtual CPUs timeshare them, and the calibrated fork/elimination
        overheads apply. See DESIGN.md section 3 for this substitution.
        """
        alternatives = []
        for run in runs:
            def body(ws: dict, _run=run):
                if _run.failed:
                    raise ConvergenceError("angle choice failed")
                ws["seed"] = _run.seed
                return _run.seed

            alternatives.append(
                Alternative(body, name=f"angle-seed-{run.seed}",
                            sim_cost=run.elapsed_s)
            )
        outcome = run_alternatives(
            alternatives, initial={}, backend="sim", cpus=processors, obs=obs
        )
        if outcome.failed:
            return float("nan")
        return outcome.elapsed_s

    def table_one_row(
        self,
        procs: int,
        base_seed: int = 0,
        backend: str = "sim",
        processors: int = 2,
        obs=None,
    ) -> TableOneRow:
        """One Table I row: sequential stats + parallel wall clock.

        ``backend="sim"`` (default) replays the measured per-seed times
        on a simulated ``processors``-CPU machine (the paper's 2-CPU
        Titan). ``backend="fork"`` really executes the race on this host,
        optionally pinned to ``processors`` CPUs when
        ``os.sched_setaffinity`` allows. ``obs`` (an
        :class:`~repro.obs.Observability`) traces the parallel race.
        """
        seeds = [base_seed + i for i in range(procs)]
        runs = self.sequential_runs(seeds)
        times = [r.elapsed_s for r in runs]
        fails = sum(1 for r in runs if r.failed)

        if backend == "sim":
            par = self._parallel_sim(runs, processors, obs=obs)
        else:
            restore_affinity = None
            if processors is not None and hasattr(os, "sched_setaffinity"):
                current = os.sched_getaffinity(0)
                if len(current) > processors:
                    restore_affinity = current
                    os.sched_setaffinity(0, set(list(current)[:processors]))
            try:
                t0 = time.perf_counter()
                outcome = self.parallel_run(seeds, backend=backend, obs=obs)
                par = time.perf_counter() - t0
                if outcome.failed:
                    par = float("nan")
            finally:
                if restore_affinity is not None:
                    os.sched_setaffinity(0, restore_affinity)

        return TableOneRow(
            procs=procs,
            max_s=max(times),
            min_s=min(times),
            avg_s=sum(times) / len(times),
            fails=fails,
            par_s=par,
        )

    def table_one(
        self,
        procs_list: Sequence[int] = (1, 2, 3, 4, 5, 6),
        base_seed: int = 0,
        backend: str = "sim",
        processors: int = 2,
    ) -> list[TableOneRow]:
        """The full Table I sweep."""
        return [
            self.table_one_row(p, base_seed=base_seed, backend=backend,
                               processors=processors)
            for p in procs_list
        ]


def render_table_one(rows: Sequence[TableOneRow]) -> str:
    """Fixed-width rendering matching the paper's column layout."""
    header = f"{'procs':>5} {'max':>8} {'min':>8} {'avg':>8} {'fails':>5} {'par':>8}"
    return "\n".join([header] + [str(r) for r in rows])
