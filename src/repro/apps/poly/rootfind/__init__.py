"""Complex polynomial zero finding (Jenkins-Traub Algorithm 419 [11]).

The paper's Table I workload: "Using polar coordinates, the angle of the
starting value is a random choice in the complex version of the
Jenkins-Traub polynomial zero finder. In practice, several angles are
tried, based on numerical experience. A parallel version of this
algorithm was created by making several choices for the starting value
and executing them in parallel."

- :mod:`repro.apps.poly.rootfind.polynomial` — dense complex polynomials
  (Horner evaluation, synthetic division, Cauchy radius bound).
- :mod:`repro.apps.poly.rootfind.jenkins_traub` — the three-stage
  no-shift / fixed-shift / variable-shift iteration with the random
  starting-angle degree of freedom, deflation driver, and failure
  accounting.
- :mod:`repro.apps.poly.rootfind.parallel` — the Multiple Worlds driver:
  several angle choices raced in parallel (Table I).
"""

from repro.apps.poly.rootfind.polynomial import Polynomial
from repro.apps.poly.rootfind.jenkins_traub import (
    JTOptions,
    JTReport,
    find_one_zero,
    find_all_zeros,
)
from repro.apps.poly.rootfind.parallel import (
    ParallelRootfinder,
    RootfinderRun,
    TableOneRow,
)

__all__ = [
    "Polynomial",
    "JTOptions",
    "JTReport",
    "find_one_zero",
    "find_all_zeros",
    "ParallelRootfinder",
    "RootfinderRun",
    "TableOneRow",
]
