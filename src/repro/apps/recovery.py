"""Recovery blocks under Multiple Worlds (paper section 4.1).

A *recovery block* (Randell's software fault tolerance construct) is

    ensure  <acceptance test>
    by      <primary alternate>
    else by <alternate 2>
    ...
    else error

Classically the alternates run one at a time against a restored state —
"standby spares" for software. Since each alternate is guaranteed the same
initial state, they can instead execute concurrently as Multiple Worlds:
the acceptance test becomes the guard, at most one alternate's state
change survives, and the COW layer keeps N copies of the state cheap.

Two execution strategies are provided so benches can compare them:

- :meth:`RecoveryBlock.run_sequential` — classic: primary first, restore
  and fall back on failure (cost grows with each failure);
- :meth:`RecoveryBlock.run_parallel` — the paper's transformation: race
  everything, pay ~the fastest acceptable alternate.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.core.alternative import Alternative, Guard
from repro.core.outcome import BlockOutcome
from repro.core.worlds import run_alternatives
from repro.errors import WorldsError

AcceptanceTest = Callable[[dict, Any], bool]
Alternate = Callable[[dict], Any]


@dataclass
class RecoveryResult:
    """Outcome of one recovery-block execution."""

    value: Any
    alternate: str  # name of the alternate whose result was accepted
    attempts: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    state: dict = field(default_factory=dict)
    outcome: BlockOutcome | None = None

    @property
    def succeeded(self) -> bool:
        return self.alternate != ""


class RecoveryBlock:
    """An ``ensure/by/else-by`` block with sequential and worlds modes."""

    def __init__(
        self,
        acceptance: AcceptanceTest,
        primary: Alternate,
        *alternates: Alternate,
        name: str = "recovery-block",
    ) -> None:
        if not callable(acceptance):
            raise WorldsError("acceptance test must be callable")
        self.acceptance = acceptance
        self.alternates: list[tuple[str, Alternate]] = []
        for i, alt in enumerate((primary, *alternates)):
            if not callable(alt):
                raise WorldsError(f"alternate {i} is not callable")
            self.alternates.append(
                (getattr(alt, "__name__", f"alternate{i}"), alt)
            )
        self.name = name

    def __len__(self) -> int:
        return len(self.alternates)

    # -- classic standby-spares execution ------------------------------------
    def run_sequential(self, state: dict) -> RecoveryResult:
        """Primary first; on failure restore the state and try the next.

        The restore is the classical "recovery cache" rollback — here a
        deep copy taken before each attempt.
        """
        attempts = []
        t0 = time.perf_counter()
        for alt_name, alt in self.alternates:
            attempts.append(alt_name)
            trial_state = copy.deepcopy(state)
            try:
                value = alt(trial_state)
            except Exception:
                continue  # alternate crashed: restore == discard trial copy
            try:
                accepted = bool(self.acceptance(trial_state, value))
            except Exception:
                accepted = False
            if accepted:
                return RecoveryResult(
                    value=value,
                    alternate=alt_name,
                    attempts=attempts,
                    elapsed_s=time.perf_counter() - t0,
                    state=trial_state,
                )
        return RecoveryResult(
            value=None,
            alternate="",
            attempts=attempts,
            elapsed_s=time.perf_counter() - t0,
            state=dict(state),
        )

    # -- Multiple Worlds execution ------------------------------------------------
    def as_alternatives(
        self,
        sim_costs: Sequence[float] | None = None,
        stagger_s: float = 0.0,
    ) -> list[Alternative]:
        """The block's alternates as guarded worlds alternatives.

        ``stagger_s`` delays alternate *i* by ``i * stagger_s``: the
        primary launches immediately, spares progressively later. A
        failing primary then costs at most one stagger of extra response
        time, while spares that were never needed may be eliminated
        before consuming any CPU — the paper's §4.1 note that
        "special modifications of Multiple Worlds may be necessary for
        fault-tolerant applications", made concrete.
        """
        alts = []
        for index, (alt_name, alt) in enumerate(self.alternates):
            cost = None
            if sim_costs is not None:
                cost = sim_costs[index]
            alts.append(
                Alternative(
                    alt,
                    name=alt_name,
                    guard=Guard(name="acceptance", accept=self.acceptance),
                    sim_cost=cost,
                    start_delay=index * stagger_s,
                )
            )
        return alts

    def run_parallel(
        self,
        state: dict,
        backend: str = "fork",
        timeout: float | None = None,
        sim_costs: Sequence[float] | None = None,
        stagger_s: float = 0.0,
        **kwargs: Any,
    ) -> RecoveryResult:
        """All alternates race; first accepted result commits."""
        t0 = time.perf_counter()
        outcome = run_alternatives(
            self.as_alternatives(sim_costs, stagger_s),
            initial=dict(state),
            timeout=timeout,
            backend=backend,
            **kwargs,
        )
        elapsed = time.perf_counter() - t0
        if outcome.failed:
            return RecoveryResult(
                value=None, alternate="", elapsed_s=elapsed,
                state=dict(state), outcome=outcome,
                attempts=[l.name for l in outcome.losers],
            )
        return RecoveryResult(
            value=outcome.value,
            alternate=outcome.winner.name,
            attempts=[outcome.winner.name],
            elapsed_s=elapsed,
            state=outcome.extras.get("state", {}),
            outcome=outcome,
        )

    # -- supervised execution -------------------------------------------------
    def run_supervised(
        self,
        state: dict,
        backend: str = "fork",
        timeout: float | None = None,
        stagger_s: float = 0.0,
        supervisor: "Supervisor | None" = None,
        fault_plan=None,
        journal=None,
        **kwargs: Any,
    ) -> RecoveryResult:
        """Race the alternates under a :class:`~repro.faults.Supervisor`.

        The supervised form is what §4.1's "special modifications ...
        for fault-tolerant applications" become in this codebase: the
        acceptance test is still the guard and the alternates still
        race, but crashed or hung alternates are respawned as fresh
        staggered spares (bounded retries), hangs are escalated by the
        fork watchdog, and a failing spawn degrades the whole block down
        the backend chain instead of failing it. ``fault_plan`` drives
        deterministic fault injection for tests and benches; ``journal``
        (a :class:`~repro.journal.CommitJournal`) makes the accepted
        alternate durable and replayable across restarts.
        """
        from repro.faults.supervisor import Supervisor  # local: avoid cycle

        sup = supervisor or Supervisor(
            spare_stagger_s=stagger_s, fault_plan=fault_plan, journal=journal
        )
        t0 = time.perf_counter()
        outcome = sup.run(
            self.as_alternatives(None, stagger_s),
            initial=dict(state),
            timeout=timeout,
            backend=backend,
            **kwargs,
        )
        elapsed = time.perf_counter() - t0
        attempts = [
            name
            for entry in outcome.extras.get("supervisor", {}).get("history", [])
            for name, _ in entry["losers"]
        ]
        if outcome.failed:
            return RecoveryResult(
                value=None, alternate="", elapsed_s=elapsed,
                state=dict(state), outcome=outcome,
                attempts=attempts or [l.name for l in outcome.losers],
            )
        return RecoveryResult(
            value=outcome.value,
            alternate=outcome.winner.name,
            attempts=attempts + [outcome.winner.name],
            elapsed_s=elapsed,
            state=outcome.extras.get("state", {}),
            outcome=outcome,
        )


def flaky(fn: Alternate, failures_before_success: int, name: str | None = None) -> Alternate:
    """Fault injection: raise for the first N calls, then behave.

    Deterministic (a call counter, not randomness) so tests and benches
    are reproducible. The counter lives in the returned closure — note
    that under the fork backend each world gets its own copy-on-write
    counter, which is exactly the semantics a real transient fault source
    would show per-world.
    """
    state = {"remaining": failures_before_success}

    def wrapper(ws: dict) -> Any:
        if state["remaining"] > 0:
            state["remaining"] -= 1
            raise RuntimeError(f"injected fault ({state['remaining'] + 1} remaining)")
        return fn(ws)

    wrapper.__name__ = name or f"flaky-{getattr(fn, '__name__', 'fn')}"
    return wrapper
