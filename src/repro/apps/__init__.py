"""Application domains from the paper's section 4.

- :mod:`repro.apps.recovery` — distributed execution of recovery blocks
  (section 4.1).
- :mod:`repro.apps.prolog` — OR-parallelism in a Horn-clause engine
  (section 4.2).
- :mod:`repro.apps.poly` — polyalgorithms and the parallel Jenkins-Traub
  rootfinder behind Table I (section 4.3).
"""
