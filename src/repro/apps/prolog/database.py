"""Clauses and the knowledge base."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.apps.prolog.terms import Atom, Struct, Term, freshen
from repro.errors import PrologError


@dataclass(frozen=True)
class Clause:
    """``Head :- B1, ..., Bn`` (a fact when the body is empty)."""

    head: Term
    body: tuple = ()

    @property
    def indicator(self) -> str:
        if isinstance(self.head, Struct):
            return self.head.indicator
        if isinstance(self.head, Atom):
            return f"{self.head.name}/0"
        raise PrologError(f"invalid clause head: {self.head}")

    @property
    def is_fact(self) -> bool:
        return not self.body

    def rename(self) -> "Clause":
        """A copy with fresh variables (one per selection)."""
        mapping: dict = {}
        head = freshen(self.head, mapping)
        body = tuple(freshen(goal, mapping) for goal in self.body)
        return Clause(head, body)

    def __str__(self) -> str:
        if self.is_fact:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(g) for g in self.body)}."


@dataclass
class Database:
    """Clauses indexed by predicate indicator, in assertion order."""

    _clauses: dict[str, list[Clause]] = field(default_factory=dict)

    @classmethod
    def from_clauses(cls, clauses: Iterable[Clause]) -> "Database":
        db = cls()
        for clause in clauses:
            db.assertz(clause)
        return db

    @classmethod
    def from_source(cls, text: str) -> "Database":
        from repro.apps.prolog.parser import parse_program

        return cls.from_clauses(parse_program(text))

    def assertz(self, clause: Clause) -> None:
        """Append ``clause`` to its predicate (standard assert order)."""
        self._clauses.setdefault(clause.indicator, []).append(clause)

    def asserta(self, clause: Clause) -> None:
        """Prepend ``clause`` to its predicate."""
        self._clauses.setdefault(clause.indicator, []).insert(0, clause)

    def clauses_for(self, goal: Term) -> list[Clause]:
        """The candidate clauses for ``goal``, in program order."""
        if isinstance(goal, Struct):
            key = goal.indicator
        elif isinstance(goal, Atom):
            key = f"{goal.name}/0"
        else:
            raise PrologError(f"cannot call non-callable term: {goal}")
        return self._clauses.get(key, [])

    def predicates(self) -> list[str]:
        return sorted(self._clauses)

    def __len__(self) -> int:
        return sum(len(v) for v in self._clauses.values())

    def __str__(self) -> str:
        lines = []
        for key in self.predicates():
            lines.extend(str(c) for c in self._clauses[key])
        return "\n".join(lines)
