"""Unification over persistent substitutions.

A substitution is an immutable mapping ``Var -> Term``. ``walk`` follows
variable bindings to the representative term; ``unify`` extends a
substitution or fails; ``resolve`` applies a substitution fully to a
term. Persistence (copying the dict on extension) keeps the backtracking
interpreter and the OR-parallel worlds trivially isolated from each other
— the same "copy, don't merge" stance the paper takes for binding
environments.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.apps.prolog.terms import Atom, Num, Struct, Term, Var

Subst = Mapping[Var, Term]

EMPTY_SUBST: dict[Var, Term] = {}


def walk(term: Term, subst: Subst) -> Term:
    """Dereference ``term`` through variable bindings (one level deep)."""
    while isinstance(term, Var):
        bound = subst.get(term)
        if bound is None:
            return term
        term = bound
    return term


def occurs(var: Var, term: Term, subst: Subst) -> bool:
    """True when ``var`` appears in ``term`` under ``subst``."""
    stack = [term]
    while stack:
        t = walk(stack.pop(), subst)
        if isinstance(t, Var):
            if t == var:
                return True
        elif isinstance(t, Struct):
            stack.extend(t.args)
    return False


def unify(a: Term, b: Term, subst: Subst, occurs_check: bool = False) -> Optional[Subst]:
    """Most general unifier extension of ``subst``, or None.

    Iterative (explicit work stack) so deep lists do not hit Python's
    recursion limit. The occurs check is off by default, as in most
    Prolog systems.
    """
    work = [(a, b)]
    current: Subst = subst
    while work:
        x, y = work.pop()
        x = walk(x, current)
        y = walk(y, current)
        # NOTE: no deep ``x == y`` fast path — dataclass equality recurses
        # and would overflow on very deep lists; the structural walk below
        # is already iterative.
        if x is y:
            continue
        if isinstance(x, Var) and isinstance(y, Var) and x == y:
            continue
        if isinstance(x, Var):
            if occurs_check and occurs(x, y, current):
                return None
            extended = dict(current)
            extended[x] = y
            current = extended
        elif isinstance(y, Var):
            if occurs_check and occurs(y, x, current):
                return None
            extended = dict(current)
            extended[y] = x
            current = extended
        elif isinstance(x, Atom) and isinstance(y, Atom):
            if x.name != y.name:
                return None
        elif isinstance(x, Num) and isinstance(y, Num):
            if x.value != y.value:
                return None
        elif isinstance(x, Struct) and isinstance(y, Struct):
            if x.functor != y.functor or x.arity != y.arity:
                return None
            work.extend(zip(x.args, y.args))
        else:
            return None
    return current


def resolve(term: Term, subst: Subst) -> Term:
    """Apply ``subst`` to ``term`` completely (deep walk)."""
    term = walk(term, subst)
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(resolve(a, subst) for a in term.args))
    return term
