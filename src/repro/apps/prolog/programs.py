"""Canonical Prolog programs for examples, tests and benches.

Each constant is plain source text for :meth:`Database.from_source` /
:meth:`Interpreter.with_library`. They are chosen to exhibit the
properties the paper's section 4.2 discussion needs: choice points whose
branches differ wildly in cost, and programs where clause order punishes
depth-first search.
"""

FAMILY = """
parent(tom, bob).    parent(tom, liz).
parent(bob, ann).    parent(bob, pat).
parent(pat, jim).    parent(liz, joe).
parent(ann, sue).    parent(jim, max).

male(tom). male(bob). male(pat). male(jim). male(joe). male(max).
female(liz). female(ann). female(sue).

father(X, Y) :- parent(X, Y), male(X).
mother(X, Y) :- parent(X, Y), female(X).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
sibling(X, Y) :- parent(P, X), parent(P, Y), X \\= Y.
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
"""

#: N-queens with incremental placement; query: queens(6, Qs)
QUEENS = """
range(N, N, [N]).
range(L, H, [L|T]) :- L < H, L1 is L + 1, range(L1, H, T).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

noattack(_, [], _).
noattack(Q, [P|Ps], D) :- Q =\\= P + D, Q =\\= P - D,
                          D1 is D + 1, noattack(Q, Ps, D1).

place([], Placed, Placed).
place(Unplaced, Placed, Qs) :- select(Q, Unplaced, Rest),
                               noattack(Q, Placed, 1),
                               place(Rest, [Q|Placed], Qs).

queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
"""

#: map colouring of a small planar map; query: colour_map(A,B,C,D,E)
COLORING = """
colour(red). colour(green). colour(blue).

diff(X, Y) :- colour(X), colour(Y), X \\= Y.

colour_map(A, B, C, D, E) :-
    diff(A, B), diff(A, C), diff(A, D),
    diff(B, C), diff(C, D),
    diff(B, E), diff(C, E), diff(D, E).
"""

#: a weighted-ish route search where strategy order is pessimal for
#: depth-first execution (the OR-parallel showcase)
SKEWED_SEARCH = """
edge(s, a). edge(a, b). edge(b, c). edge(c, d). edge(d, a).
edge(a, c). edge(c, a). edge(b, d). edge(d, b).
edge(s, x). edge(x, y). edge(y, goal).

path(X, X, _).
path(X, Y, D) :- D > 0, edge(X, Z), D1 is D - 1, path(Z, Y, D1).

find(deep_probe)  :- path(s, goal, 8), fail.
find(wide_probe)  :- path(s, goal, 10), fail.
find(direct)      :- path(x, goal, 3).
"""

#: list utilities beyond the standard library, for parser/engine stress
LISTS_EXTRA = """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, ST), S is ST + H.

max_list([X], X).
max_list([H|T], M) :- max_list(T, MT), (H >= MT, M = H ; H < MT, M = MT).
"""


def naive_reverse_goal(n: int) -> str:
    """The classic LIPS workload: nrev on an n-element list."""
    items = ", ".join(str(i) for i in range(n))
    return f"nrev([{items}], R)"
