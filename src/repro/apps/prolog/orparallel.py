"""OR-parallel execution: clause alternatives as Multiple Worlds.

At a choice point, each clause whose head matches the current goal starts
one world; the worlds race, and the first to find a solution commits —
committed-choice nondeterminism, the flavour the paper advocates ("we
choose only one alternative, no merging is necessary").

Parallelism is extracted at the query's first user-defined goal (the top
of the AND-OR tree); each branch then runs the ordinary sequential engine
below it. Three execution modes:

- ``backend="thread"/"fork"`` — really race the branches;
- :meth:`ORParallelEngine.solve_first_sim` — trace-driven: measure each
  branch's inference count sequentially, then replay the race on the
  simulation kernel with a per-inference virtual cost (deterministic,
  CPU-count-independent; how the OR-parallel benches model a
  multiprocessor this host does not have).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps.prolog.database import Database
from repro.apps.prolog.interpreter import Interpreter, Solution, SolveStats
from repro.apps.prolog.terms import Term, Var, variables_in
from repro.apps.prolog.unify import EMPTY_SUBST, Subst, resolve, unify, walk
from repro.core.alternative import Alternative
from repro.core.outcome import BlockOutcome
from repro.core.worlds import run_alternatives
from repro.errors import PrologError


@dataclass
class Branch:
    """One OR-branch: the goal list after selecting one clause."""

    index: int
    clause_str: str
    goals: tuple
    subst: Subst
    query_vars: tuple


@dataclass
class BranchWork:
    """Sequential measurement of one branch (for trace-driven racing)."""

    index: int
    clause_str: str
    inferences: int
    solution: Solution | None

    @property
    def succeeds(self) -> bool:
        return self.solution is not None


class ORParallelEngine:
    """Committed-choice OR-parallel driver over one database."""

    def __init__(self, db: Database, max_depth: int = 400,
                 max_steps: int = 2_000_000) -> None:
        self.db = db
        self.max_depth = max_depth
        self.max_steps = max_steps

    def _interpreter(self) -> Interpreter:
        return Interpreter(self.db, max_depth=self.max_depth, max_steps=self.max_steps)

    def _as_goals(self, query) -> tuple:
        if isinstance(query, str):
            from repro.apps.prolog.parser import parse_query

            return parse_query(query)
        return tuple(query)

    @staticmethod
    def _query_vars(goals: Sequence[Term]) -> tuple:
        seen: dict[str, Var] = {}
        for goal in goals:
            for var in variables_in(goal):
                if not var.name.startswith("_"):
                    seen.setdefault(var.name, var)
        return tuple(seen.values())

    # -- branch extraction ------------------------------------------------
    def branches(self, query) -> list[Branch]:
        """The OR-branches at the query's first goal.

        The first goal must be user-defined (clauses in the database);
        builtins offer no OR-parallelism at the top.
        """
        goals = self._as_goals(query)
        if not goals:
            raise PrologError("empty query")
        first = walk(goals[0], EMPTY_SUBST)
        clauses = self.db.clauses_for(first)
        if not clauses:
            raise PrologError(
                f"no OR-parallelism: first goal {first} has no database clauses"
            )
        query_vars = self._query_vars(goals)
        out = []
        for index, clause in enumerate(clauses):
            renamed = clause.rename()
            unified = unify(first, renamed.head, EMPTY_SUBST)
            if unified is None:
                continue
            out.append(
                Branch(
                    index=index,
                    clause_str=str(clause),
                    goals=renamed.body + goals[1:],
                    subst=unified,
                    query_vars=query_vars,
                )
            )
        if not out:
            raise PrologError(f"no clause head unifies with {first}")
        return out

    def _solve_branch(self, branch: Branch) -> tuple[Solution | None, SolveStats]:
        """Run one branch to its first solution with the sequential engine."""
        interp = self._interpreter()
        stats = SolveStats()
        interp.last_stats = stats
        subst = next(interp._solve(branch.goals, branch.subst, 1, stats), None)
        if subst is None:
            return None, stats
        bindings = {v.name: resolve(v, subst) for v in branch.query_vars}
        return Solution(bindings=bindings, subst=subst), stats

    # -- real parallel execution ---------------------------------------------
    def alternatives(self, query) -> list[Alternative]:
        alts = []
        for branch in self.branches(query):
            def body(ws: dict, _branch=branch):
                solution, stats = self._solve_branch(_branch)
                if solution is None:
                    raise PrologError("no solution in this branch")
                ws["bindings"] = solution.bindings
                ws["inferences"] = stats.inferences
                ws["clause"] = _branch.clause_str
                return solution.bindings

            alts.append(Alternative(body, name=f"clause-{branch.index}"))
        return alts

    def solve_first_parallel(
        self, query, backend: str = "thread", timeout: float | None = None,
        **kwargs,
    ) -> tuple[Solution | None, BlockOutcome]:
        """Race the OR-branches for the first solution."""
        outcome = run_alternatives(
            self.alternatives(query),
            initial={},
            timeout=timeout,
            backend=backend,
            **kwargs,
        )
        if outcome.failed:
            return None, outcome
        return Solution(bindings=outcome.value), outcome

    # -- trace-driven simulated race -----------------------------------------------
    def branch_work(self, query) -> list[BranchWork]:
        """Sequentially measure every branch (inferences to first answer)."""
        out = []
        for branch in self.branches(query):
            try:
                solution, stats = self._solve_branch(branch)
            except PrologError:
                solution, stats = None, SolveStats(inferences=self.max_steps)
            out.append(
                BranchWork(
                    index=branch.index,
                    clause_str=branch.clause_str,
                    inferences=stats.inferences + stats.builtin_calls,
                    solution=solution,
                )
            )
        return out

    def solve_first_sim(
        self,
        query,
        per_inference_s: float = 1e-4,
        cpus: int = 4,
        **kwargs,
    ) -> tuple[Solution | None, BlockOutcome]:
        """Replay the OR-race on the simulation kernel.

        Each branch's virtual duration is its measured inference count ×
        ``per_inference_s``; failing branches abort after their full
        search cost. Returns the committed solution plus the outcome with
        virtual response time and overheads.
        """
        work = self.branch_work(query)
        alternatives = []
        for item in work:
            def body(ws: dict, _item=item):
                if not _item.succeeds:
                    raise PrologError("no solution in this branch")
                ws["bindings"] = _item.solution.bindings
                ws["clause"] = _item.clause_str
                return _item.solution.bindings

            alternatives.append(
                Alternative(
                    body,
                    name=f"clause-{item.index}",
                    sim_cost=item.inferences * per_inference_s,
                )
            )
        outcome = run_alternatives(
            alternatives, initial={}, backend="sim", cpus=cpus, **kwargs
        )
        if outcome.failed:
            return None, outcome
        return Solution(bindings=outcome.value), outcome

    # -- sequential reference ------------------------------------------------------------
    def solve_first_sequential(self, query) -> tuple[Solution | None, SolveStats]:
        """Plain depth-first first-solution search (the baseline)."""
        interp = self._interpreter()
        solution = interp.solve_first(query)
        return solution, interp.last_stats
