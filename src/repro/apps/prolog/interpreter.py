"""Sequential SLD resolution with backtracking.

A straightforward depth-first interpreter: goals left-to-right, clauses
in program order, generators for backtracking. Budget controls (depth and
inference-step limits) make runaway programs fail loudly — which is also
how the benches demonstrate the paper's point that a random sequential
choice (Scheme B) is "frustrated by failures or infinite loops".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.apps.prolog.database import Database
from repro.apps.prolog.terms import Atom, Num, Struct, Term, Var, variables_in
from repro.apps.prolog.unify import EMPTY_SUBST, Subst, resolve, unify, walk
from repro.errors import PrologError

Query = Union[str, tuple]

#: clauses for the usual list predicates, loaded via ``with_library``
STANDARD_LIBRARY = """
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

length([], 0).
length([_|T], N) :- length(T, M), N is M + 1.

last([X], X).
last([_|T], X) :- last(T, X).

reverse(L, R) :- rev_acc(L, [], R).
rev_acc([], A, A).
rev_acc([H|T], A, R) :- rev_acc(T, [H|A], R).

between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).
"""


@dataclass
class SolveStats:
    """Work accounting for one query."""

    inferences: int = 0  # clause selections attempted
    unifications: int = 0
    builtin_calls: int = 0
    deepest: int = 0


@dataclass
class Solution:
    """One proof: the query variables' bindings."""

    bindings: dict[str, Term] = field(default_factory=dict)
    subst: Subst = field(default_factory=dict)

    def __getitem__(self, name: str) -> Term:
        return self.bindings[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bindings

    def as_strings(self) -> dict[str, str]:
        return {k: str(v) for k, v in self.bindings.items()}

    def __str__(self) -> str:
        if not self.bindings:
            return "true"
        return ", ".join(f"{k} = {v}" for k, v in sorted(self.bindings.items()))


_COMPARISONS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}


class Interpreter:
    """Depth-first SLD resolution over one database."""

    def __init__(
        self,
        db: Database,
        max_depth: int = 100_000,
        max_steps: int = 2_000_000,
        occurs_check: bool = False,
    ) -> None:
        self.db = db
        self.max_depth = max_depth
        self.max_steps = max_steps
        self.occurs_check = occurs_check
        self.last_stats = SolveStats()

    @classmethod
    def with_library(cls, source: str = "", **kwargs) -> "Interpreter":
        """An interpreter over STANDARD_LIBRARY plus ``source``."""
        return cls(Database.from_source(STANDARD_LIBRARY + source), **kwargs)

    # -- public API -----------------------------------------------------------
    def solve(self, query: Query) -> Iterator[Solution]:
        """All solutions, lazily, in depth-first order."""
        goals = self._as_goals(query)
        stats = SolveStats()
        self.last_stats = stats
        query_vars = []
        seen = set()
        for goal in goals:
            for var in variables_in(goal):
                if var.name not in seen and not var.name.startswith("_"):
                    seen.add(var.name)
                    query_vars.append(var)
        for subst in self._solve(goals, EMPTY_SUBST, 0, stats):
            yield Solution(
                bindings={v.name: resolve(v, subst) for v in query_vars},
                subst=subst,
            )

    def solve_first(self, query: Query) -> Solution | None:
        return next(self.solve(query), None)

    def solve_all(self, query: Query, limit: int | None = None) -> list[Solution]:
        out = []
        for solution in self.solve(query):
            out.append(solution)
            if limit is not None and len(out) >= limit:
                break
        return out

    def prove(self, query: Query) -> bool:
        return self.solve_first(query) is not None

    def count_solutions(self, query: Query, limit: int | None = None) -> int:
        return len(self.solve_all(query, limit=limit))

    # -- engine ------------------------------------------------------------------
    def _as_goals(self, query: Query) -> tuple:
        if isinstance(query, str):
            from repro.apps.prolog.parser import parse_query

            return parse_query(query)
        return tuple(query)

    def _budget(self, stats: SolveStats, depth: int) -> None:
        stats.deepest = max(stats.deepest, depth)
        if depth > self.max_depth:
            raise PrologError(f"depth limit exceeded ({self.max_depth})")
        if stats.inferences + stats.builtin_calls > self.max_steps:
            raise PrologError(f"inference budget exceeded ({self.max_steps})")

    def _solve(self, goals: tuple, subst: Subst, depth: int, stats: SolveStats) -> Iterator[Subst]:
        """Depth-first search with an explicit choice-point stack.

        The stack holds paused :meth:`_expand` generators (heap, not the
        Python call stack), so resolution chains thousands of steps long
        — e.g. naive fibonacci — do not hit the interpreter recursion
        limit. ``depth`` counts resolution steps along the current path.
        """
        if not goals:
            yield subst
            return
        self._budget(stats, depth)
        stack = [self._expand(goals, subst, depth, stats)]
        while stack:
            item = next(stack[-1], None)
            if item is None:
                stack.pop()
                continue
            next_goals, next_subst, next_depth = item
            if not next_goals:
                yield next_subst
                continue
            self._budget(stats, next_depth)
            stack.append(self._expand(next_goals, next_subst, next_depth, stats))

    def _expand(self, goals: tuple, subst: Subst, depth: int,
                stats: SolveStats) -> Iterator[tuple]:
        """Successor states of the first goal: one per applicable clause."""
        goal = walk(goals[0], subst)
        rest = goals[1:]
        handled = self._builtin(goal, rest, subst, depth, stats)
        if handled is not None:
            yield from handled
            return
        for clause in self.db.clauses_for(goal):
            stats.inferences += 1
            renamed = clause.rename()
            stats.unifications += 1
            unified = unify(goal, renamed.head, subst, self.occurs_check)
            if unified is None:
                continue
            yield (renamed.body + rest, unified, depth + 1)

    # -- builtins -----------------------------------------------------------------
    def _builtin(self, goal: Term, rest: tuple, subst: Subst, depth: int,
                 stats: SolveStats) -> Iterator[tuple] | None:
        """Dispatch builtin goals; None means "not a builtin".

        Builtins yield *successor states* ``(goals, subst, depth)`` —
        at most one for the deterministic builtins here.
        """
        if isinstance(goal, Atom):
            if goal.name == "true":
                return iter([(rest, subst, depth)])
            if goal.name in ("fail", "false"):
                return iter(())
            return None
        if not isinstance(goal, Struct):
            raise PrologError(f"cannot call non-callable term: {goal}")

        name, arity = goal.functor, goal.arity
        args = goal.args

        if name == "=" and arity == 2:
            stats.builtin_calls += 1
            unified = unify(args[0], args[1], subst, self.occurs_check)
            if unified is None:
                return iter(())
            return iter([(rest, unified, depth)])

        if name == "\\=" and arity == 2:
            stats.builtin_calls += 1
            if unify(args[0], args[1], subst, self.occurs_check) is None:
                return iter([(rest, subst, depth)])
            return iter(())

        if name == "==" and arity == 2:
            stats.builtin_calls += 1
            if resolve(args[0], subst) == resolve(args[1], subst):
                return iter([(rest, subst, depth)])
            return iter(())

        if name == "\\==" and arity == 2:
            stats.builtin_calls += 1
            if resolve(args[0], subst) != resolve(args[1], subst):
                return iter([(rest, subst, depth)])
            return iter(())

        if name == "is" and arity == 2:
            stats.builtin_calls += 1
            value = Num(self._eval(args[1], subst))
            unified = unify(args[0], value, subst, self.occurs_check)
            if unified is None:
                return iter(())
            return iter([(rest, unified, depth)])

        if name in _COMPARISONS and arity == 2:
            stats.builtin_calls += 1
            a = self._eval(args[0], subst)
            b = self._eval(args[1], subst)
            if _COMPARISONS[name](a, b):
                return iter([(rest, subst, depth)])
            return iter(())

        if name == "\\+" and arity == 1:
            stats.builtin_calls += 1
            succeeded = next(self._solve((args[0],), subst, depth + 1, stats), None)
            if succeeded is None:
                return iter([(rest, subst, depth)])
            return iter(())

        if name == "call" and arity == 1:
            stats.builtin_calls += 1
            return iter([((args[0],) + rest, subst, depth + 1)])

        if name == "once" and arity == 1:
            # deterministic call: first solution only, no backtracking
            stats.builtin_calls += 1
            first = next(self._solve((args[0],), subst, depth + 1, stats), None)
            if first is None:
                return iter(())
            return iter([(rest, first, depth)])

        if name in ("var", "nonvar", "atom", "number", "integer") and arity == 1:
            stats.builtin_calls += 1
            term = walk(args[0], subst)
            checks = {
                "var": isinstance(term, Var),
                "nonvar": not isinstance(term, Var),
                "atom": isinstance(term, Atom),
                "number": isinstance(term, Num),
                "integer": isinstance(term, Num) and isinstance(term.value, int),
            }
            if checks[name]:
                return iter([(rest, subst, depth)])
            return iter(())

        if name == "," and arity == 2:
            # a conjunction reached goal position (e.g. inside ';'):
            # flatten it back into the goal list
            from repro.apps.prolog.parser import flatten_conjunction

            return iter([(flatten_conjunction(goal) + rest, subst, depth)])

        if name == ";" and arity == 2:
            # disjunction: two successor states, left branch first
            stats.builtin_calls += 1
            return iter(
                [
                    ((args[0],) + rest, subst, depth + 1),
                    ((args[1],) + rest, subst, depth + 1),
                ]
            )

        return None

    def _eval(self, term: Term, subst: Subst):
        """Arithmetic evaluation for ``is`` and comparisons."""
        term = walk(term, subst)
        if isinstance(term, Num):
            return term.value
        if isinstance(term, Var):
            raise PrologError(f"arguments are not sufficiently instantiated: {term}")
        if isinstance(term, Struct) and term.arity == 2:
            a = self._eval(term.args[0], subst)
            b = self._eval(term.args[1], subst)
            if term.functor == "+":
                return a + b
            if term.functor == "-":
                return a - b
            if term.functor == "*":
                return a * b
            if term.functor == "/":
                if b == 0:
                    raise PrologError("zero divisor")
                value = a / b
                return int(value) if isinstance(a, int) and isinstance(b, int) and a % b == 0 else value
            if term.functor == "//":
                if b == 0:
                    raise PrologError("zero divisor")
                return a // b
            if term.functor == "mod":
                if b == 0:
                    raise PrologError("zero divisor")
                return a % b
        raise PrologError(f"not an arithmetic expression: {term}")
