"""A Horn-clause engine with OR-parallel execution (paper section 4.2).

"OR-parallelism maps closely to our problem of attempting alternatives in
parallel. The alternatives are specialized to clauses of predicate logic."
The engine implements committed-choice OR-parallelism — the paper's
position is that one solution is selected, so worlds copy and never merge
("What our method does is copy, and since we choose only one alternative,
no merging is necessary").

- :mod:`repro.apps.prolog.terms` — atoms, numbers, variables, structures.
- :mod:`repro.apps.prolog.unify` — unification with substitutions.
- :mod:`repro.apps.prolog.parser` — a small ISO-flavoured reader.
- :mod:`repro.apps.prolog.database` — clauses and the fact/rule store.
- :mod:`repro.apps.prolog.interpreter` — sequential SLD resolution with
  backtracking, arithmetic and negation-as-failure builtins.
- :mod:`repro.apps.prolog.orparallel` — clause-level alternatives raced
  under Multiple Worlds.
"""

from repro.apps.prolog.terms import Atom, Num, Struct, Var
from repro.apps.prolog.parser import parse_program, parse_query, parse_term
from repro.apps.prolog.database import Clause, Database
from repro.apps.prolog.interpreter import Interpreter, Solution, SolveStats
from repro.apps.prolog.orparallel import ORParallelEngine

__all__ = [
    "Atom",
    "Num",
    "Var",
    "Struct",
    "parse_program",
    "parse_query",
    "parse_term",
    "Clause",
    "Database",
    "Interpreter",
    "Solution",
    "SolveStats",
    "ORParallelEngine",
]
