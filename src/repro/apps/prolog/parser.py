"""A small Prolog reader.

Supports the subset the examples and benches need:

- facts and rules: ``parent(tom, bob).``, ``anc(X,Z) :- parent(X,Y), anc(Y,Z).``
- queries: ``?- anc(tom, Who).`` (the ``?-`` is optional in
  :func:`parse_query`)
- atoms, integers/floats, variables (leading uppercase or ``_``),
  compound terms, lists ``[a, b | T]``
- operators: ``:-``, ``,``, ``;``, ``\\+``, comparison/arithmetic
  (``= \\= == \\== < > =< >= is =:= =\\= + - * / // mod``)
- ``%`` line comments
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.apps.prolog.database import Clause
from repro.apps.prolog.terms import Atom, NIL, Num, Struct, Term, Var, make_list
from repro.errors import PrologSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<num>\d+\.\d+|\d+)
  | (?P<name>[a-z][A-Za-z0-9_]*)
  | (?P<var>[A-Z_][A-Za-z0-9_]*)
  | (?P<punct>\?-|:-|=\\=|=:=|\\==|=<|>=|\\=|==|is\b|mod\b|//|\\\+|[()\[\],|.;=<>+\-*/])
    """,
    re.VERBOSE,
)

#: infix operators: symbol -> (precedence, right_associative)
_INFIX: dict[str, tuple[int, bool]] = {
    ":-": (1200, False),
    ";": (1100, True),
    ",": (1000, True),
    "=": (700, False),
    "\\=": (700, False),
    "==": (700, False),
    "\\==": (700, False),
    "<": (700, False),
    ">": (700, False),
    "=<": (700, False),
    ">=": (700, False),
    "is": (700, False),
    "=:=": (700, False),
    "=\\=": (700, False),
    "+": (500, False),
    "-": (500, False),
    "*": (400, False),
    "/": (400, False),
    "//": (400, False),
    "mod": (400, False),
}

_ARG_PRECEDENCE = 999  # arguments and list items bind tighter than ','


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PrologSyntaxError(f"unexpected character {text[pos]!r}", column=pos)
        pos = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        token_text = match.group()
        if kind == "name" and token_text in ("is", "mod"):
            kind = "punct"  # word operators
        yield _Token(kind, token_text, match.start())
    yield _Token("eof", "", pos)


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = list(_tokenize(text))
        self.index = 0

    # -- token plumbing ------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise PrologSyntaxError(
                f"expected {text!r}, found {token.text!r}", column=token.pos
            )
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "eof"

    # -- expressions ------------------------------------------------------
    def parse(self, max_prec: int = 1200) -> Term:
        left = self.parse_primary()
        while True:
            token = self.peek()
            op = _INFIX.get(token.text) if token.kind == "punct" else None
            if op is None:
                return left
            prec, right_assoc = op
            if prec > max_prec:
                return left
            self.next()
            right = self.parse(prec if right_assoc else prec - 1)
            left = Struct(token.text, (left, right))

    def parse_primary(self) -> Term:
        token = self.next()
        if token.kind == "num":
            return Num(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "var":
            if token.text == "_":
                # each _ is a distinct anonymous variable
                return Var(f"_G{token.pos}")
            return Var(token.text)
        if token.kind == "name":
            if self.peek().text == "(":
                self.next()
                args = self.parse_arguments(")")
                return Struct(token.text, tuple(args))
            return Atom(token.text)
        if token.text == "(":
            inner = self.parse(1200)
            self.expect(")")
            return inner
        if token.text == "[":
            return self.parse_list()
        if token.text == "-":
            operand = self.parse(200)
            if isinstance(operand, Num):
                return Num(-operand.value)
            return Struct("-", (Num(0), operand))
        if token.text == "\\+":
            operand = self.parse(900)
            return Struct("\\+", (operand,))
        raise PrologSyntaxError(f"unexpected token {token.text!r}", column=token.pos)

    def parse_arguments(self, closing: str) -> list[Term]:
        args = [self.parse(_ARG_PRECEDENCE)]
        while self.peek().text == ",":
            self.next()
            args.append(self.parse(_ARG_PRECEDENCE))
        self.expect(closing)
        return args

    def parse_list(self) -> Term:
        if self.peek().text == "]":
            self.next()
            return NIL
        items = [self.parse(_ARG_PRECEDENCE)]
        while self.peek().text == ",":
            self.next()
            items.append(self.parse(_ARG_PRECEDENCE))
        tail: Term = NIL
        if self.peek().text == "|":
            self.next()
            tail = self.parse(_ARG_PRECEDENCE)
        self.expect("]")
        return make_list(items, tail)


def flatten_conjunction(term: Term) -> tuple[Term, ...]:
    """Split nested ``','``-structures into a flat goal tuple."""
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        return flatten_conjunction(term.args[0]) + flatten_conjunction(term.args[1])
    return (term,)


def parse_term(text: str) -> Term:
    """Parse a single term (no trailing ``.`` required)."""
    parser = _Parser(text)
    term = parser.parse(1200)
    if parser.peek().text == ".":
        parser.next()
    if not parser.at_end():
        bad = parser.peek()
        raise PrologSyntaxError(f"trailing input {bad.text!r}", column=bad.pos)
    return term


def parse_clause(term: Term) -> Clause:
    """Interpret a parsed term as a fact or a rule."""
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 2:
        head, body = term.args
        return Clause(head, flatten_conjunction(body))
    return Clause(term, ())


def parse_program(text: str) -> list[Clause]:
    """Parse a whole program: ``.``-terminated facts and rules."""
    parser = _Parser(text)
    clauses = []
    while not parser.at_end():
        term = parser.parse(1200)
        parser.expect(".")
        clauses.append(parse_clause(term))
    return clauses


def parse_query(text: str) -> tuple[Term, ...]:
    """Parse a query: optional ``?-`` prefix, optional trailing ``.``."""
    parser = _Parser(text)
    if parser.peek().text == "?-":
        parser.next()
    term = parser.parse(1200)
    if parser.peek().text == ".":
        parser.next()
    if not parser.at_end():
        bad = parser.peek()
        raise PrologSyntaxError(f"trailing input {bad.text!r}", column=bad.pos)
    return flatten_conjunction(term)
