"""Prolog terms: atoms, numbers, variables, compound structures.

Terms are immutable; variables are identified by name + an allocation
serial so clause renaming ("freshening") can create distinct copies of
the same textual variable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Union

_fresh_counter = itertools.count(1)


@dataclass(frozen=True)
class Atom:
    """A constant symbol: ``foo``, ``[]``, ``nil``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Num:
    """An integer or float constant."""

    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var:
    """A logic variable. ``serial`` 0 marks source-text variables."""

    name: str
    serial: int = 0

    def __str__(self) -> str:
        if self.serial:
            return f"_{self.name}{self.serial}"
        return self.name


@dataclass(frozen=True)
class Struct:
    """A compound term ``functor(arg1, ..., argN)``."""

    functor: str
    args: tuple = field(default_factory=tuple)

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> str:
        """The predicate indicator ``functor/arity``."""
        return f"{self.functor}/{self.arity}"

    def __str__(self) -> str:
        if self.functor == "." and self.arity == 2:
            return _render_list(self)
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.functor}({inner})"


Term = Union[Atom, Num, Var, Struct]

#: the empty list atom
NIL = Atom("[]")


def cons(head: Term, tail: Term) -> Struct:
    """The list cell ``'.'(Head, Tail)``."""
    return Struct(".", (head, tail))


def make_list(items: list, tail: Term = NIL) -> Term:
    """A proper (or partial, with ``tail``) Prolog list."""
    out: Term = tail
    for item in reversed(items):
        out = cons(item, out)
    return out


def list_items(term: Term) -> tuple[list, Term]:
    """Split a list term into (items, tail); tail is NIL when proper."""
    items = []
    while isinstance(term, Struct) and term.functor == "." and term.arity == 2:
        items.append(term.args[0])
        term = term.args[1]
    return items, term


def _render_list(term: Struct) -> str:
    items, tail = list_items(term)
    body = ", ".join(str(i) for i in items)
    if tail == NIL:
        return f"[{body}]"
    return f"[{body}|{tail}]"


def variables_in(term: Term) -> Iterator[Var]:
    """Every variable occurrence in ``term`` (with repeats)."""
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            yield t
        elif isinstance(t, Struct):
            stack.extend(t.args)


def freshen(term: Term, mapping: dict[Var, Var] | None = None) -> Term:
    """A copy of ``term`` with every variable renamed to a fresh one.

    Used when a database clause is selected: each use gets its own
    variable instances. Pass a shared ``mapping`` to freshen several
    terms (a clause head and body) consistently.
    """
    if mapping is None:
        mapping = {}

    def walk(t: Term) -> Term:
        if isinstance(t, Var):
            if t not in mapping:
                mapping[t] = Var(t.name, next(_fresh_counter))
            return mapping[t]
        if isinstance(t, Struct):
            return Struct(t.functor, tuple(walk(a) for a in t.args))
        return t

    return walk(term)


def term_size(term: Term) -> int:
    """Node count — handy for cost models and depth limits."""
    count = 0
    stack = [term]
    while stack:
        t = stack.pop()
        count += 1
        if isinstance(t, Struct):
            stack.extend(t.args)
    return count
