"""Small shared utilities: id allocation, deterministic RNG plumbing."""

from repro.util.ids import IdAllocator
from repro.util.rng import ReplayableRNG

__all__ = ["IdAllocator", "ReplayableRNG"]
