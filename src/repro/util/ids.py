"""Monotonic id allocation.

Process ids, frame ids, message ids and world ids all come from instances
of :class:`IdAllocator`. Ids are never reused within one allocator, which
keeps predicate lists unambiguous even after processes die (paper section
2.4.1 requires system-wide unique process identifiers).
"""

from __future__ import annotations


class IdAllocator:
    """Hands out consecutive integers starting from ``first``.

    >>> alloc = IdAllocator()
    >>> alloc.next(), alloc.next(), alloc.next()
    (1, 2, 3)
    """

    __slots__ = ("_next",)

    def __init__(self, first: int = 1) -> None:
        self._next = first

    def next(self) -> int:
        """Return a fresh id, never returned before by this allocator."""
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """Return the id the next call to :meth:`next` would produce."""
        return self._next

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IdAllocator(next={self._next})"
