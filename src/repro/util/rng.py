"""Deterministic, snapshottable randomness for simulated processes.

World-splitting (paper section 2.4.2) clones a running process. The
simulation kernel implements cloning by deterministic replay, which requires
that every source of nondeterminism a process consumes either flows through
the kernel (messages, alt results) or can be snapshotted. Random numbers are
the one in-process source, so simulated programs must draw randomness from a
:class:`ReplayableRNG` whose exact state can be captured and restored.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class ReplayableRNG:
    """A numpy ``Generator`` wrapper whose state can be saved and restored.

    The wrapper exposes the handful of draws the example workloads need;
    anything else is reachable through :attr:`generator`, but only the
    wrapped methods are guaranteed replay-safe.
    """

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = seed
        self._gen = np.random.default_rng(seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (advanced use)."""
        return self._gen

    # -- draws -----------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        return int(self._gen.integers(low, high))

    def exponential(self, scale: float = 1.0) -> float:
        return float(self._gen.exponential(scale))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._gen.normal(loc, scale))

    def angle(self) -> float:
        """A uniformly random angle in ``[0, 2*pi)`` (rootfinder starts)."""
        return float(self._gen.uniform(0.0, 2.0 * np.pi))

    def shuffle(self, items: list[Any]) -> None:
        self._gen.shuffle(items)

    # -- snapshot / restore ----------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Capture the complete generator state (cheap, copyable dict)."""
        return {"seed": self._seed, "state": self._gen.bit_generator.state}

    @classmethod
    def from_snapshot(cls, snap: dict[str, Any]) -> "ReplayableRNG":
        """Rebuild an RNG positioned exactly at a snapshot."""
        rng = cls(snap["seed"])
        rng._gen.bit_generator.state = snap["state"]
        return rng

    def clone(self) -> "ReplayableRNG":
        """An independent copy positioned at the same state."""
        return ReplayableRNG.from_snapshot(self.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReplayableRNG(seed={self._seed})"
