"""``repro.chaos`` — the cross-layer chaos soak.

Composes every fault site the repo has grown — child-world crashes,
journal tears, serve-plane storms, shard death, partitions, stale
takeovers, snapshot/compaction crashes and whole-cluster cold restarts —
into one seeded randomized schedule, and continuously checks the
paper's correctness story: exactly-once applied effects, byte-identical
committed values, no lost acked request, monotonic seqs, and bounded
replay after compaction.

Run it as a module for the CI entry point::

    python -m repro.chaos --seeds 25
    python -m repro.chaos --quick          # PR-sized smoke

or from code::

    from repro.chaos import SoakConfig, run_soak

    report = run_soak(SoakConfig(seed=7))
    assert report.ok, report.violations
"""

from repro.chaos.soak import (
    DEFAULT_RATES,
    SoakConfig,
    SoakReport,
    Violation,
    build_alternatives,
    build_remote_alternatives,
    expected_value,
    run_remote_incarnation,
    run_soak,
)

__all__ = [
    "DEFAULT_RATES",
    "SoakConfig",
    "SoakReport",
    "Violation",
    "build_alternatives",
    "build_remote_alternatives",
    "expected_value",
    "run_remote_incarnation",
    "run_soak",
]
