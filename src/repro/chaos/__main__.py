"""CLI for the chaos soak: ``python -m repro.chaos --seeds 25``.

Exits non-zero when any seed ends with an invariant violation, printing
one line per seed and a closing summary — the shape CI consumes (the
nightly ``chaos-soak`` job runs the full seed matrix; PRs run
``--quick``). ``--artifacts DIR`` dumps the journals and the structured
report of every failing seed for post-mortem.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.chaos.soak import SoakConfig, run_soak


def _write_bench_results(out_dir, seed_lines, summary, reports, *,
                         seeds, failed):
    """Emit chaos_soak.{txt,json} in the shape summarize.py merges."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, "chaos_soak.txt"), "w",
              encoding="utf-8") as fh:
        fh.write("\n".join(seed_lines) + "\n\n" + summary + "\n")

    def _metric(name, value, unit):
        return {"name": name, "value": value, "unit": unit}

    metrics = [
        _metric("soak_seeds", seeds, "seeds"),
        _metric("soak_failed", failed, "seeds"),
        _metric("soak_acked", sum(r.acked for r in reports), "requests"),
        _metric("soak_committed", sum(r.committed for r in reports),
                "requests"),
        _metric("soak_cold_restarts", sum(r.restarts for r in reports),
                "restarts"),
        _metric("soak_remote_host_kills",
                sum(r.remote_kills for r in reports), "kills"),
        _metric("soak_quarantines", sum(r.quarantines for r in reports),
                "records"),
        _metric("soak_compactions", sum(r.compactions for r in reports),
                "compactions"),
        _metric("soak_violations",
                sum(len(r.violations) for r in reports), "violations"),
    ]
    with open(os.path.join(out_dir, "chaos_soak.json"), "w",
              encoding="utf-8") as fh:
        json.dump({"bench": "chaos_soak", "metrics": metrics}, fh, indent=2)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded cross-layer chaos soak for the speculation cluster.",
    )
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to run (default 25)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first seed (seeds run base..base+N-1)")
    parser.add_argument("--quick", action="store_true",
                        help="PR-sized smoke: 3 seeds, 2 short episodes each")
    parser.add_argument("--episodes", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per episode")
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--storage-dir", default=None,
                        help="file-backed journals under this directory")
    parser.add_argument("--remote-kills", type=int, default=None,
                        help="real-process kill incarnations per seed: "
                             "shard hosts SIGKILLed mid-burst, then the "
                             "cross-journal exactly-once audit (default 1)")
    parser.add_argument("--artifacts", default=None,
                        help="dump journals + reports of failing seeds here")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="write the full run summary as JSON")
    parser.add_argument("--bench-results", default=None, metavar="DIR",
                        help="write chaos_soak.{txt,json} bench results "
                             "here (benchmarks/results) for summarize.py")
    args = parser.parse_args(argv)

    seeds = args.seeds
    episodes = args.episodes
    requests = args.requests
    if args.quick:
        seeds = min(seeds, 3)
        episodes = episodes if episodes is not None else 2
        requests = requests if requests is not None else 6

    reports = []
    seed_lines = []
    failed = 0
    t0 = time.monotonic()
    for seed in range(args.base_seed, args.base_seed + seeds):
        kwargs = dict(seed=seed, artifact_dir=args.artifacts)
        if episodes is not None:
            kwargs["episodes"] = episodes
        if requests is not None:
            kwargs["requests_per_episode"] = requests
        if args.shards is not None:
            kwargs["shards"] = args.shards
        if args.storage_dir is not None:
            kwargs["storage_dir"] = f"{args.storage_dir}/seed-{seed}"
        kwargs["remote_kills"] = (
            args.remote_kills if args.remote_kills is not None else 1
        )
        report = run_soak(SoakConfig(**kwargs))
        reports.append(report)
        mark = "ok " if report.ok else "FAIL"
        line = (
            f"[{mark}] seed {seed:3d}  acked {report.acked:3d}  "
            f"committed {report.committed:3d}  restarts {report.restarts:2d}  "
            f"shard-crashes {report.shard_crashes:2d}  "
            f"host-kills {report.remote_kills}  "
            f"compactions {report.compactions}  "
            f"quarantines {report.quarantines}  "
            f"violations {len(report.violations)}"
        )
        seed_lines.append(line)
        print(line)
        if not report.ok:
            failed += 1
            for violation in report.violations:
                print(f"       - {violation.kind}: {violation.detail}")

    elapsed = time.monotonic() - t0
    total_acked = sum(r.acked for r in reports)
    total_committed = sum(r.committed for r in reports)
    summary = (
        f"{seeds} seeds in {elapsed:.1f}s: {seeds - failed} ok, "
        f"{failed} failed; {total_acked} acked, {total_committed} committed, "
        f"{sum(r.restarts for r in reports)} cold restarts, "
        f"{sum(r.quarantines for r in reports)} quarantines"
    )
    print(f"\n{summary}")
    if args.bench_results:
        _write_bench_results(
            args.bench_results, seed_lines, summary, reports,
            seeds=seeds, failed=failed,
        )
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "seeds": seeds,
                    "failed": failed,
                    "elapsed_s": elapsed,
                    "reports": [r.as_dict() for r in reports],
                },
                fh, indent=2, default=str,
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
