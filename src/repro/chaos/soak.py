"""The cross-layer chaos soak: every fault site at once, plus the kill switch.

Each earlier layer earned its own fuzz harness — journal crashes
(``tests/journal/test_journal_fuzz.py``), serve faults, shard failover
(``tests/cluster/test_failover_fuzz.py``). The soak composes *all* of
them in one seeded schedule and adds the two faults only this layer can
inject: whole-cluster cold restarts (:class:`~repro.faults.plan.FaultKind.COLD_RESTART`
at the ``chaos`` site) and snapshot/compaction crashes
(``TORN_SNAPSHOT`` / ``COMPACTION_CRASH`` at the ``snapshot`` site).

One :func:`run_soak` call is one seeded lifetime of a small speculation
cluster: episodes of multi-tenant request bursts, shards dying mid-burst,
heartbeats lost, takeovers (real and stale), journals tearing, the whole
process dying and being rebuilt from the shard journals alone, and the
journals periodically compacted to a snapshot — with the paper's
correctness story checked continuously:

- **exactly-once**: every committed request has exactly one applied
  ``block`` transaction across all journals (and never more than one,
  committed or not);
- **byte-identical**: every committed value equals the request's
  deterministic expected value, no matter how many incarnations,
  takeovers, or replays it went through;
- **no lost acks**: every request whose ``submit`` returned (the durable
  ack) reaches a terminal state — a result, a journal-replayed value, or
  a journalled terminal status — across any number of cold restarts;
- **monotonic seqs**: fresh admissions never reuse or regress the
  cluster-wide request seq, even straight after a restart;
- **bounded replay**: a successful compaction leaves nothing to replay
  (``records_since_snapshot() == 0``), and a reopen after a compaction
  crash either loads the durable snapshot or quarantines the torn one —
  never silently loses the ledger.

Every alternative of request *n* returns the same deterministic value
(:func:`expected_value`), so a replayed, stolen, or re-admitted request
is byte-identical to its first incarnation by construction — any
divergence the soak observes is a real correctness bug, not harness
noise.
"""

from __future__ import annotations

import functools
import json
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from repro.cluster import (
    ClusterRouter,
    ClusterShard,
    RemoteShardClient,
    host_kill_decision,
)
from repro.errors import (
    AdmissionRejected,
    ClusterError,
    JournalCrash,
    NoSurvivingShard,
)
from repro.faults import CHAOS_SITE, FaultKind, FaultPlan
from repro.journal import (
    CommitJournal,
    FileJournalStorage,
    MemoryJournalStorage,
    find_block_win,
)

__all__ = [
    "DEFAULT_RATES",
    "SoakConfig",
    "SoakReport",
    "Violation",
    "build_alternatives",
    "expected_value",
    "run_soak",
]

#: The composed fault cocktail: every layer's sites armed at once, at
#: rates tuned so a default soak sees several of each kind without
#: drowning in them. Override per-run via :attr:`SoakConfig.rates`.
DEFAULT_RATES: dict[FaultKind, float] = {
    # child worlds (the core speculation layer)
    FaultKind.CRASH: 0.08,
    FaultKind.SLOW_START: 0.10,
    # journal txns
    FaultKind.TORN_RECORD: 0.02,
    FaultKind.CRASH_BEFORE_SEAL: 0.02,
    FaultKind.CRASH_AFTER_SEAL: 0.02,
    FaultKind.DOUBLE_RECOVERY: 0.25,
    # serving plane
    FaultKind.REQUEST_BURST: 0.05,
    FaultKind.SLOW_TENANT: 0.03,
    # cluster membership
    FaultKind.SHARD_CRASH: 0.30,
    FaultKind.HEARTBEAT_MISS: 0.10,
    FaultKind.ROUTER_PARTITION: 0.08,
    FaultKind.STALE_TAKEOVER: 0.10,
    # snapshot / compaction
    FaultKind.TORN_SNAPSHOT: 0.20,
    FaultKind.COMPACTION_CRASH: 0.20,
    # the kill switch
    FaultKind.COLD_RESTART: 0.06,
}


def expected_value(n: int) -> int:
    """The one true answer for request ``n`` — every world agrees."""
    return n * 7 + 3


def build_alternatives(spec: dict) -> list:
    """Rebuild request ``spec``'s alternatives (the restore callback).

    All alternatives return :func:`expected_value` of the same ``n``, so
    the committed value is byte-identical whichever world wins and
    however many times the request is replayed or re-landed.
    """
    n = spec["n"]

    def fast(ws) -> int:
        return expected_value(n)

    def steady(ws) -> int:
        time.sleep(0.001)
        return expected_value(n)

    return [fast, steady]


def remote_value(ws, n: int = 0) -> int:
    """Picklable alternative for out-of-process incarnations.

    Remote shard hosts receive their alternatives over the RPC wire, so
    unlike :func:`build_alternatives`'s closures these must be a
    module-level function bound with :func:`functools.partial`.
    """
    time.sleep(0.002)
    return expected_value(n)


def build_remote_alternatives(spec: dict) -> list:
    return [functools.partial(remote_value, n=spec["n"])]


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed by the soak."""

    kind: str
    episode: int
    detail: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "episode": self.episode, "detail": self.detail}


@dataclass
class SoakConfig:
    """One soak run's shape. ``seed`` drives *all* randomness."""

    seed: int = 0
    shards: int = 3
    episodes: int = 4
    requests_per_episode: int = 10
    tenants: int = 3
    slots: int = 2
    workers: int = 3
    queue_depth: int = 64
    #: compact (at a restart boundary) every N episodes; 0 disables
    compact_every: int = 2
    #: drive a manual heartbeat round every N submissions
    heartbeat_every: int = 3
    settle_timeout_s: float = 30.0
    #: override :data:`DEFAULT_RATES` wholesale when set
    rates: dict | None = None
    #: file-backed journals under this directory (default: in-memory)
    storage_dir: str | None = None
    #: dump journals + report here when the run ends with violations
    artifact_dir: str | None = None
    #: after the in-process lifetime, run this many *real-process* kill
    #: incarnations: shard-host processes SIGKILLed mid-burst, takeover,
    #: cross-journal exactly-once audit (0 disables)
    remote_kills: int = 0


@dataclass
class SoakReport:
    """What one seeded soak lifetime did, and whether it stayed correct."""

    seed: int
    episodes: int = 0
    submitted: int = 0
    acked: int = 0
    rejected: int = 0
    committed: int = 0
    replayed: int = 0
    restarts: int = 0
    shard_crashes: int = 0
    remote_kills: int = 0
    compactions: int = 0
    compaction_crashes: int = 0
    quarantines: int = 0
    statuses: dict = field(default_factory=dict)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        out = dict(self.__dict__)
        out["violations"] = [v.as_dict() for v in self.violations]
        out["ok"] = self.ok
        return out


class _RestartStorm(Exception):
    """The run blew its restart budget; abort and report the violation."""


class _Soak:
    """One run's mutable state (split out so :func:`run_soak` stays flat)."""

    def __init__(self, cfg: SoakConfig) -> None:
        self.cfg = cfg
        self.rng = random.Random(cfg.seed)
        self.rates = dict(DEFAULT_RATES if cfg.rates is None else cfg.rates)
        self.plan = FaultPlan(seed=cfg.seed, rates=self.rates)
        self._incarnation = 0
        self.report = SoakReport(seed=cfg.seed)
        self.storages = {
            sid: self._make_storage(sid) for sid in range(cfg.shards)
        }
        #: durable truths the harness tracks across incarnations
        self.expected: dict[int, int] = {}      # acked seq -> expected value
        self.outstanding: dict[int, Any] = {}   # acked seq -> live ticket
        self.terminal: dict[int, str] = {}      # acked seq -> final status
        self.episode = 0
        self._n = 0          # request counter (drives expected values)
        self._last_seq = 0   # monotonic-seq check for fresh admissions
        self._restart_budget = 20 + 4 * cfg.episodes
        self.journals = self._open_journals()
        shards = [self._make_shard(sid) for sid in range(cfg.shards)]
        self.router = ClusterRouter(shards, fault_plan=self.plan)
        self.router.start(detect=False)

    # -- plumbing ----------------------------------------------------------
    def _make_storage(self, sid: int):
        if self.cfg.storage_dir is None:
            return MemoryJournalStorage()
        os.makedirs(self.cfg.storage_dir, exist_ok=True)
        return FileJournalStorage(
            os.path.join(self.cfg.storage_dir, f"shard-{sid}.wal")
        )

    def _journal_plan(self) -> FaultPlan:
        """A fresh (still seeded) fault plan for the next incarnation.

        ``decide()`` is pure in ``(seed, site, key)`` and journal txn
        seqs *recur* after a torn tail is truncated on reopen — with one
        plan for the whole run, the retried write would re-tear
        deterministically on every incarnation and the run could never
        converge. A new process gets new nondeterminism.
        """
        self._incarnation += 1
        return FaultPlan(
            seed=(self.cfg.seed * 1_000_003 + self._incarnation) & 0x7FFFFFFF,
            rates=self.rates,
        )

    def _open_journals(self) -> dict[int, CommitJournal]:
        plan = self._journal_plan()
        journals = {
            sid: CommitJournal(storage=storage, fault_plan=plan)
            for sid, storage in self.storages.items()
        }
        for journal in journals.values():
            self.report.quarantines += len(journal.quarantines)
        return journals

    def _make_shard(self, sid: int) -> ClusterShard:
        return ClusterShard(
            sid,
            slots=self.cfg.slots,
            workers=self.cfg.workers,
            queue_depth=self.cfg.queue_depth,
            journal=self.journals[sid],
            fault_plan=self.plan,
            journal_admission=True,
        )

    def violate(self, kind: str, detail: str) -> None:
        self.report.violations.append(
            Violation(kind=kind, episode=self.episode, detail=detail)
        )

    # -- terminal bookkeeping ----------------------------------------------
    def _record_terminal(self, seq: int, status: str, value: Any) -> None:
        self.outstanding.pop(seq, None)
        prior = self.terminal.get(seq)
        if prior == "committed" and status != "committed":
            return  # a commit is final; later bookkeeping can't demote it
        self.terminal[seq] = status
        self.report.statuses[status] = self.report.statuses.get(status, 0) + 1
        if prior is not None:
            self.report.statuses[prior] = self.report.statuses.get(prior, 1) - 1
        if status == "committed":
            self.report.committed += 1
            if prior == "committed":
                self.report.committed -= 1
            if value != self.expected[seq]:
                self.violate(
                    "value-mismatch",
                    f"request {seq}: committed {value!r}, "
                    f"expected {self.expected[seq]!r}",
                )

    def _sweep_done(self) -> None:
        """Collect every already-resolved ticket (cheap, non-blocking)."""
        for seq, ticket in list(self.outstanding.items()):
            if ticket is not None and ticket.done:
                res = ticket.result(timeout=0)
                if res.replayed:
                    self.report.replayed += 1
                self._record_terminal(seq, res.status, res.value)

    # -- the kill switch ----------------------------------------------------
    def cold_restart(self, reason: str, compact: bool = False) -> None:
        """Whole-process death and rebirth from the journals alone."""
        self._sweep_done()
        self.router.crash()
        self.report.restarts += 1
        if self.report.restarts > self._restart_budget:
            self.violate(
                "restart-storm",
                f"{self.report.restarts} cold restarts (last: {reason}); "
                "the run is not converging",
            )
            raise _RestartStorm(reason)
        self.journals = self._open_journals()
        if compact:
            self._compact_boundary()
        self.router, restart = ClusterRouter.restore(
            self.journals,
            build_alternatives=build_alternatives,
            shard_kwargs=dict(
                slots=self.cfg.slots,
                workers=self.cfg.workers,
                queue_depth=self.cfg.queue_depth,
            ),
            detect=False,
            fault_plan=self.plan,
        )
        for recovery in restart.recoveries.values():
            self.report.quarantines += len(recovery.quarantined)

        # merge the restart report into the harness ledger
        uncovered = {
            seq for seq in self.outstanding if seq not in self.terminal
        }
        for seq, res in restart.results.items():
            if seq in self.expected:
                uncovered.discard(seq)
                self.report.replayed += 1
                self._record_terminal(seq, res.status, res.value)
        for seq, ticket in restart.tickets.items():
            if seq in self.expected:
                uncovered.discard(seq)
                self.outstanding[seq] = ticket
        for seq in restart.dropped:
            if seq in self.expected:
                uncovered.discard(seq)
                self.violate(
                    "dropped-acked-request",
                    f"request {seq} dropped as unrecoverable at restart "
                    f"({reason}): every soak request carries a spec",
                )
                self._record_terminal(seq, "unrecoverable", None)

        # anything still uncovered must be terminal *in the journals*
        for seq in sorted(uncovered):
            status = self._journal_terminal(seq)
            if status is None:
                if self._journal_sealed(seq):
                    # restore left the admit sealed (placement refused or
                    # crashed again); the durable ack still stands — the
                    # next restart retries the re-admission
                    self.outstanding[seq] = None
                    continue
                self.violate(
                    "lost-acked-request",
                    f"request {seq} acked before restart ({reason}) but "
                    "neither replayed, re-admitted, nor journalled terminal",
                )
                self._record_terminal(seq, "lost", None)
            elif status == "committed":
                win = self._journal_win(seq)
                self._record_terminal(
                    seq, "committed", None if win is None else win["value"]
                )
            else:
                self._record_terminal(seq, status, None)

    def _journal_win(self, seq: int) -> dict | None:
        for journal in self.journals.values():
            win = find_block_win(journal, seq)
            if win is not None:
                return win
        return None

    def _journal_sealed(self, seq: int) -> bool:
        """Whether a sealed (re-admittable) admit for ``seq`` survives."""
        for journal in self.journals.values():
            for intent in journal.sealed_unapplied_intents("admit"):
                if intent["data"].get("request") == seq:
                    return True
        return False

    def _journal_terminal(self, seq: int) -> str | None:
        """The journalled final status for request ``seq``, if any.

        Covers the restart race where a request settled its admit txn
        (applied with a terminal status) but its ticket resolution died
        with the process: the journal, not the ticket, is the truth.
        """
        if self._journal_win(seq) is not None:
            return "committed"
        best = None
        for journal in self.journals.values():
            for intent, data in journal.applied_intents("admit"):
                if intent["data"].get("request") != seq:
                    continue
                status = data.get("status", "")
                if status in ("stolen", "superseded", "recovered",
                              "recovered-remote"):
                    continue  # another incarnation carries the answer
                best = status or best
        return best

    def _compact_boundary(self) -> None:
        """Compact every journal at a restart boundary (quiesced WALs)."""
        for sid, journal in list(self.journals.items()):
            try:
                journal.compact()
            except JournalCrash:
                # TORN_SNAPSHOT poisons the journal; COMPACTION_CRASH
                # leaves a durable snapshot. Either way the process is
                # dead: reopen from the bytes.
                self.report.compaction_crashes += 1
                reopened = CommitJournal(
                    storage=self.storages[sid],
                    fault_plan=self._journal_plan(),
                )
                self.report.quarantines += len(reopened.quarantines)
                if not (reopened.restored_from_snapshot or reopened.quarantines):
                    self.violate(
                        "compaction-recovery",
                        f"shard {sid}: reopen after compaction crash "
                        "neither loaded a snapshot nor quarantined one",
                    )
                self.journals[sid] = reopened
                continue
            self.report.compactions += 1
            if journal.records_since_snapshot() != 0:
                self.violate(
                    "unbounded-replay",
                    f"shard {sid}: {journal.records_since_snapshot()} "
                    "records left to replay straight after compact()",
                )

    # -- fault-driven shard churn -------------------------------------------
    def _kill_scheduled_shards(self, step: int) -> None:
        """SHARD_CRASH verdicts, keeping at least one survivor."""
        n = max(1, self.cfg.requests_per_episode)
        for sid in range(self.cfg.shards):
            frac = self.router.crash_decision(sid, epoch=self.episode)
            if frac is None or step / n < frac:
                continue
            try:
                shard = self.router.shard(sid)
            except ClusterError:
                continue
            if not shard.up or self.router.shards_up <= 1:
                continue
            self.router.kill_shard(sid)
            self.report.shard_crashes += 1

    def _kill_poisoned_shards(self) -> None:
        """A shard whose journal took a torn write is a dead process."""
        for sid in range(self.cfg.shards):
            try:
                shard = self.router.shard(sid)
            except ClusterError:
                continue
            if shard.alive and shard.journal.poisoned:
                if self.router.shards_up <= 1:
                    self.cold_restart("last shard's journal poisoned")
                    return
                self.router.kill_shard(sid)
                self.report.shard_crashes += 1

    # -- the episode loop ----------------------------------------------------
    def run_episode(self) -> None:
        cfg = self.cfg
        for step in range(cfg.requests_per_episode):
            if self.plan.decide(
                CHAOS_SITE, self.episode, step
            ).kind is FaultKind.COLD_RESTART:
                self.plan.note_injection(
                    CHAOS_SITE, FaultKind.COLD_RESTART,
                    detail=f"episode {self.episode} step {step}",
                    track="cluster", episode=self.episode, step=step,
                )
                self.cold_restart(f"scheduled at step {step}")
            self._kill_scheduled_shards(step)
            self._kill_poisoned_shards()
            self._submit_one()
            if cfg.heartbeat_every and step % cfg.heartbeat_every == 0:
                self.router.heartbeat_round()
                self.router.steal_round()
        self._settle()
        if cfg.compact_every and (self.episode + 1) % cfg.compact_every == 0:
            self.cold_restart("compaction boundary", compact=True)
            self._settle()

    def _submit_one(self) -> None:
        cfg = self.cfg
        n = self._n
        self._n += 1
        spec = {"n": n}
        tenant = f"tenant-{self.rng.randrange(cfg.tenants)}"
        self.report.submitted += 1
        try:
            ticket = self.router.submit(
                tenant, build_alternatives(spec), spec=spec,
            )
        except JournalCrash:
            # the router-level placement walk absorbs per-shard journal
            # crashes; one escaping here means the whole process died
            self.cold_restart("journal crash during admission")
            return
        except AdmissionRejected:
            self.report.rejected += 1
            return
        except NoSurvivingShard:
            self.cold_restart("no surviving shard")
            return
        self.report.acked += 1
        if ticket.seq <= self._last_seq:
            self.violate(
                "seq-regression",
                f"fresh admission got seq {ticket.seq} after {self._last_seq}",
            )
        self._last_seq = max(self._last_seq, ticket.seq)
        self.expected[ticket.seq] = expected_value(n)
        self.outstanding[ticket.seq] = ticket

    def _settle(self) -> None:
        """Wait out every outstanding ticket, nudging the cluster along."""
        deadline = time.monotonic() + self.cfg.settle_timeout_s
        stall_rounds = 0
        while self.outstanding and time.monotonic() < deadline:
            self._sweep_done()
            if not self.outstanding:
                break
            pending = [t for t in self.outstanding.values() if t is not None]
            if not pending:
                # every survivor is awaiting re-admission (restore left
                # its admit sealed): only another restart retries it
                self.cold_restart(
                    f"{len(self.outstanding)} requests awaiting re-admission"
                )
                continue
            try:
                pending[0].result(timeout=0.25)
                stall_rounds = 0
            except ClusterError:
                # not done yet: drive takeovers/steals and re-sweep
                self.router.heartbeat_round()
                self.router.steal_round()
                self._kill_poisoned_shards()
                stall_rounds += 1
                if stall_rounds >= 20:
                    # stuck requests: a cold restart must recover every
                    # one from the journals (or the coverage check fires)
                    stall_rounds = 0
                    self.cold_restart(
                        f"{len(self.outstanding)} requests stuck at settle"
                    )
        self._sweep_done()

    # -- final audit ---------------------------------------------------------
    def finish(self) -> SoakReport:
        self._settle()
        # one last death-and-rebirth so end-of-run state is provably durable
        self.cold_restart("final durability check")
        self._settle()
        audit = self.router.audit_applied()
        self.router.stop()
        for seq, count in sorted(audit.items()):
            if count > 1:
                self.violate(
                    "double-apply",
                    f"request {seq}: {count} applied block txns across "
                    "the shard journals",
                )
        for seq, status in sorted(self.terminal.items()):
            if status == "committed" and audit.get(seq, 0) != 1:
                self.violate(
                    "exactly-once",
                    f"request {seq} committed but has "
                    f"{audit.get(seq, 0)} applied block txns",
                )
        for seq in sorted(self.expected):
            if seq not in self.terminal:
                self.violate(
                    "unsettled-request",
                    f"request {seq} acked but never reached a terminal "
                    "state",
                )
        self.report.episodes = self.episode
        if self.report.violations and self.cfg.artifact_dir:
            _dump_artifacts(self)
        return self.report


def _dump_artifacts(soak: _Soak) -> None:
    """Write the failing run's journals + report for post-mortem."""
    out = os.path.join(soak.cfg.artifact_dir, f"seed-{soak.cfg.seed}")
    os.makedirs(out, exist_ok=True)
    with open(os.path.join(out, "report.json"), "w", encoding="utf-8") as fh:
        json.dump(soak.report.as_dict(), fh, indent=2, default=str)
    for sid, storage in soak.storages.items():
        with open(os.path.join(out, f"shard-{sid}.wal"), "wb") as fh:
            fh.write(storage.load())
        journal = soak.journals.get(sid)
        if journal is not None and journal.quarantines:
            path = os.path.join(out, f"shard-{sid}.quarantine.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(
                    [q.as_dict() for q in journal.quarantines], fh, indent=2,
                )


def run_remote_incarnation(
    seed: int,
    *,
    shards: int = 3,
    requests: int = 12,
    workdir: str | None = None,
) -> tuple[list[Violation], int]:
    """One real-process kill incarnation: SIGKILL shard hosts mid-burst.

    The in-process soak kills shards by dropping their objects; here the
    shard is an OS process and the kill is a literal ``SIGKILL`` — no
    drain, no goodbye, only its journal file survives. The fault plan's
    ``transport`` site decides which hosts die and where in the burst
    (one survivor always kept); after takeover every request must still
    commit its deterministic value, and the cross-journal audit must
    show exactly one applied ``block`` txn per commit.

    Returns ``(violations, hosts_killed)`` so :func:`run_soak` can merge
    the outcome into its report.
    """
    violations: list[Violation] = []
    plan = FaultPlan(
        seed=seed,
        rates={FaultKind.HOST_SIGKILL: 0.6},
        host_kill_fraction=0.5,
    )
    scratch = workdir or tempfile.mkdtemp(prefix=f"mw-soak-remote-{seed}-")
    remotes = [
        RemoteShardClient(
            sid,
            workdir=os.path.join(scratch, f"shard{sid}"),
            slots=2, workers=2, call_timeout_s=0.4,
            breaker_threshold=2, breaker_cooldown_s=0.2,
        )
        for sid in range(shards)
    ]
    router = ClusterRouter(remotes).start(detect=False)
    kills = 0
    try:
        doomed = [
            (sid, host_kill_decision(plan, sid, epoch=0))
            for sid in range(shards)
            if host_kill_decision(plan, sid, epoch=0) is not None
        ][: shards - 1]  # keep one survivor
        schedule = {sid: int(frac * requests) for sid, frac in doomed}
        tickets = []
        for i in range(requests):
            for sid, at in list(schedule.items()):
                if i == at:
                    remotes[sid].sigkill()
                    router.takeover(sid)
                    kills += 1
                    del schedule[sid]
            tickets.append(
                router.submit(
                    f"tenant-{i % 3}", build_remote_alternatives({"n": i})
                )
            )
        for sid in schedule:
            remotes[sid].sigkill()
            router.takeover(sid)
            kills += 1
        results = [t.result(timeout=30.0) for t in tickets]
        for i, res in enumerate(results):
            if not res.committed:
                violations.append(Violation(
                    kind="remote-lost-ack",
                    episode=-1,
                    detail=f"seed {seed}: request {i} ended "
                           f"{res.status}/{res.reason} after host SIGKILL",
                ))
            elif res.value != expected_value(i):
                violations.append(Violation(
                    kind="remote-value-drift",
                    episode=-1,
                    detail=f"seed {seed}: request {i} committed "
                           f"{res.value!r}, expected {expected_value(i)}",
                ))
        audit = router.audit_applied()
        for res in results:
            if res.committed and audit.get(res.seq, 0) != 1:
                violations.append(Violation(
                    kind="remote-exactly-once",
                    episode=-1,
                    detail=f"seed {seed}: request {res.seq} has "
                           f"{audit.get(res.seq, 0)} applied block txns "
                           "across the host journals",
                ))
    finally:
        router.stop()
        if not violations:
            # keep the host journals for post-mortem only on failure
            shutil.rmtree(scratch, ignore_errors=True)
    return violations, kills


def run_soak(config: SoakConfig | None = None, **kwargs: Any) -> SoakReport:
    """Run one seeded chaos-soak lifetime; returns its :class:`SoakReport`.

    Accepts either a prebuilt :class:`SoakConfig` or its fields as
    keyword arguments (``run_soak(seed=7, episodes=2)``).
    """
    cfg = config if config is not None else SoakConfig(**kwargs)
    soak = _Soak(cfg)
    try:
        for episode in range(cfg.episodes):
            soak.episode = episode
            soak.run_episode()
        report = soak.finish()
        for k in range(cfg.remote_kills):
            # real-process coda: same seed family, hosts die by SIGKILL
            workdir = (
                os.path.join(cfg.artifact_dir, f"seed-{cfg.seed}",
                             f"remote-{k}")
                if cfg.artifact_dir else None
            )
            violations, kills = run_remote_incarnation(
                cfg.seed * 101 + k, workdir=workdir,
            )
            report.violations.extend(violations)
            report.remote_kills += kills
        return report
    except _RestartStorm:
        soak.report.episodes = soak.episode
        if cfg.artifact_dir:
            _dump_artifacts(soak)
        return soak.report
    finally:
        try:
            soak.router.stop()
        except Exception:  # noqa: BLE001 - already stopped/crashed is fine
            pass
