"""Tests for the value-granularity worlds (Wilson §5 comparator)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorldsError
from repro.memory.valueworlds import VersionedStore


@pytest.fixture
def store():
    return VersionedStore({"a": 1, "b": 2})


class TestBasics:
    def test_root_world_reads_base(self, store):
        w = store.root_world()
        assert w.get("a") == 1
        assert w.get("missing", "dflt") == "dflt"

    def test_writes_invisible_until_commit(self, store):
        w = store.root_world()
        w.put("a", 99)
        assert store.base_snapshot()["a"] == 1
        w.commit()
        assert store.base_snapshot()["a"] == 99

    def test_discard_leaves_no_trace(self, store):
        w = store.root_world()
        w.put("a", 99)
        w.put("new", 5)
        w.discard()
        assert store.base_snapshot() == {"a": 1, "b": 2}

    def test_delete_layers(self, store):
        w = store.root_world()
        w.delete("a")
        assert "a" not in w
        assert w.keys() == ["b"]
        w.commit()
        assert store.base_snapshot() == {"b": 2}

    def test_closed_world_rejected(self, store):
        w = store.root_world()
        w.commit()
        with pytest.raises(WorldsError):
            w.get("a")


class TestNesting:
    def test_child_sees_parent_delta(self, store):
        parent = store.root_world()
        parent.put("a", 10)
        child = parent.fork()
        assert child.get("a") == 10
        assert child.get("b") == 2

    def test_sibling_isolation(self, store):
        parent = store.root_world()
        left, right = parent.fork(), parent.fork()
        left.put("a", "L")
        right.put("a", "R")
        assert left.get("a") == "L"
        assert right.get("a") == "R"
        assert parent.get("a") == 1

    def test_child_commit_folds_into_parent_only(self, store):
        parent = store.root_world()
        child = parent.fork()
        child.put("x", 1)
        child.delete("b")
        child.commit()
        assert parent.get("x") == 1
        assert "b" not in parent
        assert store.base_snapshot() == {"a": 1, "b": 2}  # base untouched

    def test_two_level_commit_chain(self, store):
        root = store.root_world()
        inner = root.fork()
        inner.put("v", "deep")
        inner.commit()
        root.commit()
        assert store.base_snapshot()["v"] == "deep"

    def test_delete_then_rewrite_across_levels(self, store):
        root = store.root_world()
        root.delete("a")
        child = root.fork()
        assert "a" not in child
        child.put("a", 7)
        assert child.get("a") == 7
        child.commit()
        assert root.get("a") == 7


class TestInstrumentation:
    def test_every_reference_pays_a_check(self, store):
        w = store.root_world()
        before = store.stats.ref_checks
        w.get("a")
        w.get("b")
        assert store.stats.ref_checks > before

    def test_deep_chains_cost_more_per_read(self, store):
        w = store.root_world()
        for _ in range(5):
            w = w.fork()
        before = store.stats.ref_checks
        w.get("a")  # must walk 6 worlds + base
        assert store.stats.ref_checks - before >= 6

    def test_copies_counted_once_per_object(self, store):
        w = store.root_world()
        w.put("a", [1, 2, 3])
        w.put("a", [4, 5, 6])  # rewrite: no new copy
        assert store.stats.object_copies == 1
        assert store.stats.bytes_copied > 0


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.sampled_from(["a", "b", "c"]),
            st.integers(0, 9),
        ),
        max_size=12,
    ),
    commit=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_world_matches_plain_dict_model(ops, commit):
    """A single world behaves exactly like a dict copy; commit publishes
    it, discard reverts everything."""
    base = {"a": 1, "b": 2}
    store = VersionedStore(base)
    world = store.root_world()
    model = dict(base)
    for kind, key, value in ops:
        if kind == "put":
            world.put(key, value)
            model[key] = value
        else:
            world.delete(key)
            model.pop(key, None)
    assert world.as_dict() == model
    if commit:
        world.commit()
        assert store.base_snapshot() == model
    else:
        world.discard()
        assert store.base_snapshot() == base
