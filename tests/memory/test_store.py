"""Unit tests for the single-level store (files as named page sets)."""

import pytest

from repro.errors import FileSystemError
from repro.memory.address_space import AddressSpace
from repro.memory.frame import FramePool
from repro.memory.store import SingleLevelStore


@pytest.fixture
def store():
    return SingleLevelStore(page_size=64)


def test_write_read_roundtrip(store):
    store.write_file("f", b"some file data")
    assert store.read_file("f") == b"some file data"


def test_multi_page_file(store):
    data = bytes(range(256)) * 2  # 512 bytes, 8 pages of 64
    store.write_file("big", data)
    assert store.stat("big").pages == 8
    assert store.read_file("big") == data


def test_empty_file(store):
    store.write_file("empty", b"")
    assert store.read_file("empty") == b""
    assert store.stat("empty").pages == 0


def test_missing_file_raises(store):
    with pytest.raises(FileSystemError):
        store.read_file("nope")


def test_delete_releases_pages(store):
    store.write_file("f", b"x" * 200)
    live = store.pool.live_frames
    store.delete("f")
    assert store.pool.live_frames == live - 4
    assert not store.exists("f")


def test_overwrite_replaces_content(store):
    store.write_file("f", b"old" * 50)
    store.write_file("f", b"new")
    assert store.read_file("f") == b"new"


def test_append(store):
    store.write_file("log", b"line1\n")
    store.append("log", b"line2\n")
    assert store.read_file("log") == b"line1\nline2\n"


def test_append_to_missing_creates(store):
    store.append("fresh", b"data")
    assert store.read_file("fresh") == b"data"


def test_names_sorted(store):
    store.write_file("b", b"")
    store.write_file("a", b"")
    assert store.names() == ["a", "b"]


def test_map_into_reads_file_pages(store):
    data = b"mapped-file-content-" * 10
    store.write_file("f", data)
    space = AddressSpace(store.pool)
    base = store.map_into(space, "f")
    assert space.read(base, len(data)) == data


def test_map_into_is_private_cow(store):
    data = b"A" * 128
    store.write_file("f", data)
    space = AddressSpace(store.pool)
    base = store.map_into(space, "f")
    space.write(base, b"Z" * 10)
    assert store.read_file("f") == data  # file untouched
    assert space.read(base, 10) == b"Z" * 10


def test_map_into_foreign_pool_rejected(store):
    store.write_file("f", b"data")
    foreign = AddressSpace(FramePool(page_size=64))
    with pytest.raises(FileSystemError):
        store.map_into(foreign, "f")


def test_sync_back_commits_mapping(store):
    store.write_file("f", b"before--" * 8)
    space = AddressSpace(store.pool)
    base = store.map_into(space, "f")
    space.write(base, b"AFTER")
    store.sync_back(space, "f", base)
    assert store.read_file("f").startswith(b"AFTER")
    assert len(store.read_file("f")) == 64


def test_total_pages(store):
    store.write_file("a", b"x" * 64)
    store.write_file("b", b"x" * 65)
    assert store.total_pages() == 3
