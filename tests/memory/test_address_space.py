"""Unit tests for the byte-addressable AddressSpace layer."""

import pytest

from repro.errors import AddressError
from repro.memory.address_space import AddressSpace
from repro.memory.frame import FramePool


@pytest.fixture
def space():
    return AddressSpace(FramePool(page_size=32))


def test_write_read_roundtrip_within_page(space):
    space.write(4, b"hello")
    assert space.read(4, 5) == b"hello"


def test_write_read_spanning_pages(space):
    data = bytes(range(100))
    space.write(20, data)  # crosses several 32-byte pages
    assert space.read(20, 100) == data


def test_read_untouched_memory_is_zero(space):
    assert space.read(1000, 16) == bytes(16)


def test_partial_overlap_of_mapped_and_unmapped(space):
    space.write(0, b"abcd")
    assert space.read(0, 40) == b"abcd" + bytes(36)


def test_negative_access_rejected(space):
    with pytest.raises(AddressError):
        space.read(-1, 4)
    with pytest.raises(AddressError):
        space.read(0, -4)


def test_alloc_is_monotonic_and_aligned(space):
    a = space.alloc(10)
    b = space.alloc(10)
    assert b >= a + 10
    assert b % 8 == 0


def test_alloc_pages_page_aligned(space):
    space.alloc(5)
    base = space.alloc_pages(2)
    assert base % 32 == 0
    assert space.brk == base + 64


def test_u64_roundtrip(space):
    addr = space.alloc(8)
    space.write_u64(addr, 0xDEADBEEF01)
    assert space.read_u64(addr) == 0xDEADBEEF01


def test_fork_preserves_content_and_brk(space):
    space.write(0, b"state")
    space.alloc(100)
    child = space.fork()
    assert child.read(0, 5) == b"state"
    assert child.brk == space.brk


def test_fork_isolation_both_directions(space):
    space.write(0, b"base")
    child = space.fork()
    child.write(0, b"kidz")
    space.write(64, b"prnt")
    assert space.read(0, 4) == b"base"
    assert child.read(0, 4) == b"kidz"
    assert child.read(64, 4) == bytes(4)


def test_replace_with_adopts_child_pages_and_brk(space):
    space.write(0, b"old")
    child = space.fork()
    child.write(0, b"new")
    child.alloc(500)
    child_brk = child.brk
    space.replace_with(child)
    assert space.read(0, 3) == b"new"
    assert space.brk == child_brk


def test_spanning_write_cow_faults_once_per_page(space):
    data = bytes(64)
    space.write(0, data)  # two pages
    child = space.fork()
    child.write(0, bytes([1]) * 64)
    assert space.pool.stats.cow_faults == 2
