"""Tests for the MemoryStats counter bundle and WriteFractionReport."""

import pytest

from repro.memory.stats import MemoryStats, WriteFractionReport

FIELDS = (
    "frames_allocated", "frames_freed", "cow_faults", "pages_copied",
    "bytes_copied", "page_reads", "page_writes", "forks", "pte_copies",
)


def test_fresh_stats_are_zero():
    stats = MemoryStats()
    assert all(getattr(stats, f) == 0 for f in FIELDS)


def test_reset_zeroes_every_counter():
    stats = MemoryStats()
    for i, field in enumerate(FIELDS, start=1):
        setattr(stats, field, i)
    stats.reset()
    assert all(getattr(stats, f) == 0 for f in FIELDS)


def test_snapshot_is_independent_copy():
    stats = MemoryStats(cow_faults=3, forks=1)
    snap = stats.snapshot()
    assert snap is not stats
    assert snap == stats
    stats.cow_faults += 5
    assert snap.cow_faults == 3  # unchanged by later mutation


def test_delta_measures_interval():
    stats = MemoryStats(cow_faults=2, pte_copies=10, bytes_copied=100)
    before = stats.snapshot()
    stats.cow_faults += 4
    stats.pte_copies += 20
    stats.page_writes += 7
    delta = stats.delta(before)
    assert delta.cow_faults == 4
    assert delta.pte_copies == 20
    assert delta.page_writes == 7
    assert delta.bytes_copied == 0  # untouched counters stay zero


def test_delta_of_snapshot_against_itself_is_zero():
    stats = MemoryStats(forks=2, pages_copied=9)
    zero = stats.delta(stats.snapshot())
    assert zero == MemoryStats()


def test_write_fraction_report():
    report = WriteFractionReport(pages_inherited=40, pages_written=10)
    assert report.fraction == pytest.approx(0.25)
    assert WriteFractionReport(pages_inherited=0, pages_written=0).fraction == 0.0
