"""Unit tests for the PagedHeap object store."""

import pytest

from repro.memory.frame import FramePool
from repro.memory.heap import PagedHeap


@pytest.fixture
def heap():
    return PagedHeap(pool=FramePool(page_size=128))


def test_put_get_roundtrip(heap):
    heap.put("x", [1, 2, 3])
    heap.put("y", {"nested": (4.5, "six")})
    assert heap.get("x") == [1, 2, 3]
    assert heap.get("y") == {"nested": (4.5, "six")}


def test_get_missing_key_raises(heap):
    with pytest.raises(KeyError):
        heap.get("absent")


def test_overwrite_replaces_value(heap):
    heap.put("k", "first")
    heap.put("k", "second")
    assert heap.get("k") == "second"
    assert len(heap) == 1


def test_delete(heap):
    heap.put("k", 1)
    heap.delete("k")
    assert "k" not in heap
    with pytest.raises(KeyError):
        heap.delete("k")


def test_keys_sorted_and_items(heap):
    heap.update({"b": 2, "a": 1, "c": 3})
    assert heap.keys() == ["a", "b", "c"]
    assert dict(heap.items()) == {"a": 1, "b": 2, "c": 3}
    assert heap.as_dict() == {"a": 1, "b": 2, "c": 3}


def test_free_list_reuses_space(heap):
    heap.put("big", b"x" * 100)
    brk_after = heap.space.brk
    heap.delete("big")
    heap.put("big2", b"y" * 50)
    assert heap.space.brk == brk_after  # reused the freed extent


def test_fork_isolation(heap):
    heap.put("shared", "base")
    child = heap.fork()
    child.put("shared", "child-version")
    child.put("new", 42)
    assert heap.get("shared") == "base"
    assert "new" not in heap
    assert child.get("shared") == "child-version"


def test_fork_shares_pages_until_write(heap):
    heap.put("v", b"z" * 300)
    before = heap.space.pool.stats.snapshot()
    child = heap.fork()
    assert heap.space.pool.stats.delta(before).pages_copied == 0
    assert child.get("v") == b"z" * 300


def test_replace_with_commits_winner(heap):
    heap.put("result", None)
    child = heap.fork()
    child.put("result", "computed")
    heap.replace_with(child)
    assert heap.get("result") == "computed"


def test_write_fraction_small_update_touches_few_pages(heap):
    for i in range(20):
        heap.put(f"key{i}", bytes(100))
    child = heap.fork()
    child.put("key3", bytes(100))
    report = child.write_fraction()
    assert 0 < report.fraction < 0.5
