"""Property-based tests for the COW memory invariants (DESIGN.md section 5).

- After fork, parent and child read identical content.
- A write in one table is never visible in the other.
- Frames are never copied unless written (copy count <= distinct pages
  written across all tables).
- replace_with makes the parent's content exactly the winner's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.address_space import AddressSpace
from repro.memory.frame import FramePool
from repro.memory.heap import PagedHeap

PAGE = 32

write_op = st.tuples(
    st.sampled_from(["parent", "child"]),
    st.integers(min_value=0, max_value=8 * PAGE - 1),
    st.binary(min_size=1, max_size=PAGE),
)


@given(initial=st.binary(min_size=0, max_size=4 * PAGE), ops=st.lists(write_op, max_size=20))
@settings(max_examples=200, deadline=None)
def test_cow_isolation_matches_plain_copies(initial, ops):
    """The COW pair behaves exactly like two independent byte arrays."""
    space = AddressSpace(FramePool(page_size=PAGE))
    space.write(0, initial)
    child = space.fork()

    size = 16 * PAGE
    model_parent = bytearray(size)
    model_parent[: len(initial)] = initial
    model_child = bytearray(model_parent)

    for who, addr, data in ops:
        target = space if who == "parent" else child
        model = model_parent if who == "parent" else model_child
        target.write(addr, data)
        model[addr : addr + len(data)] = data

    assert space.read(0, size) == bytes(model_parent)
    assert child.read(0, size) == bytes(model_child)


@given(
    initial=st.binary(min_size=1, max_size=6 * PAGE),
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6 * PAGE - 1),
            st.binary(min_size=1, max_size=PAGE // 2),
        ),
        max_size=15,
    ),
)
@settings(max_examples=150, deadline=None)
def test_pages_copied_bounded_by_pages_written(initial, writes):
    """COW never copies a page nobody wrote."""
    pool = FramePool(page_size=PAGE)
    space = AddressSpace(pool)
    space.write(0, initial)
    child = space.fork()
    before = pool.stats.snapshot()

    touched_pages = set()
    for addr, data in writes:
        child.write(addr, data)
        first = addr // PAGE
        last = (addr + len(data) - 1) // PAGE
        touched_pages.update(range(first, last + 1))

    copied = pool.stats.delta(before).pages_copied
    assert copied <= len(touched_pages)


@given(
    base=st.dictionaries(st.text(min_size=1, max_size=5), st.integers(), max_size=8),
    child_updates=st.dictionaries(st.text(min_size=1, max_size=5), st.integers(), max_size=8),
)
@settings(max_examples=150, deadline=None)
def test_commit_atomicity(base, child_updates):
    """After replace_with, the parent heap equals the child heap exactly."""
    heap = PagedHeap(pool=FramePool(page_size=PAGE))
    heap.update(base)
    child = heap.fork()
    child.update(child_updates)
    expected = dict(base)
    expected.update(child_updates)
    heap.replace_with(child)
    assert heap.as_dict() == expected


@given(
    values=st.lists(st.binary(min_size=0, max_size=3 * PAGE), min_size=1, max_size=10)
)
@settings(max_examples=100, deadline=None)
def test_heap_fork_then_release_leaks_nothing(values):
    """Eliminating a speculative child frees exactly its private frames."""
    pool = FramePool(page_size=PAGE)
    heap = PagedHeap(pool=pool)
    for i, v in enumerate(values):
        heap.put(f"k{i}", v)
    live_before_fork = pool.live_frames
    child = heap.fork()
    child.put("k0", b"rewrite" * 10)
    child.release()
    assert pool.live_frames == live_before_fork
    assert heap.get("k0") == values[0]
