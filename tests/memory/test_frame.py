"""Unit tests for physical frames and the frame pool."""

import pytest

from repro.errors import AddressError
from repro.memory.frame import FramePool
from repro.memory.stats import MemoryStats


def test_allocate_zero_filled():
    pool = FramePool(page_size=64)
    frame = pool.allocate()
    assert len(frame) == 64
    assert bytes(frame.data) == bytes(64)
    assert frame.refcount == 1
    assert not frame.shared


def test_allocate_with_payload_pads_to_page_size():
    pool = FramePool(page_size=16)
    frame = pool.allocate(b"abc")
    assert bytes(frame.data) == b"abc" + bytes(13)


def test_allocate_oversized_payload_rejected():
    pool = FramePool(page_size=8)
    with pytest.raises(AddressError):
        pool.allocate(b"123456789")


def test_page_size_must_be_positive():
    with pytest.raises(AddressError):
        FramePool(page_size=0)


def test_copy_is_independent_and_counted():
    stats = MemoryStats()
    pool = FramePool(page_size=32, stats=stats)
    original = pool.allocate(b"hello")
    clone = pool.copy(original)
    clone.data[0:5] = b"HELLO"
    assert bytes(original.data[:5]) == b"hello"
    assert bytes(clone.data[:5]) == b"HELLO"
    assert stats.pages_copied == 1
    assert stats.bytes_copied == 32
    assert clone.fid != original.fid


def test_retain_release_lifecycle():
    pool = FramePool(page_size=16)
    frame = pool.allocate()
    pool.retain(frame)
    assert frame.shared
    pool.release(frame)
    assert not frame.shared
    assert pool.live_frames == 1
    pool.release(frame)
    assert pool.live_frames == 0
    assert pool.stats.frames_freed == 1


def test_double_release_is_an_error():
    pool = FramePool(page_size=16)
    frame = pool.allocate()
    pool.release(frame)
    with pytest.raises(AddressError):
        pool.release(frame)


def test_stats_count_allocations():
    stats = MemoryStats()
    pool = FramePool(page_size=16, stats=stats)
    for _ in range(5):
        pool.allocate()
    assert stats.frames_allocated == 5
    assert pool.live_frames == 5


def test_stats_snapshot_and_delta():
    stats = MemoryStats()
    pool = FramePool(page_size=16, stats=stats)
    pool.allocate()
    before = stats.snapshot()
    pool.allocate()
    pool.allocate()
    diff = stats.delta(before)
    assert diff.frames_allocated == 2
    assert before.frames_allocated == 1
