"""Unit tests for COW page tables: fork, fault accounting, commit."""

import pytest

from repro.errors import AddressError, PageFault
from repro.memory.frame import FramePool
from repro.memory.pagetable import PageTable


@pytest.fixture
def pool():
    return FramePool(page_size=64)


def test_read_unmapped_page_faults(pool):
    table = PageTable(pool)
    with pytest.raises(PageFault):
        table.read(3)


def test_map_new_and_read(pool):
    table = PageTable(pool)
    table.map_new(0, b"hello")
    assert table.read(0).startswith(b"hello")
    assert len(table.read(0)) == 64


def test_double_map_rejected(pool):
    table = PageTable(pool)
    table.map_new(1)
    with pytest.raises(AddressError):
        table.map_new(1)


def test_negative_vpn_rejected(pool):
    table = PageTable(pool)
    with pytest.raises(AddressError):
        table.map_new(-1)


def test_write_demand_zero_maps(pool):
    table = PageTable(pool)
    table.write(7, b"xy", offset=10)
    page = table.read(7)
    assert page[10:12] == b"xy"
    assert page[:10] == bytes(10)


def test_write_out_of_page_bounds_rejected(pool):
    table = PageTable(pool)
    with pytest.raises(AddressError):
        table.write(0, b"a" * 65)
    with pytest.raises(AddressError):
        table.write(0, b"abc", offset=63)


def test_fork_shares_frames_without_copying(pool):
    parent = PageTable(pool)
    for vpn in range(4):
        parent.map_new(vpn, bytes([vpn]) * 8)
    before = pool.stats.snapshot()
    child = parent.fork()
    diff = pool.stats.delta(before)
    assert diff.pages_copied == 0
    assert diff.pte_copies == 4
    assert diff.forks == 1
    for vpn in range(4):
        assert child.read(vpn) == parent.read(vpn)
        assert child.frame_of(vpn) is parent.frame_of(vpn)


def test_cow_write_isolates_child_from_parent(pool):
    parent = PageTable(pool)
    parent.map_new(0, b"original")
    child = parent.fork()
    child.write(0, b"CHANGED!")
    assert parent.read(0).startswith(b"original")
    assert child.read(0).startswith(b"CHANGED!")
    assert pool.stats.cow_faults == 1


def test_cow_write_isolates_parent_from_child(pool):
    parent = PageTable(pool)
    parent.map_new(0, b"original")
    child = parent.fork()
    parent.write(0, b"PARENTWR")
    assert child.read(0).startswith(b"original")
    assert parent.read(0).startswith(b"PARENTWR")


def test_second_write_to_private_page_is_free(pool):
    parent = PageTable(pool)
    parent.map_new(0, b"data")
    child = parent.fork()
    child.write(0, b"one")
    faults_after_first = pool.stats.cow_faults
    child.write(0, b"two")
    assert pool.stats.cow_faults == faults_after_first


def test_write_fraction_tracks_distinct_privatized_pages(pool):
    parent = PageTable(pool)
    for vpn in range(10):
        parent.map_new(vpn)
    child = parent.fork()
    child.write(2, b"x")
    child.write(2, b"y")
    child.write(7, b"z")
    report = child.write_fraction()
    assert report.pages_inherited == 10
    assert report.pages_written == 2
    assert report.fraction == pytest.approx(0.2)


def test_write_fraction_counts_created_pages_separately(pool):
    parent = PageTable(pool)
    parent.map_new(0)
    child = parent.fork()
    child.write(100, b"fresh")
    report = child.write_fraction()
    assert report.pages_written == 0
    assert report.pages_created == 1


def test_replace_with_commits_winner_state_atomically(pool):
    parent = PageTable(pool)
    parent.map_new(0, b"parent-page-0")
    parent.map_new(1, b"parent-page-1")
    child = parent.fork()
    child.write(0, b"child-page-00")
    child.write(5, b"child-new-pg5")
    expected = child.content_dict()
    parent.replace_with(child)
    assert parent.content_dict() == expected
    assert child.released


def test_replace_with_frees_parent_frames(pool):
    parent = PageTable(pool)
    parent.map_new(0, b"a")
    child = parent.fork()
    child.write(0, b"b")  # both now hold private frames
    live_before = pool.live_frames
    parent.replace_with(child)
    assert pool.live_frames == live_before - 1


def test_replace_with_cross_pool_rejected(pool):
    other_pool = FramePool(page_size=64)
    a = PageTable(pool)
    b = PageTable(other_pool)
    with pytest.raises(AddressError):
        a.replace_with(b)


def test_release_frees_all_frames(pool):
    table = PageTable(pool)
    for vpn in range(3):
        table.map_new(vpn)
    table.release()
    assert pool.live_frames == 0
    with pytest.raises(AddressError):
        table.read(0)


def test_release_is_idempotent(pool):
    table = PageTable(pool)
    table.map_new(0)
    table.release()
    table.release()
    assert pool.live_frames == 0


def test_sibling_elimination_releases_only_private_copies(pool):
    parent = PageTable(pool)
    for vpn in range(5):
        parent.map_new(vpn)
    children = [parent.fork() for _ in range(3)]
    children[0].write(0, b"w")
    live_before = pool.live_frames
    children[0].release()
    # only the loser's single private page goes away; shared frames survive
    assert pool.live_frames == live_before - 1
    assert parent.read(0) == bytes(64)


def test_unmap_single_page(pool):
    table = PageTable(pool)
    table.map_new(0)
    table.map_new(1)
    table.unmap(0)
    assert 0 not in table
    assert 1 in table
    with pytest.raises(PageFault):
        table.read(0)


def test_same_content_detects_divergence(pool):
    a = PageTable(pool)
    a.map_new(0, b"same")
    b = a.fork()
    assert a.same_content(b)
    b.write(0, b"diff")
    assert not a.same_content(b)


def test_resident_bytes_splits_shared_frames(pool):
    parent = PageTable(pool)
    parent.map_new(0)
    parent.map_new(1)
    child = parent.fork()
    # two tables share two 64-byte frames -> 64 bytes charged to each
    assert parent.resident_bytes() == 64
    assert child.resident_bytes() == 64
    child.write(0, b"x")
    assert child.resident_bytes() == 64 + 32
