"""Always-on subset of the cross-layer chaos soak.

CI's nightly ``chaos-soak`` job runs the full 25-seed matrix via
``python -m repro.chaos``; this is the tier-1 slice — a few short
seeded runs that still compose every fault site with cold restarts and
check the full invariant set. ``CHAOS_SOAK_SEEDS`` raises the count.
"""

import json
import os

import pytest

from repro.chaos import SoakConfig, SoakReport, Violation, expected_value, run_soak
from repro.chaos.__main__ import main as chaos_main

SEEDS = range(int(os.environ.get("CHAOS_SOAK_SEEDS", "3")))


def _quick(seed, **overrides):
    kwargs = dict(seed=seed, episodes=2, requests_per_episode=6)
    kwargs.update(overrides)
    return SoakConfig(**kwargs)


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_seed_holds_invariants(seed):
    report = run_soak(_quick(seed))
    assert report.ok, [v.as_dict() for v in report.violations]
    assert report.acked > 0
    assert report.committed > 0
    # the schedule always exercises the restart path: one compaction
    # boundary per compact_every episodes plus the final durability kill
    assert report.restarts >= 2
    # every committed request's value was checked byte-identical against
    # expected_value inside the harness; spot-check the function is the
    # derivation the docstring promises
    assert expected_value(5) == 5 * 7 + 3


def test_soak_file_backed_journals(tmp_path):
    report = run_soak(_quick(1, storage_dir=str(tmp_path)))
    assert report.ok, [v.as_dict() for v in report.violations]
    assert (tmp_path / "shard-0.wal").exists()


def test_soak_without_faults_commits_everything():
    report = run_soak(_quick(2, rates={}))
    assert report.ok, [v.as_dict() for v in report.violations]
    # no injected faults: every submission is acked and committed, the
    # only restarts are the scheduled compaction boundaries + final kill,
    # and nothing was ever quarantined
    assert report.acked == report.submitted
    assert report.committed == report.acked
    assert report.quarantines == 0
    assert report.shard_crashes == 0


def test_report_shape_roundtrips():
    report = run_soak(_quick(0))
    doc = report.as_dict()
    assert doc["seed"] == 0
    assert doc["ok"] is report.ok
    assert isinstance(doc["violations"], list)
    v = Violation(kind="test", episode=1, detail="shape check")
    assert v.as_dict() == {"kind": "test", "episode": 1, "detail": "shape check"}
    assert isinstance(report, SoakReport)


def test_cli_quick_exits_zero(tmp_path, capsys):
    rc = chaos_main([
        "--quick", "--seeds", "1",
        "--json", str(tmp_path / "soak.json"),
        "--bench-results", str(tmp_path / "results"),
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "[ok ]" in out
    assert (tmp_path / "soak.json").exists()
    # bench results in the shape summarize.py merges
    doc = json.loads((tmp_path / "results" / "chaos_soak.json").read_text())
    assert doc["bench"] == "chaos_soak"
    names = {m["name"] for m in doc["metrics"]}
    assert {"soak_seeds", "soak_quarantines", "soak_violations"} <= names
    assert (tmp_path / "results" / "chaos_soak.txt").exists()
