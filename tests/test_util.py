"""Tests for shared utilities (ids, replayable RNG)."""

from repro.util.ids import IdAllocator
from repro.util.rng import ReplayableRNG


class TestIdAllocator:
    def test_monotonic_from_first(self):
        alloc = IdAllocator(10)
        assert [alloc.next() for _ in range(3)] == [10, 11, 12]

    def test_peek_does_not_consume(self):
        alloc = IdAllocator()
        assert alloc.peek() == 1
        assert alloc.next() == 1

    def test_independent_allocators(self):
        a, b = IdAllocator(), IdAllocator()
        a.next()
        assert b.peek() == 1


class TestReplayableRNG:
    def test_seed_determinism(self):
        assert ReplayableRNG(5).uniform() == ReplayableRNG(5).uniform()
        assert ReplayableRNG(5).uniform() != ReplayableRNG(6).uniform()

    def test_snapshot_restore_mid_stream(self):
        rng = ReplayableRNG(0)
        rng.uniform()
        snap = rng.snapshot()
        expected = [rng.uniform() for _ in range(3)]
        restored = ReplayableRNG.from_snapshot(snap)
        assert [restored.uniform() for _ in range(3)] == expected

    def test_clone_is_independent(self):
        rng = ReplayableRNG(1)
        clone = rng.clone()
        assert rng.uniform() == clone.uniform()
        rng.uniform()
        # streams stay in lockstep only if both draw; clone is behind now
        assert rng.snapshot() != clone.snapshot()

    def test_angle_range(self):
        import math

        rng = ReplayableRNG(3)
        for _ in range(100):
            angle = rng.angle()
            assert 0 <= angle < 2 * math.pi

    def test_integers_bounds(self):
        rng = ReplayableRNG(4)
        draws = {rng.integers(2, 5) for _ in range(100)}
        assert draws == {2, 3, 4}

    def test_shuffle_in_place_deterministic(self):
        a = list(range(10))
        b = list(range(10))
        ReplayableRNG(9).shuffle(a)
        ReplayableRNG(9).shuffle(b)
        assert a == b
        assert sorted(a) == list(range(10))
