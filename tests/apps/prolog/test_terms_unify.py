"""Tests for Prolog terms and unification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.prolog.terms import (
    NIL,
    Atom,
    Num,
    Struct,
    Var,
    freshen,
    list_items,
    make_list,
    term_size,
    variables_in,
)
from repro.apps.prolog.unify import EMPTY_SUBST, resolve, unify, walk


class TestTerms:
    def test_str_rendering(self):
        t = Struct("foo", (Atom("a"), Var("X"), Num(3)))
        assert str(t) == "foo(a, X, 3)"

    def test_list_rendering(self):
        assert str(make_list([Num(1), Num(2)])) == "[1, 2]"
        assert str(make_list([Num(1)], Var("T"))) == "[1|T]"
        assert str(NIL) == "[]"

    def test_list_items_roundtrip(self):
        items = [Num(1), Atom("x")]
        lst = make_list(items)
        out, tail = list_items(lst)
        assert out == items and tail == NIL

    def test_variables_in(self):
        t = Struct("f", (Var("X"), Struct("g", (Var("Y"), Var("X")))))
        names = sorted(v.name for v in variables_in(t))
        assert names == ["X", "X", "Y"]

    def test_freshen_renames_consistently(self):
        t = Struct("f", (Var("X"), Var("X"), Var("Y")))
        fresh = freshen(t)
        assert fresh.args[0] == fresh.args[1]
        assert fresh.args[0] != fresh.args[2]
        assert fresh.args[0] != Var("X")

    def test_freshen_shared_mapping(self):
        mapping = {}
        head = freshen(Var("X"), mapping)
        body = freshen(Var("X"), mapping)
        assert head == body

    def test_term_size(self):
        assert term_size(Atom("a")) == 1
        assert term_size(Struct("f", (Atom("a"), Num(1)))) == 3


class TestUnify:
    def test_atoms(self):
        assert unify(Atom("a"), Atom("a"), EMPTY_SUBST) == {}
        assert unify(Atom("a"), Atom("b"), EMPTY_SUBST) is None

    def test_var_binding(self):
        s = unify(Var("X"), Atom("a"), EMPTY_SUBST)
        assert walk(Var("X"), s) == Atom("a")

    def test_struct_recursion(self):
        a = Struct("f", (Var("X"), Num(2)))
        b = Struct("f", (Num(1), Var("Y")))
        s = unify(a, b, EMPTY_SUBST)
        assert walk(Var("X"), s) == Num(1)
        assert walk(Var("Y"), s) == Num(2)

    def test_functor_mismatch(self):
        assert unify(Struct("f", (Num(1),)), Struct("g", (Num(1),)), EMPTY_SUBST) is None
        assert unify(Struct("f", (Num(1),)), Struct("f", ()), EMPTY_SUBST) is None

    def test_chained_variables(self):
        s = unify(Var("X"), Var("Y"), EMPTY_SUBST)
        s = unify(Var("Y"), Num(7), s)
        assert walk(Var("X"), s) == Num(7)

    def test_occurs_check(self):
        circular = Struct("f", (Var("X"),))
        assert unify(Var("X"), circular, EMPTY_SUBST, occurs_check=True) is None
        # without occurs check the binding is made (standard Prolog)
        assert unify(Var("X"), circular, EMPTY_SUBST) is not None

    def test_original_subst_not_mutated(self):
        base = unify(Var("X"), Num(1), EMPTY_SUBST)
        extended = unify(Var("Y"), Num(2), base)
        assert Var("Y") not in base
        assert Var("Y") in extended

    def test_deep_list_unification_iterative(self):
        # 10k-element lists would break a recursive unifier
        a = make_list([Num(i) for i in range(10_000)])
        b = make_list([Num(i) for i in range(9_999)] + [Var("Z")])
        s = unify(a, b, EMPTY_SUBST)
        assert walk(Var("Z"), s) == Num(9_999)

    def test_resolve_deep(self):
        s = unify(Var("X"), Struct("f", (Var("Y"),)), EMPTY_SUBST)
        s = unify(Var("Y"), Num(3), s)
        assert resolve(Var("X"), s) == Struct("f", (Num(3),))


# -- property tests -----------------------------------------------------------
terms = st.recursive(
    st.one_of(
        st.sampled_from([Atom("a"), Atom("b"), Num(0), Num(1)]),
        st.sampled_from([Var("X"), Var("Y"), Var("Z")]),
    ),
    lambda children: st.builds(
        lambda args: Struct("f", tuple(args)), st.lists(children, min_size=1, max_size=3)
    ),
    max_leaves=12,
)


@given(terms, terms)
@settings(max_examples=200, deadline=None)
def test_unify_is_a_unifier(a, b):
    """When unify succeeds, both sides resolve to the identical term."""
    s = unify(a, b, EMPTY_SUBST, occurs_check=True)
    if s is not None:
        assert resolve(a, s) == resolve(b, s)


@given(terms, terms)
@settings(max_examples=200, deadline=None)
def test_unify_symmetric(a, b):
    sa = unify(a, b, EMPTY_SUBST, occurs_check=True)
    sb = unify(b, a, EMPTY_SUBST, occurs_check=True)
    assert (sa is None) == (sb is None)


@given(terms)
@settings(max_examples=100, deadline=None)
def test_unify_reflexive(t):
    assert unify(t, t, EMPTY_SUBST) is not None


@given(terms)
@settings(max_examples=100, deadline=None)
def test_freshen_preserves_structure(t):
    fresh = freshen(t)
    assert term_size(fresh) == term_size(t)
    # freshened term unifies with the original (it is a renaming)
    assert unify(t, fresh, EMPTY_SUBST) is not None
