"""Tests for the OR-parallel (Multiple Worlds) Prolog execution."""

import pytest

from repro.apps.prolog.database import Database
from repro.apps.prolog.interpreter import Interpreter
from repro.apps.prolog.orparallel import ORParallelEngine
from repro.errors import PrologError

# a program where clause order punishes depth-first search: the FIRST
# route predicate explores a big useless subtree before the answer, the
# SECOND finds it immediately.
SKEWED = """
slow(0).
slow(N) :- N > 0, M is N - 1, slow(M).

route(X) :- slow(200), fail.
route(X) :- X = found.

color(red).
color(green).
color(blue).
"""


@pytest.fixture(scope="module")
def engine():
    return ORParallelEngine(Database.from_source(SKEWED))


class TestBranches:
    def test_one_branch_per_matching_clause(self, engine):
        branches = engine.branches("route(X)")
        assert len(branches) == 2

    def test_builtin_first_goal_rejected(self, engine):
        with pytest.raises(PrologError):
            engine.branches("X = 1, route(X)")

    def test_unknown_predicate_rejected(self, engine):
        with pytest.raises(PrologError):
            engine.branches("nosuch(X)")

    def test_facts_branch_per_fact(self, engine):
        assert len(engine.branches("color(C)")) == 3

    def test_non_unifying_heads_excluded(self):
        engine = ORParallelEngine(Database.from_source("p(a). p(b)."))
        assert len(engine.branches("p(a)")) == 1


class TestBranchWork:
    def test_work_is_skewed(self, engine):
        work = engine.branch_work("route(X)")
        assert work[0].inferences > 50 * work[1].inferences
        assert not work[0].succeeds
        assert work[1].succeeds
        assert str(work[1].solution["X"]) == "found"


class TestSimulatedRace:
    def test_committed_choice_takes_cheap_branch(self, engine):
        solution, outcome = engine.solve_first_sim("route(X)")
        assert str(solution["X"]) == "found"
        assert outcome.winner.name == "clause-1"

    def test_parallel_beats_sequential_on_skewed_order(self, engine):
        per_inf = 1e-4
        _, stats = engine.solve_first_sequential("route(X)")
        sequential_virtual = (stats.inferences + stats.builtin_calls) * per_inf
        _, outcome = engine.solve_first_sim("route(X)", per_inference_s=per_inf)
        # sequential depth-first had to grind through the slow branch;
        # the OR-parallel race pays only the cheap branch + overhead
        assert outcome.elapsed_s < sequential_virtual / 10

    def test_all_branches_failing_gives_failure(self):
        engine = ORParallelEngine(
            Database.from_source("p(X) :- fail. p(X) :- 1 > 2.")
        )
        solution, outcome = engine.solve_first_sim("p(X)")
        assert solution is None
        assert outcome.failed


class TestRealBackends:
    def test_thread_backend(self, engine):
        solution, outcome = engine.solve_first_parallel("route(X)", backend="thread")
        assert str(solution["X"]) == "found"

    def test_fork_backend(self, engine):
        import os

        if not hasattr(os, "fork"):
            pytest.skip("needs fork")
        solution, outcome = engine.solve_first_parallel("route(X)", backend="fork")
        assert str(solution["X"]) == "found"

    def test_thread_backend_failure(self):
        engine = ORParallelEngine(Database.from_source("p(X) :- fail."))
        solution, outcome = engine.solve_first_parallel("p(X)", backend="thread")
        assert solution is None and outcome.failed


class TestSemantics:
    def test_committed_answer_is_a_sequential_answer(self, engine):
        """Sequential semantics: the committed solution must be one the
        sequential engine could have produced (paper section 3.3)."""
        interp = Interpreter(engine.db)
        all_answers = {str(s["X"]) for s in interp.solve_all("route(X)")}
        solution, _ = engine.solve_first_sim("route(X)")
        assert str(solution["X"]) in all_answers

    def test_bindings_match_sequential_for_facts(self, engine):
        solution, _ = engine.solve_first_sim("color(C)")
        assert str(solution["C"]) in {"red", "green", "blue"}
