"""Property test: term rendering and the reader are inverse."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.prolog.parser import parse_term
from repro.apps.prolog.terms import NIL, Atom, Num, Struct, Var, make_list

atoms = st.sampled_from([Atom("a"), Atom("foo"), Atom("bar_baz")])
nums = st.integers(min_value=-99, max_value=99).map(Num)
variables = st.sampled_from([Var("X"), Var("Y"), Var("Zed")])

terms = st.recursive(
    st.one_of(atoms, nums, variables, st.just(NIL)),
    lambda children: st.one_of(
        st.builds(
            lambda args: Struct("f", tuple(args)),
            st.lists(children, min_size=1, max_size=3),
        ),
        st.builds(
            lambda items, tail: make_list(items, tail),
            st.lists(children, min_size=1, max_size=3),
            st.one_of(st.just(NIL), variables),
        ),
    ),
    max_leaves=10,
)


@given(terms)
@settings(max_examples=300, deadline=None)
def test_str_then_parse_is_identity(term):
    assert parse_term(str(term)) == term


@given(terms, terms)
@settings(max_examples=150, deadline=None)
def test_rendering_is_injective_enough(a, b):
    """Distinct terms never render identically (over this generator)."""
    if a != b:
        assert str(a) != str(b)
