"""Tests for the Prolog reader."""

import pytest

from repro.apps.prolog.parser import (
    parse_program,
    parse_query,
    parse_term,
)
from repro.apps.prolog.terms import NIL, Atom, Num, Struct, Var, make_list
from repro.errors import PrologSyntaxError


class TestTerms:
    def test_atom(self):
        assert parse_term("foo") == Atom("foo")

    def test_variable(self):
        assert parse_term("Xyz") == Var("Xyz")

    def test_anonymous_variables_distinct(self):
        t = parse_term("f(_, _)")
        assert t.args[0] != t.args[1]

    def test_integer_and_float(self):
        assert parse_term("42") == Num(42)
        assert parse_term("3.5") == Num(3.5)

    def test_negative_number(self):
        assert parse_term("-7") == Num(-7)

    def test_compound(self):
        assert parse_term("point(1, 2)") == Struct("point", (Num(1), Num(2)))

    def test_nested_compound(self):
        t = parse_term("f(g(X), h(y, 1))")
        assert t == Struct(
            "f",
            (Struct("g", (Var("X"),)), Struct("h", (Atom("y"), Num(1)))),
        )

    def test_empty_list(self):
        assert parse_term("[]") == NIL

    def test_proper_list(self):
        assert parse_term("[1, 2]") == make_list([Num(1), Num(2)])

    def test_partial_list(self):
        assert parse_term("[H|T]") == make_list([Var("H")], Var("T"))

    def test_parenthesized_expression(self):
        t = parse_term("(1 + 2) * 3")
        assert t == Struct("*", (Struct("+", (Num(1), Num(2))), Num(3)))

    def test_operator_precedence(self):
        t = parse_term("1 + 2 * 3")
        assert t == Struct("+", (Num(1), Struct("*", (Num(2), Num(3)))))

    def test_left_associativity(self):
        t = parse_term("10 - 2 - 3")
        assert t == Struct("-", (Struct("-", (Num(10), Num(2))), Num(3)))

    def test_is_expression(self):
        t = parse_term("X is Y + 1")
        assert t == Struct("is", (Var("X"), Struct("+", (Var("Y"), Num(1)))))

    def test_negation_operator(self):
        t = parse_term("\\+ foo(X)")
        assert t == Struct("\\+", (Struct("foo", (Var("X"),)),))

    def test_comparison_tokens(self):
        for op in ["=<", ">=", "=:=", "=\\=", "\\==", "\\="]:
            t = parse_term(f"1 {op} 2")
            assert t == Struct(op, (Num(1), Num(2)))

    def test_syntax_error_position(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("foo(")
        with pytest.raises(PrologSyntaxError):
            parse_term("foo) bar")
        with pytest.raises(PrologSyntaxError):
            parse_term("foo bar")  # trailing input


class TestProgram:
    def test_facts(self):
        clauses = parse_program("parent(tom, bob). parent(bob, ann).")
        assert len(clauses) == 2
        assert clauses[0].is_fact
        assert clauses[0].indicator == "parent/2"

    def test_rule_with_conjunction(self):
        (clause,) = parse_program("gp(X,Z) :- parent(X,Y), parent(Y,Z).")
        assert not clause.is_fact
        assert len(clause.body) == 2
        assert clause.head == Struct("gp", (Var("X"), Var("Z")))

    def test_comments_ignored(self):
        clauses = parse_program(
            """
            % a family tree
            parent(a, b). % inline comment
            """
        )
        assert len(clauses) == 1

    def test_missing_period_rejected(self):
        with pytest.raises(PrologSyntaxError):
            parse_program("parent(a, b)")

    def test_zero_arity_rule(self):
        (clause,) = parse_program("go :- init, run.")
        assert clause.indicator == "go/0"


class TestQuery:
    def test_with_prefix(self):
        goals = parse_query("?- parent(tom, X).")
        assert goals == (Struct("parent", (Atom("tom"), Var("X"))),)

    def test_without_prefix_or_period(self):
        goals = parse_query("parent(tom, X)")
        assert len(goals) == 1

    def test_conjunction_flattened(self):
        goals = parse_query("a(X), b(X), c(X)")
        assert [g.functor for g in goals] == ["a", "b", "c"]

    def test_nested_conjunction_flattened(self):
        goals = parse_query("(a, b), (c, d)")
        assert len(goals) == 4
