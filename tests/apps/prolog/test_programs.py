"""Tests for the canonical program library (and `;` disjunction)."""

import pytest

from repro.apps.prolog import Database, Interpreter, ORParallelEngine
from repro.apps.prolog.programs import (
    COLORING,
    FAMILY,
    LISTS_EXTRA,
    QUEENS,
    SKEWED_SEARCH,
    naive_reverse_goal,
)


class TestFamily:
    @pytest.fixture(scope="class")
    def interp(self):
        return Interpreter.with_library(FAMILY)

    def test_father_mother(self, interp):
        assert interp.prove("father(tom, bob)")
        assert interp.prove("mother(liz, joe)")
        assert not interp.prove("father(liz, joe)")

    def test_siblings_are_symmetric_and_irreflexive(self, interp):
        sols = interp.solve_all("sibling(bob, X)")
        assert {str(s["X"]) for s in sols} == {"liz"}
        assert not interp.prove("sibling(bob, bob)")

    def test_ancestor_transitive(self, interp):
        assert interp.prove("ancestor(tom, max)")
        assert interp.count_solutions("ancestor(tom, X)") == 8


class TestQueens:
    @pytest.fixture(scope="class")
    def interp(self):
        return Interpreter.with_library(QUEENS)

    @staticmethod
    def _board(solution):
        from repro.apps.prolog.terms import list_items

        items, _ = list_items(solution.subst and solution.bindings["Qs"])
        return [t.value for t in items]

    def test_six_queens_solution_is_valid(self, interp):
        solution = interp.solve_first("queens(6, Qs)")
        board = self._board(solution)
        assert sorted(board) == [1, 2, 3, 4, 5, 6]
        for i, qi in enumerate(board):
            for j, qj in enumerate(board):
                if i < j:
                    assert abs(qi - qj) != j - i  # no diagonal attacks

    def test_four_queens_has_two_solutions(self, interp):
        assert interp.count_solutions("queens(4, Qs)") == 2

    def test_three_queens_impossible(self, interp):
        assert not interp.prove("queens(3, Qs)")


class TestColoring:
    def test_coloring_satisfies_constraints(self):
        interp = Interpreter.with_library(COLORING)
        s = interp.solve_first("colour_map(A, B, C, D, E)")
        a, b, c, d, e = (str(s[v]) for v in "ABCDE")
        for x, y in [(a, b), (a, c), (a, d), (b, c), (c, d), (b, e), (c, e), (d, e)]:
            assert x != y

    def test_or_parallel_on_coloring(self):
        engine = ORParallelEngine(Database.from_source(COLORING))
        solution, outcome = engine.solve_first_sim("colour(C)")
        assert str(solution["C"]) in {"red", "green", "blue"}


class TestListsExtra:
    @pytest.fixture(scope="class")
    def interp(self):
        return Interpreter.with_library(LISTS_EXTRA)

    def test_nrev(self, interp):
        s = interp.solve_first("nrev([1,2,3], R)")
        assert str(s["R"]) == "[3, 2, 1]"

    def test_nrev_workload_generator(self, interp):
        s = interp.solve_first(naive_reverse_goal(15))
        assert s is not None
        assert str(s["R"]).startswith("[14, 13")

    def test_sum_list(self, interp):
        assert str(interp.solve_first("sum_list([1,2,3,4], S)")["S"]) == "10"

    def test_max_list_uses_disjunction(self, interp):
        assert str(interp.solve_first("max_list([3, 9, 2], M)")["M"]) == "9"
        assert str(interp.solve_first("max_list([7], M)")["M"]) == "7"


class TestDisjunctionBuiltin:
    def test_both_branches_enumerate(self):
        interp = Interpreter.with_library("")
        sols = interp.solve_all("(X = a ; X = b)")
        assert [str(s["X"]) for s in sols] == ["a", "b"]

    def test_nested_conjunction_in_branch(self):
        interp = Interpreter.with_library("")
        assert interp.prove("(1 > 2, fail ; 2 > 1, 3 > 2)")

    def test_left_branch_first(self):
        interp = Interpreter.with_library("")
        s = interp.solve_first("(X = left ; X = right)")
        assert str(s["X"]) == "left"


class TestSkewedSearch:
    def test_or_parallel_beats_clause_order(self):
        db = Database.from_source(SKEWED_SEARCH)
        engine = ORParallelEngine(db)
        work = engine.branch_work("find(W)")
        assert work[-1].succeeds  # direct is last and cheap
        assert work[0].inferences > 5 * work[-1].inferences
        solution, outcome = engine.solve_first_sim("find(W)")
        assert str(solution["W"]) == "direct"
