"""Tests for the sequential SLD interpreter."""

import pytest

from repro.apps.prolog.database import Database
from repro.apps.prolog.interpreter import Interpreter
from repro.errors import PrologError

FAMILY = """
parent(tom, bob).
parent(tom, liz).
parent(bob, ann).
parent(bob, pat).
parent(pat, jim).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
anc(X, Y) :- parent(X, Y).
anc(X, Z) :- parent(X, Y), anc(Y, Z).
"""


@pytest.fixture(scope="module")
def interp():
    return Interpreter.with_library(FAMILY)


class TestFacts:
    def test_ground_query_true(self, interp):
        assert interp.prove("parent(tom, bob)")

    def test_ground_query_false(self, interp):
        assert not interp.prove("parent(bob, tom)")

    def test_unknown_predicate_fails(self, interp):
        assert not interp.prove("sibling(a, b)")

    def test_enumerate_bindings_in_program_order(self, interp):
        sols = interp.solve_all("parent(tom, X)")
        assert [str(s["X"]) for s in sols] == ["bob", "liz"]

    def test_both_arguments_open(self, interp):
        assert interp.count_solutions("parent(X, Y)") == 5


class TestRules:
    def test_grandparent(self, interp):
        sols = interp.solve_all("grandparent(tom, X)")
        assert sorted(str(s["X"]) for s in sols) == ["ann", "pat"]

    def test_recursive_ancestor(self, interp):
        sols = interp.solve_all("anc(tom, X)")
        assert sorted(str(s["X"]) for s in sols) == ["ann", "bob", "jim", "liz", "pat"]

    def test_solve_first_stops_early(self, interp):
        solution = interp.solve_first("anc(tom, X)")
        assert str(solution["X"]) == "bob"

    def test_solution_limit(self, interp):
        assert len(interp.solve_all("anc(X, Y)", limit=3)) == 3


class TestBuiltins:
    def test_unification_builtin(self, interp):
        s = interp.solve_first("X = f(1, Y), Y = 2")
        assert str(s["X"]) == "f(1, 2)"

    def test_disunification(self, interp):
        assert interp.prove("a \\= b")
        assert not interp.prove("a \\= a")
        assert not interp.prove("X \\= a")  # X unifies with a

    def test_structural_equality(self, interp):
        assert interp.prove("f(X) == f(X)")
        assert not interp.prove("f(X) == f(Y)")

    def test_arithmetic_is(self, interp):
        s = interp.solve_first("X is 3 * 4 + 2")
        assert str(s["X"]) == "14"

    def test_arithmetic_operators(self, interp):
        assert interp.prove("X is 7 // 2, X == 3")
        assert interp.prove("X is 7 mod 2, X == 1")
        assert interp.prove("X is 6 / 3, X == 2")

    def test_comparisons(self, interp):
        assert interp.prove("3 < 4")
        assert interp.prove("4 >= 4")
        assert not interp.prove("3 > 4")
        assert interp.prove("2 + 2 =:= 4")
        assert interp.prove("2 + 2 =\\= 5")

    def test_uninstantiated_arithmetic_errors(self, interp):
        with pytest.raises(PrologError):
            interp.prove("X is Y + 1")

    def test_zero_divisor_errors(self, interp):
        with pytest.raises(PrologError):
            interp.prove("X is 1 / 0")

    def test_negation_as_failure(self, interp):
        assert interp.prove("\\+ parent(bob, tom)")
        assert not interp.prove("\\+ parent(tom, bob)")

    def test_call(self, interp):
        assert interp.prove("call(parent(tom, bob))")

    def test_true_fail(self, interp):
        assert interp.prove("true")
        assert not interp.prove("fail")

    def test_once_commits_to_first_solution(self, interp):
        sols = interp.solve_all("once(parent(tom, X))")
        assert [str(s["X"]) for s in sols] == ["bob"]

    def test_once_fails_when_goal_fails(self, interp):
        assert not interp.prove("once(parent(jim, tom))")

    def test_type_tests(self, interp):
        assert interp.prove("var(X)")
        assert interp.prove("X = a, nonvar(X)")
        assert interp.prove("atom(foo)")
        assert not interp.prove("atom(1)")
        assert interp.prove("number(3)")
        assert interp.prove("integer(3)")
        assert not interp.prove("integer(3.5)")
        assert interp.prove("number(3.5)")


class TestLibrary:
    def test_member(self, interp):
        assert interp.prove("member(2, [1, 2, 3])")
        sols = interp.solve_all("member(X, [a, b])")
        assert [str(s["X"]) for s in sols] == ["a", "b"]

    def test_append_generative(self, interp):
        assert interp.count_solutions("append(X, Y, [1, 2, 3])") == 4

    def test_length(self, interp):
        s = interp.solve_first("length([a, b, c], N)")
        assert str(s["N"]) == "3"

    def test_reverse(self, interp):
        s = interp.solve_first("reverse([1, 2, 3], R)")
        assert str(s["R"]) == "[3, 2, 1]"

    def test_last(self, interp):
        s = interp.solve_first("last([1, 2, 9], X)")
        assert str(s["X"]) == "9"

    def test_between(self, interp):
        sols = interp.solve_all("between(2, 5, X)")
        assert [str(s["X"]) for s in sols] == ["2", "3", "4", "5"]


class TestRecursionAndBudgets:
    def test_deep_recursion_fibonacci(self):
        interp = Interpreter.with_library(
            """
            fib(0, 0).
            fib(1, 1).
            fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                         fib(A, FA), fib(B, FB), F is FA + FB.
            """
        )
        s = interp.solve_first("fib(16, F)")
        assert str(s["F"]) == "987"

    def test_infinite_loop_hits_budget(self):
        interp = Interpreter(
            Database.from_source("loop :- loop."), max_steps=5000
        )
        with pytest.raises(PrologError):
            interp.prove("loop")

    def test_stats_accounting(self, interp):
        interp.prove("anc(tom, jim)")
        stats = interp.last_stats
        assert stats.inferences > 0
        assert stats.unifications >= stats.inferences
        assert stats.deepest > 1

    def test_left_recursion_hits_depth_or_step_budget(self):
        interp = Interpreter(
            Database.from_source("p(X) :- p(X). p(a)."), max_steps=10_000
        )
        with pytest.raises(PrologError):
            interp.prove("p(b)")
