"""Unit and property tests for the dense complex polynomial type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.poly.rootfind.polynomial import Polynomial
from repro.errors import SolverError


class TestBasics:
    def test_degree_and_leading(self):
        p = Polynomial([2, 0, -1])
        assert p.degree == 2
        assert p.leading == 2
        assert p.constant == -1

    def test_leading_zeros_stripped(self):
        p = Polynomial([0, 0, 3, 1])
        assert p.degree == 1
        assert p.leading == 3

    def test_zero_polynomial_rejected(self):
        with pytest.raises(SolverError):
            Polynomial([0, 0, 0])

    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            Polynomial([])

    def test_horner_evaluation(self):
        p = Polynomial([1, -3, 2])  # x^2 - 3x + 2 = (x-1)(x-2)
        assert p(1) == 0
        assert p(2) == 0
        assert p(0) == 2
        assert p(3j) == pytest.approx((3j) ** 2 - 9j + 2)

    def test_derivative(self):
        p = Polynomial([1, 0, -4, 7])  # x^3 - 4x + 7
        dp = p.derivative()
        assert np.allclose(dp.coeffs, [3, 0, -4])

    def test_derivative_of_constant_rejected(self):
        with pytest.raises(SolverError):
            Polynomial([5]).derivative()

    def test_from_roots(self):
        p = Polynomial.from_roots([1, -1])
        assert np.allclose(p.coeffs, [1, 0, -1])  # x^2 - 1
        for r in (1, -1):
            assert abs(p(r)) < 1e-12

    def test_monic(self):
        p = Polynomial([2, 4, 6]).monic()
        assert p.leading == 1
        assert np.allclose(p.coeffs, [1, 2, 3])

    def test_wilkinson(self):
        p = Polynomial.wilkinson(5)
        for k in range(1, 6):
            assert abs(p(k)) < 1e-9


class TestDivision:
    def test_deflate_removes_root(self):
        p = Polynomial.from_roots([1, 2, 3])
        q = p.deflate(2)
        assert q.degree == 2
        assert abs(q(1)) < 1e-10
        assert abs(q(3)) < 1e-10

    def test_deflate_constant_rejected(self):
        with pytest.raises(SolverError):
            Polynomial([3]).deflate(1)

    def test_divide_out_linear_remainder_is_value(self):
        p = Polynomial([1, 2, 3, 4])
        s = 1.5 + 0.5j
        q, r = p.divide_out_linear(s)
        assert r == pytest.approx(p(s))
        # p(z) = q(z)(z-s) + r at a test point
        z = -0.7 + 0.2j
        assert q(z) * (z - s) + r == pytest.approx(p(z))


class TestCauchyRadius:
    def test_lower_bound_property(self):
        roots = [0.5, 2.0, -3.0 + 1j]
        p = Polynomial.from_roots(roots)
        beta = p.cauchy_lower_radius()
        assert 0 < beta <= min(abs(r) for r in roots) + 1e-9

    def test_zero_at_origin(self):
        p = Polynomial([1, 0])  # root 0
        assert p.cauchy_lower_radius() == 0.0


@st.composite
def random_polys(draw):
    degree = draw(st.integers(min_value=1, max_value=8))
    coeffs = [
        complex(draw(st.floats(-5, 5)), draw(st.floats(-5, 5)))
        for _ in range(degree + 1)
    ]
    if abs(coeffs[0]) < 1e-3:
        coeffs[0] = 1.0
    return Polynomial(coeffs)


@given(random_polys(), st.floats(-3, 3), st.floats(-3, 3))
@settings(max_examples=100, deadline=None)
def test_horner_matches_numpy(p, re, im):
    z = complex(re, im)
    assert p(z) == pytest.approx(complex(np.polyval(p.coeffs, z)), abs=1e-6)


@given(random_polys(), st.floats(-2, 2), st.floats(-2, 2))
@settings(max_examples=100, deadline=None)
def test_deflation_inverts_from_root(p, re, im):
    root = complex(re, im)
    grown_coeffs = np.convolve(p.coeffs, [1.0, -root])
    grown = Polynomial(grown_coeffs)
    shrunk = grown.deflate(root)
    assert np.allclose(shrunk.coeffs, p.coeffs, atol=1e-8)


@given(random_polys())
@settings(max_examples=100, deadline=None)
def test_cauchy_radius_is_lower_bound(p):
    if abs(p.constant) < 1e-9:  # (near-)zero root: bound trivially ~0
        return
    beta = p.cauchy_lower_radius()
    roots = np.roots(p.coeffs)
    if roots.size:
        assert beta <= np.min(np.abs(roots)) * (1 + 1e-6) + 1e-9
