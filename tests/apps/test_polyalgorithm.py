"""Tests for the polyalgorithm framework (sequential and worlds modes)."""

import pytest

from repro.apps.poly.polyalgorithm import Method, PolyAlgorithm
from repro.apps.poly.scalar_solvers import bisection, newton, secant
from repro.errors import ConvergenceError, SolverError


def _problem(f, a=0.0, b=4.0, x0=3.0):
    return {"f": f, "a": a, "b": b, "x0": x0}


def m_bisect(ws):
    return bisection(ws["f"], ws["a"], ws["b"])


def m_newton(ws):
    return newton(ws["f"], ws["x0"])


def m_secant(ws):
    return secant(ws["f"], ws["a"], ws["b"])


def _accept(ws, value):
    return abs(ws["f"](value)) < 1e-6


def standard_poly():
    return PolyAlgorithm(
        [
            Method("newton", m_newton, accept=_accept),
            Method("secant", m_secant, accept=_accept),
            Method("bisection", m_bisect, accept=_accept,
                   applies=lambda ws: ws["f"](ws["a"]) * ws["f"](ws["b"]) < 0),
        ],
        name="scalar-root",
    )


def test_constructor_validations():
    with pytest.raises(SolverError):
        PolyAlgorithm([])
    with pytest.raises(SolverError):
        PolyAlgorithm([Method("x", m_newton), Method("x", m_bisect)])


class TestSequential:
    def test_first_method_wins_when_it_works(self):
        result = standard_poly().run_sequential(_problem(lambda x: x * x - 2))
        assert result.succeeded
        assert result.method == "newton"
        assert result.value == pytest.approx(2 ** 0.5)

    def test_falls_through_to_robust_method(self):
        # a function whose flat tails break Newton/secant from x0=3 but
        # which brackets fine: atan shifted
        import math

        f = lambda x: math.atan(x - 1.2)
        result = standard_poly().run_sequential(_problem(f, a=-40, b=40, x0=300.0))
        assert result.succeeded
        assert result.method in ("secant", "bisection")
        assert result.value == pytest.approx(1.2, abs=1e-6)
        assert "newton" in result.attempts

    def test_failure_collects_hints(self):
        def hopeless(x):
            return 1.0  # no root at all

        poly = PolyAlgorithm([Method("newton", m_newton)])
        result = poly.run_sequential(_problem(hopeless))
        assert not result.succeeded
        assert "newton" in result.hints

    def test_inapplicable_method_skipped(self):
        poly = PolyAlgorithm(
            [
                Method("never", m_newton, applies=lambda ws: False),
                Method("bisect", m_bisect),
            ]
        )
        result = poly.run_sequential(_problem(lambda x: x - 1))
        assert result.method == "bisect"
        assert "never" not in result.attempts


class TestWorlds:
    def test_worlds_mode_solves(self):
        result = standard_poly().run_worlds(
            _problem(lambda x: x * x - 2), backend="thread"
        )
        assert result.succeeded
        assert result.value == pytest.approx(2 ** 0.5, abs=1e-6)

    def test_worlds_mode_fork_backend(self):
        import os

        if not hasattr(os, "fork"):
            pytest.skip("needs fork")
        result = standard_poly().run_worlds(
            _problem(lambda x: x ** 3 - 8), backend="fork"
        )
        assert result.succeeded
        assert result.value == pytest.approx(2.0, abs=1e-6)

    def test_alternatives_are_rotations(self):
        poly = standard_poly()
        alts = poly.alternatives(_problem(lambda x: x - 1))
        names = [a.name for a in alts]
        assert names == ["first:newton", "first:secant", "first:bisection"]

    def test_each_alternative_eventually_succeeds_alone(self):
        # every rotation solves the easy problem (methods back each other up)
        poly = standard_poly()
        for alt in poly.alternatives(_problem(lambda x: x * x - 2)):
            ws = _problem(lambda x: x * x - 2)
            ws["hints"] = {}
            assert alt.fn(ws) == pytest.approx(2 ** 0.5, abs=1e-6)

    def test_rotation_survives_first_method_failure(self):
        def nasty(x):
            return 1.0 if x > -1000 else -1.0  # no usable root for newton

        poly = PolyAlgorithm(
            [
                Method("newton", m_newton, accept=_accept),
                Method("answer", lambda ws: 42.0),
            ]
        )
        alts = poly.alternatives(_problem(nasty))
        ws = _problem(nasty)
        assert alts[0].fn(ws) == 42.0
        assert ws["solved_by"] == "answer"

    def test_no_applicable_method_raises(self):
        poly = PolyAlgorithm([Method("never", m_newton, applies=lambda ws: False)])
        with pytest.raises(SolverError):
            poly.alternatives(_problem(lambda x: x))

    def test_all_orderings_fail_gives_failed_outcome(self):
        def diverges(ws):
            raise ConvergenceError("nope")

        poly = PolyAlgorithm([Method("bad", diverges)])
        result = poly.run_worlds(_problem(lambda x: x), backend="thread")
        assert not result.succeeded
