"""Tests for the scalar root-finder method pool."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.poly.scalar_solvers import bisection, brent, fixed_point, newton, secant
from repro.errors import ConvergenceError, SolverError


def f_cubic(x):
    return x**3 - 2 * x - 5  # classic Newton test; root near 2.0945514815


ROOT_CUBIC = 2.0945514815423265


class TestBisection:
    def test_finds_root(self):
        assert bisection(f_cubic, 2, 3) == pytest.approx(ROOT_CUBIC, abs=1e-10)

    def test_endpoint_root(self):
        assert bisection(lambda x: x, 0.0, 1.0) == 0.0

    def test_rejects_non_bracket(self):
        with pytest.raises(SolverError):
            bisection(f_cubic, 3, 4)

    def test_rejects_inverted_interval(self):
        with pytest.raises(SolverError):
            bisection(f_cubic, 3, 2)


class TestSecant:
    def test_finds_root(self):
        assert secant(f_cubic, 2, 3) == pytest.approx(ROOT_CUBIC, abs=1e-9)

    def test_flat_secant_fails(self):
        with pytest.raises(ConvergenceError):
            secant(lambda x: 1.0, 0, 1)

    def test_divergence_detected(self):
        with pytest.raises(ConvergenceError):
            secant(lambda x: math.atan(x) + 10, 100.0, 120.0, max_iter=12)


class TestNewton:
    def test_with_analytic_derivative(self):
        root = newton(f_cubic, 2.5, fprime=lambda x: 3 * x**2 - 2)
        assert root == pytest.approx(ROOT_CUBIC, abs=1e-10)

    def test_with_numeric_derivative(self):
        assert newton(f_cubic, 2.5) == pytest.approx(ROOT_CUBIC, abs=1e-8)

    def test_zero_derivative_fails(self):
        with pytest.raises(ConvergenceError):
            newton(lambda x: x**2 + 1, 0.0, fprime=lambda x: 2 * x)

    def test_bad_start_can_fail(self):
        # the classic cycle/divergence case x^(1/3) from far away
        def cube_root_like(x):
            return math.copysign(abs(x) ** (1 / 3), x)

        with pytest.raises(ConvergenceError):
            newton(cube_root_like, 1.0, max_iter=30)


class TestBrent:
    def test_finds_root(self):
        assert brent(f_cubic, 2, 3) == pytest.approx(ROOT_CUBIC, abs=1e-10)

    def test_handles_nasty_flat_function(self):
        def flat(x):
            return (x - 1.5) ** 9

        assert brent(flat, 0, 4, tol=1e-9) == pytest.approx(1.5, abs=1e-3)

    def test_rejects_non_bracket(self):
        with pytest.raises(SolverError):
            brent(f_cubic, 3, 4)


class TestFixedPoint:
    def test_contraction_converges(self):
        # x = cos(x) has the Dottie number fixed point
        assert fixed_point(math.cos, 1.0) == pytest.approx(0.7390851332, abs=1e-8)

    def test_expansion_diverges(self):
        with pytest.raises(ConvergenceError):
            fixed_point(lambda x: 2 * x + 1, 1.0, max_iter=50)


@given(st.floats(min_value=-50, max_value=50))
@settings(max_examples=100, deadline=None)
def test_bracketing_methods_agree(shift):
    """Bisection and Brent find the same root of a shifted cubic."""
    def f(x):
        return (x - shift) ** 3 + (x - shift)

    a, b = shift - 7, shift + 11
    r_bis = bisection(f, a, b, tol=1e-12)
    r_brent = brent(f, a, b, tol=1e-12)
    assert r_bis == pytest.approx(shift, abs=1e-6)
    assert r_brent == pytest.approx(shift, abs=1e-6)


@given(st.floats(min_value=0.5, max_value=20))
@settings(max_examples=100, deadline=None)
def test_newton_sqrt(target):
    """Newton on x^2 - t recovers sqrt(t) from a decent start."""
    root = newton(lambda x: x * x - target, target, fprime=lambda x: 2 * x)
    assert root == pytest.approx(math.sqrt(target), rel=1e-9)
