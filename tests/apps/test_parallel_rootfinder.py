"""Tests for the Table I parallel rootfinder driver."""

import math

import numpy as np
import pytest

from repro.apps.poly.rootfind.jenkins_traub import JTOptions
from repro.apps.poly.rootfind.parallel import (
    ParallelRootfinder,
    default_table_polynomial,
    render_table_one,
)
from repro.apps.poly.rootfind.polynomial import Polynomial


@pytest.fixture(scope="module")
def finder():
    return ParallelRootfinder(default_table_polynomial(degree=24))


def test_default_polynomial_shape():
    p = default_table_polynomial(degree=17)
    assert p.degree == 17


def test_sequential_run_is_deterministic(finder):
    a = finder.sequential_run(3)
    b = finder.sequential_run(3)
    assert a.failed == b.failed
    assert a.zeros == b.zeros


def test_sequential_runs_have_dispersion(finder):
    runs = finder.sequential_runs(range(6))
    times = [r.elapsed_s for r in runs]
    assert max(times) > 0
    # runtimes differ across angle seeds (the paper's premise)
    assert max(times) > min(times)


def test_winner_zeros_are_correct(finder):
    outcome = finder.parallel_run(range(4), backend="thread")
    assert not outcome.failed
    zeros = outcome.extras["state"]["zeros"]
    p = finder.poly
    assert all(abs(p(z)) < 1e-4 for z in zeros)
    assert len(zeros) == p.degree


def test_parallel_run_fork_backend(finder):
    import os

    if not hasattr(os, "fork"):
        pytest.skip("needs fork")
    outcome = finder.parallel_run(range(3), backend="fork")
    assert not outcome.failed
    assert len(outcome.extras["state"]["zeros"]) == finder.poly.degree


def test_table_one_shape(finder):
    rows = finder.table_one([1, 2, 3], base_seed=0)
    assert [r.procs for r in rows] == [1, 2, 3]
    for row in rows:
        assert row.min_s <= row.avg_s <= row.max_s
        assert row.fails >= 0
        assert math.isfinite(row.par_s)
    # with one process, par ≈ the single sequential time plus overhead
    assert rows[0].par_s == pytest.approx(rows[0].max_s, rel=0.3)


def test_table_one_two_procs_story(finder):
    """The paper's headline: at 2 procs on 2 CPUs, par beats avg.

    par = min + overhead, and overhead is small, so par < avg whenever
    the dispersion exceeds the worlds overhead.
    """
    row = finder.table_one_row(6, base_seed=0, processors=6)
    # with one CPU per process, parallel tracks the fastest alternative
    assert row.par_s == pytest.approx(row.min_s, rel=0.25)
    assert row.par_s < row.avg_s


def test_table_one_cpu_saturation(finder):
    """More processes than CPUs: par grows past min (paper procs >= 3)."""
    unsat = finder.table_one_row(2, base_seed=0, processors=2)
    sat = finder.table_one_row(6, base_seed=0, processors=2)
    assert sat.par_s > unsat.par_s


def test_failures_counted():
    strict = JTOptions(
        stage1_iterations=1,
        stage2_max_iterations=4,
        stage3_max_iterations=3,
        max_angle_tries=1,
    )
    finder = ParallelRootfinder(Polynomial.wilkinson(14), options=strict)
    rows = finder.table_one([6], base_seed=0)
    assert rows[0].fails > 0


def test_all_seeds_failing_gives_nan_par():
    impossible = JTOptions(
        stage1_iterations=0,
        stage2_max_iterations=1,
        stage3_max_iterations=1,
        max_angle_tries=1,
    )
    finder = ParallelRootfinder(Polynomial.wilkinson(16), options=impossible)
    row = finder.table_one_row(3, base_seed=0)
    if row.fails == 3:  # overwhelmingly likely with this budget
        assert math.isnan(row.par_s)


def test_render_table(finder):
    rows = finder.table_one([1, 2])
    text = render_table_one(rows)
    assert "procs" in text and "par" in text
    assert len(text.splitlines()) == 3
