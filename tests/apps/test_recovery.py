"""Tests for recovery blocks (sequential and Multiple Worlds modes)."""

import pytest

from repro.apps.recovery import RecoveryBlock, RecoveryResult, flaky
from repro.errors import WorldsError


def sort_quick(ws):
    ws["data"] = sorted(ws["data"])
    return "quick"


def sort_backwards(ws):
    # a buggy primary: sorts descending (fails the acceptance test)
    ws["data"] = sorted(ws["data"], reverse=True)
    return "backwards"


def sort_crashes(ws):
    raise RuntimeError("segfault simulation")


def accept_sorted(ws, value):
    data = ws["data"]
    return all(data[i] <= data[i + 1] for i in range(len(data) - 1))


DATA = {"data": [3, 1, 2, 9, 5]}


def test_constructor_validations():
    with pytest.raises(WorldsError):
        RecoveryBlock("not callable", sort_quick)  # type: ignore[arg-type]
    with pytest.raises(WorldsError):
        RecoveryBlock(accept_sorted, "not callable")  # type: ignore[arg-type]


class TestSequential:
    def test_primary_accepted(self):
        block = RecoveryBlock(accept_sorted, sort_quick, sort_backwards)
        result = block.run_sequential(DATA)
        assert result.succeeded
        assert result.alternate == "sort_quick"
        assert result.state["data"] == [1, 2, 3, 5, 9]

    def test_fallback_on_bad_primary(self):
        block = RecoveryBlock(accept_sorted, sort_backwards, sort_quick)
        result = block.run_sequential(DATA)
        assert result.alternate == "sort_quick"
        assert result.attempts == ["sort_backwards", "sort_quick"]

    def test_fallback_on_crash(self):
        block = RecoveryBlock(accept_sorted, sort_crashes, sort_quick)
        result = block.run_sequential(DATA)
        assert result.alternate == "sort_quick"

    def test_state_restored_between_attempts(self):
        # the backwards sorter mutates its trial copy; the next alternate
        # must still see the ORIGINAL data
        seen = {}

        def spy_sort(ws):
            seen["data"] = list(ws["data"])
            ws["data"] = sorted(ws["data"])
            return "spy"

        block = RecoveryBlock(accept_sorted, sort_backwards, spy_sort)
        block.run_sequential(DATA)
        assert seen["data"] == DATA["data"]

    def test_all_fail(self):
        block = RecoveryBlock(accept_sorted, sort_backwards, sort_crashes)
        result = block.run_sequential(DATA)
        assert not result.succeeded
        assert result.attempts == ["sort_backwards", "sort_crashes"]

    def test_caller_state_never_mutated(self):
        original = {"data": [2, 1]}
        RecoveryBlock(accept_sorted, sort_quick).run_sequential(original)
        assert original["data"] == [2, 1]

    def test_fault_injection_counts_down(self):
        healed = flaky(sort_quick, failures_before_success=2)
        block = RecoveryBlock(accept_sorted, healed)
        assert not block.run_sequential(DATA).succeeded  # fault 1
        assert not block.run_sequential(DATA).succeeded  # fault 2
        assert block.run_sequential(DATA).succeeded  # healed


class TestParallel:
    @pytest.mark.parametrize("backend", ["thread", "fork", "sim"])
    def test_accepted_alternate_wins(self, backend):
        import os

        if backend == "fork" and not hasattr(os, "fork"):
            pytest.skip("needs fork")
        block = RecoveryBlock(accept_sorted, sort_backwards, sort_quick)
        kwargs = {}
        if backend == "sim":
            kwargs["sim_costs"] = [0.1, 0.5]
        result = block.run_parallel(DATA, backend=backend, **kwargs)
        assert result.succeeded
        assert result.alternate == "sort_quick"
        assert result.state["data"] == [1, 2, 3, 5, 9]

    def test_sim_backend_fastest_acceptable_wins(self):
        def slow_ok(ws):
            ws["data"] = sorted(ws["data"])
            return "slow"

        def fast_ok(ws):
            ws["data"] = sorted(ws["data"])
            return "fast"

        block = RecoveryBlock(accept_sorted, slow_ok, fast_ok)
        result = block.run_parallel(DATA, backend="sim", sim_costs=[2.0, 0.5])
        assert result.alternate == "fast_ok"

    def test_sim_response_time_tracks_fastest_not_sum(self):
        def mk(label):
            def alt(ws):
                ws["data"] = sorted(ws["data"])
                return label

            alt.__name__ = label
            return alt

        block = RecoveryBlock(accept_sorted, mk("a"), mk("b"), mk("c"))
        result = block.run_parallel(
            DATA, backend="sim", sim_costs=[5.0, 1.0, 3.0], cpus=3
        )
        assert result.outcome.elapsed_s == pytest.approx(1.0, rel=0.05)

    def test_parallel_all_fail(self):
        block = RecoveryBlock(accept_sorted, sort_backwards, sort_crashes)
        result = block.run_parallel(DATA, backend="thread")
        assert not result.succeeded
        assert len(result.attempts) == 2

    def test_acceptance_is_the_guard(self):
        # faster-but-wrong loses to slower-but-right in virtual time
        def wrong_fast(ws):
            ws["data"] = [9, 9, 1]
            return "wrong"

        def right_slow(ws):
            ws["data"] = sorted(ws["data"])
            return "right"

        block = RecoveryBlock(accept_sorted, wrong_fast, right_slow)
        result = block.run_parallel(DATA, backend="sim", sim_costs=[0.1, 1.0])
        assert result.alternate == "right_slow"
