"""Tests for the Jenkins-Traub three-stage zero finder."""

import numpy as np
import pytest

from repro.apps.poly.rootfind.jenkins_traub import (
    JTOptions,
    find_all_zeros,
    find_one_zero,
)
from repro.apps.poly.rootfind.polynomial import Polynomial


def _assert_zero_sets_match(zeros, expected, atol=1e-6):
    """Greedy nearest-neighbour pairing (sort order is float-fragile)."""
    ours = list(np.asarray(zeros, dtype=complex))
    ref = list(np.asarray(expected, dtype=complex))
    assert len(ours) == len(ref)
    for want in ref:
        best = min(range(len(ours)), key=lambda i: abs(ours[i] - want))
        assert abs(ours[best] - want) <= atol, (want, ours)
        del ours[best]


class TestFindOne:
    def test_linear(self):
        assert find_one_zero(Polynomial([2, -4])) == pytest.approx(2.0)

    def test_zero_at_origin(self):
        p = Polynomial([1, 1, 0])  # z(z+1)
        assert find_one_zero(p) == 0

    def test_finds_a_true_zero(self):
        p = Polynomial.from_roots([1 + 1j, -2, 0.5j])
        z = find_one_zero(p, rng=np.random.default_rng(0))
        assert abs(p(z)) < 1e-8

    def test_explicit_angle_is_deterministic(self):
        p = Polynomial.from_roots([2, 3, -1 - 1j])
        z1 = find_one_zero(p, angle=0.7)
        z2 = find_one_zero(p, angle=0.7)
        assert z1 == z2


class TestFindAll:
    def test_quadratic_closed_form(self):
        report = find_all_zeros(Polynomial([1, 0, -4]))  # z^2 = 4
        _assert_zero_sets_match(report.zeros, [2, -2])

    def test_real_roots(self):
        report = find_all_zeros(Polynomial.from_roots([1, 2, 3, 4, 5]), seed=0)
        assert not report.failed
        _assert_zero_sets_match(report.zeros, [1, 2, 3, 4, 5], atol=1e-5)

    def test_complex_conjugate_roots(self):
        roots = [1 + 2j, 1 - 2j, -0.5, 3j, -3j]
        report = find_all_zeros(Polynomial.from_roots(roots), seed=1)
        assert not report.failed
        _assert_zero_sets_match(report.zeros, roots, atol=1e-6)

    def test_matches_numpy_on_random_polys(self):
        rng = np.random.default_rng(7)
        for trial in range(10):
            deg = int(rng.integers(3, 16))
            coeffs = rng.normal(size=deg + 1) + 1j * rng.normal(size=deg + 1)
            p = Polynomial(coeffs)
            report = find_all_zeros(p, seed=trial)
            assert not report.failed, report.failure_reason
            _assert_zero_sets_match(report.zeros, np.roots(coeffs), atol=1e-6)

    def test_wilkinson_15(self):
        report = find_all_zeros(Polynomial.wilkinson(15), seed=3)
        assert not report.failed
        reals = sorted(z.real for z in report.zeros)
        assert np.allclose(reals, range(1, 16), atol=1e-4)
        assert max(abs(z.imag) for z in report.zeros) < 1e-4

    def test_repeated_root(self):
        report = find_all_zeros(Polynomial.from_roots([2, 2, -1]), seed=0)
        assert not report.failed
        _assert_zero_sets_match(report.zeros, [2, 2, -1], atol=1e-4)

    def test_report_accounting(self):
        report = find_all_zeros(Polynomial.from_roots([1, 2, 3, 4]), seed=0)
        assert report.elapsed_s > 0
        assert report.angle_tries >= 1
        assert report.stage2_iterations > 0

    def test_seed_determinism(self):
        p = Polynomial.from_roots([1j, -1j, 2, -2, 0.5 + 0.1j])
        a = find_all_zeros(p, seed=5)
        b = find_all_zeros(p, seed=5)
        assert a.zeros == b.zeros
        assert a.angle_tries == b.angle_tries

    def test_tight_budget_can_fail(self):
        # the Table I failure mode: starve the iteration budgets and some
        # angle sequences give up (report.failed instead of an exception)
        strict = JTOptions(
            stage1_iterations=1,
            stage2_max_iterations=3,
            stage3_max_iterations=2,
            max_angle_tries=1,
        )
        p = Polynomial.wilkinson(12)
        failures = sum(
            1 for seed in range(10)
            if find_all_zeros(p, options=strict, seed=seed).failed
        )
        assert failures > 0

    def test_published_angle_ladder_without_rng(self):
        # no rng and no seed: the 49° + k*94° ladder must still work
        report = find_all_zeros(Polynomial.from_roots([1, -1, 1j]))
        assert not report.failed
        _assert_zero_sets_match(report.zeros, [1, -1, 1j], atol=1e-6)
