"""Tests for the sorting-alternatives workload."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sorting import (
    ALGORITHMS,
    INPUT_KINDS,
    comparison_counts,
    domain_matrix,
    make_input,
    sorting_polyalgorithm,
)
from repro.errors import SolverError


class TestAlgorithms:
    @pytest.mark.parametrize("name", list(ALGORITHMS))
    def test_sorts_correctly(self, name):
        data = make_input("random", 200, seed=3)
        assert ALGORITHMS[name](data) == sorted(data)

    @pytest.mark.parametrize("name", list(ALGORITHMS))
    def test_empty_and_singleton(self, name):
        assert ALGORITHMS[name]([]) == []
        assert ALGORITHMS[name]([7]) == [7]

    @pytest.mark.parametrize("name", list(ALGORITHMS))
    def test_input_not_mutated(self, name):
        data = [3, 1, 2]
        ALGORITHMS[name](data)
        assert data == [3, 1, 2]

    @pytest.mark.parametrize("kind", INPUT_KINDS)
    @pytest.mark.parametrize("name", list(ALGORITHMS))
    def test_all_input_kinds(self, kind, name):
        data = make_input(kind, 150, seed=1)
        assert ALGORITHMS[name](data) == sorted(data)


class TestCostSurface:
    def test_quicksort_quadratic_on_sorted(self):
        counts_random = comparison_counts(make_input("random", 300))
        counts_sorted = comparison_counts(make_input("sorted", 300))
        assert counts_sorted["quicksort"] > 5 * counts_random["quicksort"]

    def test_insertion_linearish_on_nearly_sorted(self):
        counts = comparison_counts(make_input("nearly-sorted", 300))
        assert counts["insertion"] < counts["mergesort"]
        assert counts["insertion"] < counts["heapsort"]

    def test_quicksort_wins_on_random(self):
        counts = comparison_counts(make_input("random", 500, seed=2))
        assert counts["quicksort"] < counts["insertion"]

    def test_winner_rotates_across_domain(self):
        import numpy as np

        _, names, rows = domain_matrix(n=300)
        winners = {names[int(np.argmin(row))] for row in rows}
        assert len(winners) >= 2  # no single algorithm dominates

    def test_unknown_input_kind_rejected(self):
        with pytest.raises(SolverError):
            make_input("nope", 10)


class TestDomainIntegration:
    def test_scheme_c_beats_scheme_b_on_sorting_domain(self):
        from repro.analysis.domain import DomainAnalysis

        _, _, rows = domain_matrix(n=300)
        domain = DomainAnalysis(rows)
        assert domain.domain_pi() > 1.0
        assert domain.complementarity() > 0.1


class TestPolyalgorithm:
    def test_sequential_first_acceptable_wins(self):
        poly = sorting_polyalgorithm()
        result = poly.run_sequential({"data": [4, 2, 9, 1]})
        assert result.succeeded
        assert result.method == "quicksort"  # first in the pool, correct

    def test_worlds_mode(self):
        poly = sorting_polyalgorithm()
        result = poly.run_worlds({"data": make_input("reversed", 80)},
                                 backend="thread")
        assert result.succeeded


@given(st.lists(st.integers(-50, 50), max_size=60))
@settings(max_examples=150, deadline=None)
def test_all_algorithms_agree(data):
    expected = sorted(data)
    for name, algorithm in ALGORITHMS.items():
        assert algorithm(data) == expected, name


@given(st.lists(st.integers(-9, 9), min_size=2, max_size=40))
@settings(max_examples=100, deadline=None)
def test_stability_of_counts(data):
    """Counting is deterministic: same input, same comparison counts."""
    assert comparison_counts(data) == comparison_counts(data)
