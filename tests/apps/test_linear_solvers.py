"""Tests for the linear-system method pool and its polyalgorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.poly.linear_solvers import (
    conjugate_gradient,
    direct_lu,
    gauss_seidel,
    is_diagonally_dominant,
    is_spd,
    is_symmetric,
    jacobi,
    linear_polyalgorithm,
    residual,
)
from repro.errors import ConvergenceError, SolverError


def _dd_system(n=6, seed=0):
    """A strictly diagonally dominant (and hence solvable) system."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    a += np.diagflat(np.abs(a).sum(axis=1) + 1.0)
    b = rng.normal(size=n)
    return a, b


def _spd_system(n=6, seed=1):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(n, n))
    a = m @ m.T + n * np.eye(n)
    b = rng.normal(size=n)
    return a, b


class TestPredicates:
    def test_diagonal_dominance(self):
        assert is_diagonally_dominant(np.array([[3.0, 1.0], [1.0, 3.0]]))
        assert not is_diagonally_dominant(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_symmetry(self):
        assert is_symmetric(np.eye(3))
        assert not is_symmetric(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_spd(self):
        a, _ = _spd_system()
        assert is_spd(a)
        assert not is_spd(-a)
        assert not is_spd(np.array([[1.0, 2.0], [0.0, 1.0]]))


class TestMethods:
    @pytest.mark.parametrize("solver", [direct_lu, jacobi, gauss_seidel])
    def test_solves_dd_system(self, solver):
        a, b = _dd_system()
        x = solver(a, b)
        assert residual(a, b, x) < 1e-8

    def test_cg_solves_spd(self):
        a, b = _spd_system()
        x = conjugate_gradient(a, b)
        assert residual(a, b, x) < 1e-8

    def test_cg_rejects_non_spd(self):
        # symmetric indefinite with a p·Ap <= 0 breakdown on this rhs
        a = np.array([[1.0, 0.0], [0.0, -1.0]])
        with pytest.raises(ConvergenceError):
            conjugate_gradient(a, np.array([1.0, 1.0]))

    def test_jacobi_diverges_without_dominance(self):
        a = np.array([[1.0, 5.0], [5.0, 1.0]])
        with pytest.raises(ConvergenceError):
            jacobi(a, np.array([1.0, 1.0]), max_iter=200)

    def test_direct_rejects_singular(self):
        with pytest.raises(SolverError):
            direct_lu(np.zeros((2, 2)), np.array([1.0, 2.0]))

    def test_shape_validation(self):
        with pytest.raises(SolverError):
            direct_lu(np.ones((2, 3)), np.ones(2))
        with pytest.raises(SolverError):
            direct_lu(np.eye(2), np.ones(3))

    def test_zero_diagonal_rejected(self):
        a = np.array([[0.0, 1.0], [1.0, 1.0]])
        with pytest.raises(SolverError):
            jacobi(a, np.ones(2))
        with pytest.raises(SolverError):
            gauss_seidel(a, np.ones(2))


class TestPolyalgorithm:
    def test_sequential_on_spd_uses_cg(self):
        a, b = _spd_system()
        result = linear_polyalgorithm().run_sequential({"A": a, "b": b})
        assert result.method == "conjugate_gradient"
        assert residual(a, b, np.asarray(result.value)) < 1e-8

    def test_sequential_on_general_falls_to_direct(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(5, 5))  # not symmetric, not dominant
        b = rng.normal(size=5)
        result = linear_polyalgorithm().run_sequential({"A": a, "b": b})
        assert result.method == "direct_lu"
        assert residual(a, b, np.asarray(result.value)) < 1e-8

    def test_worlds_mode_solves(self):
        a, b = _dd_system()
        result = linear_polyalgorithm().run_worlds(
            {"A": a.tolist(), "b": b.tolist()}, backend="thread"
        )
        assert result.succeeded
        assert residual(a, b, np.asarray(result.value)) < 1e-8

    def test_misleading_structure_still_solved(self):
        # symmetric (so CG applies/attempts) but indefinite, with a rhs
        # that breaks CG; not diagonally dominant, so the ordering falls
        # through to the direct method
        a = np.array([[1.0, 4.0], [4.0, 1.0]])
        b = np.array([1.0, 0.0])
        result = linear_polyalgorithm().run_sequential({"A": a, "b": b})
        assert result.succeeded
        assert result.method == "direct_lu"
        assert "conjugate_gradient" in result.attempts


sizes = st.integers(min_value=2, max_value=8)


@given(sizes, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_iterative_methods_agree_with_direct(n, seed):
    a, b = _dd_system(n, seed)
    x_direct = direct_lu(a, b)
    x_jacobi = jacobi(a, b)
    x_gs = gauss_seidel(a, b)
    assert np.allclose(x_jacobi, x_direct, atol=1e-6)
    assert np.allclose(x_gs, x_direct, atol=1e-6)


@given(sizes, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_cg_agrees_with_direct_on_spd(n, seed):
    a, b = _spd_system(n, seed)
    assert np.allclose(conjugate_gradient(a, b), direct_lu(a, b), atol=1e-6)
