"""Cross-subsystem scenarios: the library working as one system.

These integration tests exercise multiple packages in one story —
speculative transactions over sink devices, a recovery block whose
alternates message an auditor, OR-parallel Prolog committing real state,
and the distributed pipeline (checkpoint → link → restart → migrate).
"""

import pytest

from repro.apps.prolog import Database, ORParallelEngine
from repro.apps.recovery import RecoveryBlock
from repro.core import Alternative, EliminationPolicy
from repro.devices.backing_store import BackingStoreDevice
from repro.kernel import Kernel, TIMEOUT


class TestSpeculativeTransactions:
    """Alternatives as competing transactions against one database page
    (the paper's transaction analogy, section 2.1 + section 5)."""

    def test_competing_writers_one_commit(self):
        kernel = Kernel(cpus=4)
        disk = BackingStoreDevice("db", size=256)
        disk.write(b"balance=100", offset=0)
        kernel.add_device(disk)

        def parent(ctx):
            def txn_fast(c):
                current = yield c.device_read("db", 11, 0)
                assert current == b"balance=100"
                yield c.device_write("db", b"balance=150", 0)
                yield c.compute(0.1)
                return "fast-txn"

            def txn_slow(c):
                yield c.device_write("db", b"balance=999", 0)
                yield c.compute(5.0)
                return "slow-txn"

            out = yield from ctx.run_alternatives([txn_fast, txn_slow])
            return out.value

        pid = kernel.spawn(parent)
        kernel.run()
        assert kernel.result_of(pid) == "fast-txn"
        # exactly one transaction's effect is visible; no partial mixes
        assert disk.read(11) == b"balance=150"
        assert disk.discarded_writes == 1

    def test_failed_block_leaves_database_untouched(self):
        kernel = Kernel(cpus=4)
        disk = BackingStoreDevice("db", size=64)
        disk.write(b"original", offset=0)
        kernel.add_device(disk)

        def parent(ctx):
            def doomed(c):
                yield c.device_write("db", b"SCRIBBLE", 0)
                yield c.abort("changed my mind")

            out = yield from ctx.run_alternatives([doomed])
            return out.failed

        pid = kernel.spawn(parent)
        kernel.run()
        assert kernel.result_of(pid) is True
        assert disk.read(8) == b"original"


class TestRecoveryWithAudit:
    """A recovery block whose spares report to an auditor process: the
    auditor's world splits per speculative report and only the winning
    spare's report survives to the log."""

    def test_only_winning_spare_is_audited(self):
        kernel = Kernel(cpus=6)

        def auditor(ctx):
            msg = yield ctx.recv(timeout=30.0)
            if msg is TIMEOUT:
                return "nothing-to-audit"
            yield ctx.device_write("tty", f"audit: {msg.data}\n".encode())
            return msg.data

        auditor_pid = kernel.spawn(auditor, name="auditor")

        def parent(ctx):
            def primary(c):
                yield c.compute(0.1)
                yield c.send(auditor_pid, "primary computed 42")
                yield c.compute(0.1)
                yield c.put("answer", 42)
                return "primary"

            def spare(c):
                yield c.compute(5.0)
                yield c.send(auditor_pid, "spare computed 41")
                yield c.put("answer", 41)
                return "spare"

            out = yield from ctx.run_alternatives([primary, spare])
            snap = yield ctx.snapshot()
            return (out.value, snap["answer"])

        pid = kernel.spawn(parent, name="block")
        kernel.run()
        assert kernel.result_of(pid) == ("primary", 42)
        assert kernel.result_of(auditor_pid) == "primary computed 42"
        assert kernel.device("tty").text == "audit: primary computed 42\n"


class TestPrologToState:
    """OR-parallel Prolog driving real committed state on the kernel."""

    def test_first_proof_commits_bindings_to_heap(self):
        db = Database.from_source(
            """
            slow(0).
            slow(N) :- N > 0, M is N - 1, slow(M).
            pick(expensive) :- slow(300).
            pick(cheap).
            """
        )
        engine = ORParallelEngine(db)
        solution, outcome = engine.solve_first_sim("pick(X)", per_inference_s=1e-3)
        # cheap's branch wins the race even though expensive also succeeds
        assert str(solution["X"]) == "cheap"
        assert outcome.extras["state"]["bindings"] == solution.bindings


class TestDistributedPipeline:
    """Checkpoint a worker, ship it, restart it, keep talking to it."""

    def test_checkpoint_ship_restart_migrate(self):
        from repro.analysis.calibration import NetworkProfile
        from repro.distrib.migration import migrate_process
        from repro.distrib.netsim import SimulatedLink

        node_a, node_b = Kernel(cpus=2), Kernel(cpus=2)
        link = SimulatedLink(NetworkProfile("lan", 0.005, 10e6))

        def accumulator(ctx):
            total = 0
            while True:
                msg = yield ctx.recv()
                if msg.data == "report":
                    return total
                total += msg.data
                yield ctx.put("total", total)

        pid = node_a.spawn(accumulator, name="acc")

        def feeder_a(ctx, target):
            for value in (10, 20):
                yield ctx.send(target, value)

        node_a.spawn(feeder_a, pid)
        node_a.run(until=5.0)

        record = migrate_process(node_a, pid, node_b, link)
        assert record.transfer_s > 0
        # the wire carried the image plus the target's fixed-size ack
        from repro.distrib.migration import _ACK_BYTES

        assert link.bytes_moved == record.image_bytes + _ACK_BYTES

        def feeder_b(ctx, target):
            yield ctx.send(target, 12)
            yield ctx.send(target, "report")

        node_b.spawn(feeder_b, record.dst_pid)
        node_b.run()
        assert node_b.result_of(record.dst_pid) == 42


class TestRecoveryAcrossBackends:
    """The same recovery block gives equivalent answers everywhere."""

    @pytest.mark.parametrize("backend", ["sim", "thread", "fork"])
    def test_backend_equivalence(self, backend):
        import os

        if backend == "fork" and not hasattr(os, "fork"):
            pytest.skip("needs fork")

        def good(ws):
            ws["x"] = sum(ws["input"])
            return "good"

        def bad(ws):
            ws["x"] = -1
            return "bad"

        block = RecoveryBlock(lambda ws, v: ws["x"] > 0, bad, good)
        kwargs = {"sim_costs": [0.1, 0.2]} if backend == "sim" else {}
        result = block.run_parallel({"input": [1, 2, 3]}, backend=backend, **kwargs)
        assert result.alternate == "good"
        assert result.state["x"] == 6


class TestElimCascadeStress:
    """Deep nesting + cross-block messaging resolves without leaks."""

    def test_three_level_nesting_with_messages(self):
        kernel = Kernel(cpus=8, trace=True)

        def observer(ctx):
            seen = []
            while True:
                msg = yield ctx.recv(timeout=20.0)
                if msg is TIMEOUT:
                    return seen
                seen.append(msg.data)

        obs = kernel.spawn(observer, name="observer")

        def parent(ctx):
            def outer_a(c):
                def inner_fast(cc):
                    yield cc.compute(0.1)
                    yield cc.send(obs, "inner-fast")
                    yield cc.compute(0.1)
                    return "if"

                def inner_slow(cc):
                    yield cc.compute(9.0)
                    return "is"

                out = yield from c.run_alternatives([inner_fast, inner_slow])
                yield c.compute(0.1)
                return f"A:{out.value}"

            def outer_b(c):
                yield c.compute(10.0)
                return "B"

            out = yield from ctx.run_alternatives(
                [outer_a, outer_b], elimination=EliminationPolicy.SYNCHRONOUS
            )
            return out.value

        pid = kernel.spawn(parent, name="parent")
        kernel.run()
        assert kernel.result_of(pid) == "A:if"
        # the observer's surviving world saw the inner winner's message
        assert kernel.result_of(obs) == ["inner-fast"]
        # memory hygiene: only completed worlds' heaps remain
        for world in kernel.worlds.values():
            if world.state.name in ("ABORTED", "KILLED"):
                assert world.heap.space.table.released
