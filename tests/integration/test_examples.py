"""Every shipped example must run to completion as a script."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples should narrate what they show"


def test_quickstart_output_shape():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = proc.stdout
    assert "winner     : quicksortish" in out
    assert "[1, 2, 3, 5, 8, 9]" in out
    assert "fork backend" in out
