"""Documentation fidelity: the README's code and the public API exist."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"


def test_readme_quickstart_executes():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README should contain a python quickstart"
    namespace: dict = {}
    exec(blocks[0], namespace)  # noqa: S102 - executing our own docs


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.core",
        "repro.kernel",
        "repro.memory",
        "repro.ipc",
        "repro.devices",
        "repro.runtime",
        "repro.distrib",
        "repro.analysis",
    ],
)
def test_module_all_exports_resolve(module_name):
    import importlib

    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{module_name} should declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_design_and_experiments_reference_real_benches():
    root = pathlib.Path(__file__).resolve().parents[2]
    bench_names = {p.stem for p in (root / "benchmarks").glob("bench_*.py")}
    for doc in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
        text = (root / doc).read_text()
        for referenced in re.findall(r"bench_[a-z0-9_]+", text):
            assert referenced in bench_names, f"{doc} references {referenced}"
