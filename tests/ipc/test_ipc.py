"""Unit tests for messages, mailboxes and the receive-rule router."""

import pytest

from repro.core.predicates import MessageDecision, PredicateSet
from repro.ipc.mailbox import Mailbox
from repro.ipc.message import Message
from repro.ipc.router import decide_receive


def P(must=(), cant=()):
    return PredicateSet.of(must, cant)


def msg(sender=1, dest=2, data="x", pred=None, msg_id=1):
    return Message(sender, dest, data, pred or P(), msg_id=msg_id)


class TestMessage:
    def test_size_estimate_positive(self):
        assert msg(data={"k": list(range(100))}).size_bytes() > 50

    def test_unpicklable_payload_gets_nominal_size(self):
        assert msg(data=lambda: None).size_bytes() == 64

    def test_resolve_survivor_rewrites_predicate(self):
        m = msg(pred=P([5], [6]))
        m2 = m.resolve(5, True)
        assert m2 is not None
        assert m2.predicate == P([], [6])
        assert m2.data == m.data and m2.msg_id == m.msg_id

    def test_resolve_contradiction_drops(self):
        assert msg(pred=P([5])).resolve(5, False) is None

    def test_resolve_unrelated_is_same_object(self):
        m = msg(pred=P([5]))
        assert m.resolve(9, True) is m


class TestMailbox:
    def test_fifo_order(self):
        box = Mailbox(2)
        for i in range(3):
            box.deliver(msg(msg_id=i))
        assert [box.pop().msg_id for _ in range(3)] == [0, 1, 2]

    def test_wrong_destination_rejected(self):
        box = Mailbox(2)
        with pytest.raises(ValueError):
            box.deliver(msg(dest=3))

    def test_peek_does_not_remove(self):
        box = Mailbox(2)
        box.deliver(msg())
        assert box.peek() is box.peek()
        assert len(box) == 1

    def test_resolve_drops_contradicted_keeps_order(self):
        box = Mailbox(2)
        box.deliver(msg(pred=P([5]), msg_id=1))
        box.deliver(msg(pred=P(), msg_id=2))
        box.deliver(msg(pred=P(cant=[5]), msg_id=3))
        dropped = box.resolve(5, False)
        assert [m.msg_id for m in dropped] == [1]
        assert [m.msg_id for m in box] == [2, 3]
        # survivor with cant={5} got its predicate cleared
        assert box.peek().predicate == P()
        assert list(box)[1].predicate == P()

    def test_clone_retargets_owner(self):
        box = Mailbox(2)
        box.deliver(msg(msg_id=7))
        copy = box.clone(2)
        assert copy.pop().msg_id == 7
        assert len(box) == 1  # original untouched

    def test_drain_with_filter(self):
        box = Mailbox(2)
        box.deliver(msg(sender=1, msg_id=1))
        box.deliver(msg(sender=9, msg_id=2))
        out = box.drain(lambda m: m.sender == 9)
        assert [m.msg_id for m in out] == [2]
        assert len(box) == 1


class TestRouter:
    def test_empty_sender_accepts(self):
        action = decide_receive(msg(pred=P()), P([1], [2]))
        assert action.decision is MessageDecision.ACCEPT

    def test_conflicting_ignores(self):
        action = decide_receive(msg(pred=P([5])), P(cant=[5]))
        assert action.decision is MessageDecision.IGNORE

    def test_sender_in_receiver_cant_ignores_even_with_empty_predicate(self):
        action = decide_receive(msg(sender=5, pred=P()), P(cant=[5]))
        assert action.decision is MessageDecision.IGNORE

    def test_extension_splits_with_both_worlds(self):
        action = decide_receive(msg(sender=5, pred=P([5], [6])), P())
        assert action.decision is MessageDecision.SPLIT
        assert action.accepting.must == frozenset({5})
        assert action.accepting.cant == frozenset({6})
        assert action.rejecting.cant == frozenset({5})

    def test_split_with_believing_receiver_has_no_rejecting_world(self):
        action = decide_receive(msg(sender=5, pred=P([5, 7])), P([5]))
        assert action.decision is MessageDecision.SPLIT
        assert action.rejecting is None
        assert 7 in action.accepting.must
