"""Property-based tests for the predicate algebra invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import (
    MessageDecision,
    PredicateSet,
    classify_message,
    split_predicates,
)

pids = st.integers(min_value=1, max_value=20)


@st.composite
def predicate_sets(draw):
    must = draw(st.frozensets(pids, max_size=6))
    cant = draw(st.frozensets(pids, max_size=6))
    return PredicateSet(must, cant - must)


@given(predicate_sets(), predicate_sets())
@settings(max_examples=300, deadline=None)
def test_classification_is_exhaustive_and_exclusive(s, r):
    """Exactly one of accept/ignore/split applies to any (S, R) pair."""
    decision = classify_message(s, r)
    agree = s.is_subset_of(r)
    conflict = s.conflicts_with(r)
    if agree:
        assert decision is MessageDecision.ACCEPT
    elif conflict:
        assert decision is MessageDecision.IGNORE
    else:
        assert decision is MessageDecision.SPLIT


@given(predicate_sets(), predicate_sets(), pids)
@settings(max_examples=300, deadline=None)
def test_split_worlds_are_consistent_and_disagree_on_sender(s, r, sender):
    """Both split copies are internally consistent; they differ exactly on
    complete(sender); the accepting copy implies all of S."""
    if classify_message(s, r) is not MessageDecision.SPLIT:
        return
    if sender in r.cant or sender in s.cant:
        return  # router ignores these before splitting
    accepting, rejecting = split_predicates(s, sender, r)
    # consistency is enforced by the constructor; reaching here means both
    # copies were constructible
    assert sender in accepting.must
    assert s.is_subset_of(accepting)
    assert r.is_subset_of(accepting)
    if rejecting is not None:
        assert sender in rejecting.cant
        assert r.is_subset_of(rejecting)
        assert accepting.conflicts_with(rejecting)


@given(predicate_sets(), pids, st.booleans())
@settings(max_examples=300, deadline=None)
def test_resolution_shrinks_or_kills(p, pid, completed):
    """resolve() never grows a predicate set and removes the resolved pid."""
    result = p.resolve(pid, completed)
    if result is None:
        # the fact contradicted an assumption
        assert (completed and pid in p.cant) or (not completed and pid in p.must)
        return
    assert result.must <= p.must
    assert result.cant <= p.cant
    assert pid not in result.must or completed is not True
    if completed:
        assert pid not in result.must
    else:
        assert pid not in result.cant


@given(predicate_sets(), st.lists(st.tuples(pids, st.booleans()), max_size=15))
@settings(max_examples=200, deadline=None)
def test_repeated_resolution_reaches_fixpoint(p, facts):
    """Applying each fact at most once per pid terminates consistently."""
    seen = {}
    current = p
    for pid, completed in facts:
        if pid in seen:
            continue
        seen[pid] = completed
        current = current.resolve(pid, completed)
        if current is None:
            return
    # every surviving assumption refers to an unresolved pid
    for pid in current.must | current.cant:
        assert pid not in seen


@given(predicate_sets(), predicate_sets())
@settings(max_examples=200, deadline=None)
def test_union_commutes(a, b):
    if a.conflicts_with(b):
        return
    assert a.union(b) == b.union(a)
