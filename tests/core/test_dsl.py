"""Tests for the decorator-based block builder."""

import pytest

from repro.core.dsl import WorldsBlock, worlds_block
from repro.errors import WorldsError


def test_bare_decorator_registers():
    block = worlds_block()

    @block.alternative
    def only(ws):
        return 1

    assert len(block) == 1
    assert block.alternatives[0].name == "only"
    assert only({}) == 1  # still a plain function


def test_parameterized_decorator():
    block = worlds_block()

    @block.alternative(cost=2.0, name="custom")
    def method(ws):
        return "x"

    alt = block.alternatives[0]
    assert alt.name == "custom"
    assert alt.cost_for({}) == 2.0


def test_run_empty_block_rejected():
    with pytest.raises(WorldsError):
        worlds_block().run()


def test_end_to_end_sim_run():
    block = worlds_block(name="sorting", timeout=10.0)

    @block.alternative(cost=1.0, guard=lambda ws, v: ws["data"] == sorted(ws["data"]))
    def fast_sort(ws):
        ws["data"] = sorted(ws["data"])
        return "fast"

    @block.alternative(cost=0.2, guard=lambda ws, v: ws["data"] == sorted(ws["data"]))
    def wrong_sort(ws):
        ws["data"] = list(reversed(ws["data"]))
        return "wrong"

    outcome = block.run(initial={"data": [3, 1, 2]}, backend="sim")
    assert outcome.value == "fast"
    assert outcome.extras["state"]["data"] == [1, 2, 3]


def test_applies_gate():
    block = worlds_block()

    @block.alternative(applies=lambda ws: ws.get("enabled", False), cost=0.1)
    def gated(ws):
        return "gated"

    @block.alternative(cost=1.0)
    def fallback(ws):
        return "fallback"

    outcome = block.run(initial={"enabled": False}, backend="sim")
    assert outcome.value == "fallback"
    outcome = block.run(initial={"enabled": True}, backend="sim")
    assert outcome.value == "gated"


def test_block_reusable_across_runs():
    block = worlds_block()

    @block.alternative(cost=0.5)
    def work(ws):
        ws["n"] = ws["n"] + 1
        return ws["n"]

    assert block.run(initial={"n": 0}).value == 1
    assert block.run(initial={"n": 10}).value == 11


def test_worlds_block_factory_settings():
    from repro.core.policy import EliminationPolicy

    block = worlds_block(
        name="b", timeout=3.0, elimination=EliminationPolicy.SYNCHRONOUS
    )
    assert isinstance(block, WorldsBlock)
    assert block.timeout == 3.0
    assert block.elimination is EliminationPolicy.SYNCHRONOUS
