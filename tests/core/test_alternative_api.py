"""Tests for the Alternative / Guard / AltBlock / policy API surface."""

import pytest

from repro.core.alternative import AltBlock, Alternative, Guard, GuardPlacement
from repro.core.outcome import FAILURE, AlternativeResult, BlockOutcome
from repro.core.policy import EliminationPolicy, TimeoutPolicy
from repro.errors import WorldsError


class TestGuard:
    def test_always_passes(self):
        g = Guard.always()
        assert g.passes_entry({"anything": 1})
        assert g.passes_result({}, None)

    def test_check_and_accept(self):
        g = Guard(check=lambda s: s["go"], accept=lambda s, v: v > 0)
        assert g.passes_entry({"go": True})
        assert not g.passes_entry({"go": False})
        assert g.passes_result({}, 5)
        assert not g.passes_result({}, -1)

    def test_placement_flags_combine(self):
        placement = GuardPlacement.IN_CHILD | GuardPlacement.AT_SYNC
        assert placement & GuardPlacement.IN_CHILD
        assert placement & GuardPlacement.AT_SYNC
        assert not placement & GuardPlacement.BEFORE_SPAWN


class TestAlternative:
    def test_name_defaults_to_fn_name(self):
        def my_method(ws):
            return 1

        assert Alternative(my_method).name == "my_method"

    def test_non_callable_rejected(self):
        with pytest.raises(WorldsError):
            Alternative("not callable")  # type: ignore[arg-type]

    def test_cost_for_scalar_and_callable(self):
        assert Alternative(lambda ws: 0, sim_cost=2.5).cost_for({}) == 2.5
        dynamic = Alternative(lambda ws: 0, sim_cost=lambda s: s["n"] * 2.0)
        assert dynamic.cost_for({"n": 3}) == 6.0
        assert Alternative(lambda ws: 0).cost_for({}) == 0.0


class TestAltBlock:
    def test_of_builds_from_callables(self):
        block = AltBlock.of(lambda ws: 1, lambda ws: 2, timeout=5.0)
        assert len(block) == 2
        assert block.timeout == 5.0
        assert all(isinstance(a, Alternative) for a in block)

    def test_empty_rejected(self):
        with pytest.raises(WorldsError):
            AltBlock([])

    def test_bad_timeout_rejected(self):
        with pytest.raises(WorldsError):
            AltBlock.of(lambda ws: 1, timeout=0)


class TestOutcome:
    def test_failure_sentinel_is_falsy_singleton(self):
        from repro.core.outcome import _Failure

        assert not FAILURE
        assert _Failure() is FAILURE
        assert repr(FAILURE) == "FAILURE"

    def test_block_outcome_value_routing(self):
        winner = AlternativeResult(index=0, name="w", value=42, succeeded=True)
        ok = BlockOutcome(winner=winner, elapsed_s=1.0)
        assert ok.value == 42
        assert not ok.failed
        failed = BlockOutcome(winner=None, elapsed_s=1.0)
        assert failed.failed
        assert failed.value is FAILURE


class TestPolicies:
    def test_elimination_policy_blocking(self):
        assert EliminationPolicy.SYNCHRONOUS.blocks_parent
        assert not EliminationPolicy.ASYNCHRONOUS.blocks_parent

    def test_timeout_policy(self):
        p = TimeoutPolicy(timeout_s=2.0)
        assert not p.expired(1.0)
        assert p.expired(2.0)
        assert not TimeoutPolicy(None).expired(1e9)
