"""Tests for the Scheme A/B/C selectors."""

import math

import pytest

from repro.core.schemes import (
    scheme_a,
    scheme_b,
    scheme_b_expectation,
    scheme_c_expectation,
    scheme_comparison,
)
from repro.util.rng import ReplayableRNG


class TestSchemeA:
    def test_picks_lowest_historical_mean(self):
        history = [[2.0, 1.0, 5.0], [2.0, 1.5, 4.0]]
        assert scheme_a(history) == 1

    def test_empty_history_arbitrary(self):
        assert scheme_a([]) == 0

    def test_failed_runs_as_inf(self):
        history = [[1.0, math.inf], [1.0, math.inf]]
        assert scheme_a(history) == 0

    def test_all_failed(self):
        assert scheme_a([[math.inf, math.inf]]) == 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            scheme_a([[[1.0]]])


class TestSchemeB:
    def test_range(self):
        rng = ReplayableRNG(0)
        picks = [scheme_b(3, rng) for _ in range(100)]
        assert set(picks) == {0, 1, 2}

    def test_deterministic_per_seed(self):
        a = [scheme_b(5, ReplayableRNG(7)) for _ in range(1)]
        b = [scheme_b(5, ReplayableRNG(7)) for _ in range(1)]
        assert a == b

    def test_zero_alternatives_rejected(self):
        with pytest.raises(ValueError):
            scheme_b(0, ReplayableRNG(0))

    def test_expectation_is_mean(self):
        assert scheme_b_expectation([1.0, 3.0]) == 2.0

    def test_expectation_frustrated_by_divergence(self):
        assert math.isinf(scheme_b_expectation([1.0, math.inf]))


class TestSchemeC:
    def test_expectation_is_best_plus_overhead(self):
        assert scheme_c_expectation([3.0, 1.0, 2.0], 0.25) == 1.25

    def test_divergent_alternatives_ignored(self):
        assert scheme_c_expectation([math.inf, 2.0], 0.0) == 2.0

    def test_all_divergent_is_infinite(self):
        assert math.isinf(scheme_c_expectation([math.inf, math.inf]))


def test_scheme_comparison_bundle():
    out = scheme_comparison([2.0, 4.0], overhead=0.5, history=[[9.0, 1.0]])
    assert out["scheme_a"] == 4.0  # history liked algorithm 1
    assert out["scheme_b"] == 3.0
    assert out["scheme_c"] == 2.5
