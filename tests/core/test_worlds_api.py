"""Tests for the run_alternatives entry point and backend dispatch."""

import pytest

from repro.core.outcome import FAILURE
from repro.core.worlds import first_of, run_alternatives, run_alternatives_sim
from repro.errors import WorldsError


def fast(ws):
    ws["who"] = "fast"
    return "fast"


def slow(ws):
    ws["who"] = "slow"
    return "slow"


class TestDispatch:
    def test_unknown_backend_rejected(self):
        with pytest.raises(WorldsError):
            run_alternatives([fast], backend="quantum")

    def test_unknown_backend_message_lists_valid_ones(self):
        with pytest.raises(WorldsError) as exc:
            run_alternatives([fast], backend="quantum")
        message = str(exc.value)
        assert "'quantum'" in message
        for name in ("'sim'", "'fork'", "'thread'", "'sequential'"):
            assert name in message

    def test_backend_validated_before_any_side_effect(self):
        # the bad-backend error must fire up front, before the call
        # wires fault plans into observability or touches a backend
        from repro.faults.plan import FaultPlan
        from repro.obs import Observability

        obs = Observability()
        plan = FaultPlan.quiet()
        with pytest.raises(WorldsError, match="valid backends"):
            run_alternatives(
                [fast], backend="quantum", fault_plan=plan, obs=obs
            )
        assert plan.observer is None  # watch_fault_plan never ran

    def test_empty_alternatives_rejected(self):
        with pytest.raises(WorldsError):
            run_alternatives([], backend="sim")

    def test_non_callable_rejected(self):
        with pytest.raises(WorldsError):
            run_alternatives([42], backend="sim")

    def test_sim_default_backend(self):
        outcome = run_alternatives([fast])
        assert outcome.value == "fast"

    def test_first_of_convenience(self):
        outcome = first_of(fast, slow)
        assert outcome.value in ("fast", "slow")
        assert not outcome.failed


class TestSimEntry:
    def test_returns_kernel_for_inspection(self):
        outcome, kernel = run_alternatives_sim([fast], initial={"who": None})
        assert outcome.value == "fast"
        assert kernel.now > 0
        assert kernel.stats.forks >= 1

    def test_final_state_exposed(self):
        outcome, _ = run_alternatives_sim([fast], initial={"who": None, "keep": 7})
        state = outcome.extras["state"]
        assert state == {"who": "fast", "keep": 7}

    def test_elapsed_includes_overheads(self):
        from repro.core.alternative import Alternative

        outcome, _ = run_alternatives_sim([Alternative(fast, sim_cost=1.0)])
        assert outcome.elapsed_s > 1.0
        assert outcome.overhead.total_s > 0

    def test_failure_value_is_sentinel(self):
        def bad(ws):
            raise RuntimeError("no")

        outcome, _ = run_alternatives_sim([bad])
        assert outcome.failed
        assert outcome.value is FAILURE

    def test_seed_controls_kernel_rng(self):
        def draw(ctx):
            value = yield ctx.uniform()
            return value

        a, _ = run_alternatives_sim([draw], seed=1)
        b, _ = run_alternatives_sim([draw], seed=1)
        c, _ = run_alternatives_sim([draw], seed=2)
        assert a.value == b.value
        assert a.value != c.value

    def test_trace_flag(self):
        _, kernel = run_alternatives_sim([fast], trace=True)
        assert len(kernel.trace) > 0
        assert kernel.trace.of_kind("commit")


class TestBackendEquivalence:
    """The same block gives the same committed semantics on every backend."""

    @pytest.mark.parametrize("backend", ["sim", "thread", "fork"])
    def test_winner_state_consistency(self, backend):
        import os

        if backend == "fork" and not hasattr(os, "fork"):
            pytest.skip("needs fork")

        def correct(ws):
            ws["out"] = sorted(ws["data"])
            return "ok"

        outcome = run_alternatives(
            [correct], initial={"data": [3, 1, 2]}, backend=backend
        )
        assert outcome.value == "ok"
        assert outcome.extras["state"]["out"] == [1, 2, 3]

    @pytest.mark.parametrize("backend", ["sim", "thread", "fork"])
    def test_all_fail_consistency(self, backend):
        import os

        if backend == "fork" and not hasattr(os, "fork"):
            pytest.skip("needs fork")

        def bad(ws):
            raise ValueError("broken")

        outcome = run_alternatives([bad, bad], backend=backend)
        assert outcome.failed
        assert len(outcome.losers) == 2
