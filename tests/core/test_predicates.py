"""Unit tests for predicate sets and the receive-rule classification."""

import pytest

from repro.core.predicates import (
    MessageDecision,
    PredicateSet,
    classify_message,
    split_predicates,
)
from repro.errors import PredicateError


def P(must=(), cant=()):
    return PredicateSet.of(must, cant)


class TestConstruction:
    def test_empty_is_resolved(self):
        assert not PredicateSet.empty().unresolved

    def test_inconsistent_construction_rejected(self):
        with pytest.raises(PredicateError):
            P(must=[1], cant=[1])

    def test_frozen_and_hashable(self):
        a = P([1], [2])
        b = P([1], [2])
        assert a == b
        assert hash(a) == hash(b)


class TestDerivation:
    def test_assume_complete(self):
        p = P().assume_complete(5)
        assert 5 in p.must
        assert p.unresolved

    def test_assume_complete_conflicts(self):
        with pytest.raises(PredicateError):
            P(cant=[5]).assume_complete(5)

    def test_assume_incomplete_conflicts(self):
        with pytest.raises(PredicateError):
            P(must=[5]).assume_incomplete(5)

    def test_union(self):
        u = P([1], [2]).union(P([3], [4]))
        assert u == P([1, 3], [2, 4])

    def test_union_conflict_rejected(self):
        with pytest.raises(PredicateError):
            P([1]).union(P(cant=[1]))

    def test_child_predicates_sibling_rivalry(self):
        parent = P([9])
        child = parent.child_predicates(2, [1, 2, 3])
        assert child.must == frozenset({9, 2})
        assert child.cant == frozenset({1, 3})

    def test_failure_predicates(self):
        f = P().failure_predicates([1, 2, 3])
        assert f.cant == frozenset({1, 2, 3})
        assert not f.must


class TestResolution:
    def test_resolve_must_true_shrinks(self):
        p = P([1, 2])
        r = p.resolve(1, True)
        assert r == P([2])

    def test_resolve_must_false_kills(self):
        assert P([1]).resolve(1, False) is None

    def test_resolve_cant_true_kills(self):
        assert P(cant=[1]).resolve(1, True) is None

    def test_resolve_cant_false_shrinks(self):
        assert P(cant=[1, 2]).resolve(1, False) == P(cant=[2])

    def test_resolve_unrelated_is_identity(self):
        p = P([1], [2])
        assert p.resolve(99, True) is p

    def test_full_resolution_reaches_empty(self):
        p = P([1], [2])
        p = p.resolve(1, True)
        p = p.resolve(2, False)
        assert p == PredicateSet.empty()
        assert not p.unresolved


class TestClassification:
    def test_empty_sender_always_accepts(self):
        assert classify_message(P(), P([1], [2])) is MessageDecision.ACCEPT

    def test_subset_accepts(self):
        assert classify_message(P([1]), P([1, 2])) is MessageDecision.ACCEPT

    def test_conflict_must_vs_cant_ignores(self):
        assert classify_message(P([1]), P(cant=[1])) is MessageDecision.IGNORE

    def test_conflict_cant_vs_must_ignores(self):
        assert classify_message(P(cant=[1]), P([1])) is MessageDecision.IGNORE

    def test_extension_splits(self):
        assert classify_message(P([3]), P([1])) is MessageDecision.SPLIT

    def test_partial_overlap_with_extension_splits(self):
        assert classify_message(P([1, 3]), P([1])) is MessageDecision.SPLIT


class TestSplitPredicates:
    def test_split_shapes(self):
        sender = P([7], [8])
        receiver = P([1])
        accepting, rejecting = split_predicates(sender, 42, receiver)
        assert accepting.must == frozenset({1, 7, 42})
        assert accepting.cant == frozenset({8})
        assert rejecting.must == frozenset({1})
        assert rejecting.cant == frozenset({42})

    def test_rejecting_none_when_receiver_already_believes_sender(self):
        sender = P([7, 42])
        receiver = P([42])
        accepting, rejecting = split_predicates(sender, 42, receiver)
        assert rejecting is None
        assert 7 in accepting.must

    def test_rejection_negates_only_the_sender(self):
        # negating every element of S could demand two mutually exclusive
        # processes complete; the paper negates complete(sender) only.
        sender = P([7], [8])
        _, rejecting = split_predicates(sender, 42, P())
        assert rejecting.cant == frozenset({42})
        assert 7 not in rejecting.cant
        assert 8 not in rejecting.must
