"""Property: every backend agrees on a deterministic block's outcome.

The paper's section 3.3 contract — the observable result is one some
sequential execution of a single alternative could have produced — means
that when a block's winner is *forced* (at most one alternative can
succeed), the sim, thread and sequential backends must all commit the
same winner with the same value, and must all fail when nothing can
succeed. Alternative sets are generated with exactly one (or zero)
succeeding member so the race has only one legal outcome; the rest fail
via a raised error or a rejecting guard.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alternative import Alternative, Guard
from repro.core.worlds import run_alternatives

BACKENDS = ("sim", "thread", "sequential")


def make_alt(index, succeeds, value, mode):
    """One deterministic alternative; failures via ``mode``."""
    if succeeds:
        def body(ws, _v=value):
            ws["out"] = _v
            return _v
        guard = Guard.always()
    elif mode == "raise":
        def body(ws, _i=index):
            raise ValueError(f"alt {_i} broken")
        guard = Guard.always()
    else:  # a body that runs but a guard that rejects its result
        def body(ws, _v=value):
            return _v
        guard = Guard(name="reject", accept=lambda state, result: False)
    return Alternative(
        body, guard=guard, name=f"alt{index}",
        sim_cost=0.001 * (index + 1),  # deterministic virtual-time cost
    )


@st.composite
def forced_blocks(draw):
    """A block whose winner is forced: at most one alternative succeeds."""
    n = draw(st.integers(min_value=1, max_value=5))
    winner_idx = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1)))
    modes = draw(st.lists(
        st.sampled_from(["raise", "guard"]), min_size=n, max_size=n,
    ))
    values = draw(st.lists(
        st.one_of(st.integers(-100, 100), st.text(max_size=5)),
        min_size=n, max_size=n,
    ))
    alts = [
        make_alt(i, succeeds=(i == winner_idx), value=values[i], mode=modes[i])
        for i in range(n)
    ]
    return alts, winner_idx, values


@given(forced_blocks())
@settings(max_examples=40, deadline=None)
def test_backends_agree_on_forced_winner(block):
    alts, winner_idx, values = block
    outcomes = {b: run_alternatives(alts, backend=b) for b in BACKENDS}
    if winner_idx is None:
        for backend, outcome in outcomes.items():
            assert outcome.failed, f"{backend} committed with no viable alternative"
            assert outcome.winner is None
    else:
        for backend, outcome in outcomes.items():
            assert outcome.winner is not None, f"{backend} failed a winnable block"
            assert outcome.winner.name == f"alt{winner_idx}", backend
            assert outcome.value == values[winner_idx], backend


@given(st.integers(-100, 100))
@settings(max_examples=20, deadline=None)
def test_backends_agree_on_single_alternative(value):
    alts = [make_alt(0, succeeds=True, value=value, mode="raise")]
    results = {b: run_alternatives(alts, backend=b).value for b in BACKENDS}
    assert len(set(results.values())) == 1
    assert results["sim"] == value


@given(st.integers(min_value=1, max_value=4), st.sampled_from(["raise", "guard"]))
@settings(max_examples=20, deadline=None)
def test_backends_agree_when_everything_fails(n, mode):
    alts = [make_alt(i, succeeds=False, value=i, mode=mode) for i in range(n)]
    for backend in BACKENDS:
        outcome = run_alternatives(alts, backend=backend)
        assert outcome.failed, backend
        assert outcome.winner is None, backend
        assert len(outcome.losers) == n, backend
