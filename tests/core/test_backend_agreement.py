"""Property: every backend agrees on a deterministic block's outcome.

The paper's section 3.3 contract — the observable result is one some
sequential execution of a single alternative could have produced — means
that when a block's winner is *forced* (at most one alternative can
succeed), the sim, thread, sequential and async backends must all commit
the same winner with the same value, and must all fail when nothing can
succeed. Alternative sets are generated with exactly one (or zero)
succeeding member so the race has only one legal outcome; the rest fail
via a raised error or a rejecting guard.

Two further paths every backend must agree on:

- **guard rejection** — an entry guard that rejects keeps its
  alternative out of the race on every backend (the loser is labelled
  ``guard_failed``), without disturbing the forced winner;
- **timeout** — a block whose only viable alternative outlasts the
  parent timeout commits nowhere. Backends that can preempt a running
  world (thread, async) must report ``timed_out`` with no winner; the
  sequential backend cannot interrupt an alternative mid-flight, so the
  agreement is weaker there — it either times out with no winner or
  (having started the slow winner before the deadline) commits the one
  legal value.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alternative import Alternative, Guard, GuardPlacement
from repro.core.worlds import run_alternatives

BACKENDS = ("sim", "thread", "sequential", "async")


def make_alt(index, succeeds, value, mode):
    """One deterministic alternative; failures via ``mode``."""
    if succeeds:
        def body(ws, _v=value):
            ws["out"] = _v
            return _v
        guard = Guard.always()
    elif mode == "raise":
        def body(ws, _i=index):
            raise ValueError(f"alt {_i} broken")
        guard = Guard.always()
    else:  # a body that runs but a guard that rejects its result
        def body(ws, _v=value):
            return _v
        guard = Guard(name="reject", accept=lambda state, result: False)
    return Alternative(
        body, guard=guard, name=f"alt{index}",
        sim_cost=0.001 * (index + 1),  # deterministic virtual-time cost
    )


@st.composite
def forced_blocks(draw):
    """A block whose winner is forced: at most one alternative succeeds."""
    n = draw(st.integers(min_value=1, max_value=5))
    winner_idx = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1)))
    modes = draw(st.lists(
        st.sampled_from(["raise", "guard"]), min_size=n, max_size=n,
    ))
    values = draw(st.lists(
        st.one_of(st.integers(-100, 100), st.text(max_size=5)),
        min_size=n, max_size=n,
    ))
    alts = [
        make_alt(i, succeeds=(i == winner_idx), value=values[i], mode=modes[i])
        for i in range(n)
    ]
    return alts, winner_idx, values


@given(forced_blocks())
@settings(max_examples=40, deadline=None)
def test_backends_agree_on_forced_winner(block):
    alts, winner_idx, values = block
    outcomes = {b: run_alternatives(alts, backend=b) for b in BACKENDS}
    if winner_idx is None:
        for backend, outcome in outcomes.items():
            assert outcome.failed, f"{backend} committed with no viable alternative"
            assert outcome.winner is None
    else:
        for backend, outcome in outcomes.items():
            assert outcome.winner is not None, f"{backend} failed a winnable block"
            assert outcome.winner.name == f"alt{winner_idx}", backend
            assert outcome.value == values[winner_idx], backend


@given(st.integers(-100, 100))
@settings(max_examples=20, deadline=None)
def test_backends_agree_on_single_alternative(value):
    alts = [make_alt(0, succeeds=True, value=value, mode="raise")]
    results = {b: run_alternatives(alts, backend=b).value for b in BACKENDS}
    assert len(set(results.values())) == 1
    assert results["sim"] == value


@given(st.integers(min_value=1, max_value=4), st.sampled_from(["raise", "guard"]))
@settings(max_examples=20, deadline=None)
def test_backends_agree_when_everything_fails(n, mode):
    alts = [make_alt(i, succeeds=False, value=i, mode=mode) for i in range(n)]
    for backend in BACKENDS:
        outcome = run_alternatives(alts, backend=backend)
        assert outcome.failed, backend
        assert outcome.winner is None, backend
        assert len(outcome.losers) == n, backend


def make_entry_rejected(index):
    """An alternative whose entry guard keeps it out of the race.

    BEFORE_SPAWN placement makes the rejection synchronous on every
    backend (the world is never created), so the loser labelling is
    deterministic — an IN_CHILD rejection on a preemptive backend can
    go uncollected when the winner commits first.
    """
    def body(ws, _i=index):  # pragma: no cover - must never run
        raise AssertionError(f"alt {_i} ran past a rejecting entry guard")
    return Alternative(
        body,
        guard=Guard(
            name="no-entry", check=lambda state: False,
            placement=GuardPlacement.BEFORE_SPAWN,
        ),
        name=f"alt{index}", sim_cost=0.001 * (index + 1),
    )


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=4),
    st.one_of(st.integers(-100, 100), st.text(max_size=5)),
)
@settings(max_examples=25, deadline=None)
def test_backends_agree_on_guard_rejection(n, winner_pos, value):
    """Entry-guard rejection is a non-starter on every backend.

    Every alternative but one is kept out by a rejecting entry guard;
    the survivor must win everywhere, and every loser must be labelled
    ``guard_failed`` (not crashed, not eliminated).
    """
    winner_idx = winner_pos % n
    alts = [
        make_alt(i, succeeds=True, value=value, mode="raise")
        if i == winner_idx
        else make_entry_rejected(i)
        for i in range(n)
    ]
    for backend in BACKENDS:
        outcome = run_alternatives(alts, backend=backend)
        assert outcome.winner is not None, f"{backend} failed a winnable block"
        assert outcome.winner.name == f"alt{winner_idx}", backend
        assert outcome.value == value, backend
        assert len(outcome.losers) == n - 1, backend
        for loser in outcome.losers:
            assert loser.guard_failed, (backend, loser)


def make_slow_winner(sleep_s, value):
    """A viable alternative that outlasts any short parent timeout.

    The body sleeps for real on the OS backends, awaits on the asyncio
    backend (a sync sleep would block the loop and starve the parent's
    timer), and carries a virtual cost larger than the timeout for sim.
    """
    import asyncio
    import time as _time

    def body(ws, _v=value):
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            _time.sleep(sleep_s)
            return _v
        return asyncio.sleep(sleep_s, result=_v)

    return Alternative(body, name="slow", sim_cost=1.0)


@given(st.integers(min_value=0, max_value=3), st.sampled_from(["raise", "guard"]))
@settings(max_examples=6, deadline=None)
def test_backends_agree_on_timeout_alternative(n_losers, mode):
    """A block whose only viable alternative outlasts the timeout.

    Preemptive backends (sim counts virtual time; thread and async stop
    waiting at the deadline) must time out with no winner. The
    sequential backend cannot interrupt a started alternative, so it
    either times out the same way or commits the one legal value — both
    are sequentially-consistent outcomes, nothing else is.
    """
    slow = make_slow_winner(0.25, "late")
    alts = [slow] + [
        make_alt(i + 1, succeeds=False, value=i, mode=mode)
        for i in range(n_losers)
    ]
    for backend in ("sim", "thread", "async"):
        outcome = run_alternatives(alts, timeout=0.05, backend=backend)
        assert outcome.winner is None, f"{backend} committed past the deadline"
        assert outcome.timed_out, backend
    seq = run_alternatives(alts, timeout=0.05, backend="sequential")
    if seq.winner is None:
        assert seq.timed_out
    else:
        assert seq.value == "late"
