"""Tests for mapping kernel AltOutcomes to public BlockOutcomes."""

from repro.analysis.overhead import OverheadBreakdown
from repro.core.worlds import outcome_from_alt
from repro.kernel.syscalls import AltOutcome, ChildRecord, TIMEOUT


def _child(pid, index, name, status, value=None, reason="", finished=1.0):
    return ChildRecord(
        pid=pid, index=index, name=name, status=status, value=value,
        reason=reason, finished_at=finished,
    )


def test_winner_and_losers_partitioned():
    alt = AltOutcome(
        winner_index=1,
        winner_pid=12,
        value="won",
        spawned_at=0.0,
        committed_at=2.0,
        parent_resumed_at=2.5,
        overhead=OverheadBreakdown(setup_s=0.1),
        children=[
            _child(11, 0, "a", "eliminated", reason="sibling eliminated"),
            _child(12, 1, "b", "committed", value="won"),
            _child(13, 2, "c", "aborted", reason="guard rejected entry"),
        ],
    )
    out = outcome_from_alt(alt, state={"k": 1})
    assert out.winner.name == "b" and out.winner.succeeded
    assert out.value == "won"
    assert [l.name for l in out.losers] == ["a", "c"]
    assert out.extras["state"] == {"k": 1}
    # elapsed uses the parent's resume time (includes sync elimination)
    assert out.elapsed_s == 2.5
    assert out.overhead.setup_s == 0.1


def test_guard_failures_flagged():
    alt = AltOutcome(
        winner_index=None, winner_pid=None, value=TIMEOUT, timed_out=True,
        spawned_at=0.0, committed_at=1.0, parent_resumed_at=1.0,
        children=[
            _child(1, 0, "g", "guard-rejected", reason="guard rejected before spawn"),
            _child(2, 1, "t", "timeout-killed", reason="block timeout"),
        ],
    )
    out = outcome_from_alt(alt)
    assert out.failed and out.timed_out
    by_name = {l.name: l for l in out.losers}
    assert by_name["g"].guard_failed
    assert not by_name["t"].succeeded


def test_per_child_elapsed_relative_to_spawn():
    alt = AltOutcome(
        winner_index=0, winner_pid=5, value=1,
        spawned_at=10.0, committed_at=12.0, parent_resumed_at=12.0,
        children=[_child(5, 0, "w", "committed", value=1, finished=12.0)],
    )
    out = outcome_from_alt(alt)
    assert out.winner.elapsed_s == 2.0
