"""The asyncio backend: winner commit, cancellation-as-elimination,
timeout, the asyncio fault site, journal exactly-once, obs spans, and
both entry points (sync registry surface and coroutine-native)."""

import asyncio
import threading
import time

import pytest

from repro.aio import alt_block_async, run_alternatives_async
from repro.core.alternative import Alternative, Guard
from repro.core.policy import EliminationPolicy
from repro.core.worlds import run_alternatives
from repro.errors import SpawnError, WorldsError
from repro.faults.plan import FaultKind, FaultPlan
from repro.journal import CommitJournal, find_block_win
from repro.obs import Observability


def _fast(ws):
    ws["by"] = "fast"
    return "fast"


async def _slow_coro(ws):
    await asyncio.sleep(0.3)
    ws["by"] = "slow"
    return "slow"


def _boom(ws):
    raise RuntimeError("boom")


class TestWinnerCommit:
    def test_sync_bodies_first_winner_commits(self):
        out = run_alternatives([_fast, _slow_coro], backend="async")
        assert out.value == "fast"
        assert out.winner.name == "_fast"
        assert out.extras["state"]["by"] == "fast"

    def test_coroutine_function_alternatives(self):
        async def quick(ws):
            await asyncio.sleep(0.005)
            ws["by"] = "quick"
            return "quick"

        out = run_alternatives([quick, _slow_coro], backend="async")
        assert out.value == "quick"
        assert out.extras["state"]["by"] == "quick"

    def test_callable_returning_awaitable(self):
        # lambda ws: asyncio.sleep(...) — a sync callable whose value is
        # awaitable must be awaited, not committed as a coroutine object
        out = run_alternatives(
            [lambda ws: asyncio.sleep(0.005, result="slept")],
            backend="async",
        )
        assert out.value == "slept"

    def test_loser_workspace_mutations_do_not_leak(self):
        def tainted(ws):
            ws["by"] = "tainted"
            raise RuntimeError("after the write")

        out = run_alternatives([tainted, _fast], backend="async")
        assert out.value == "fast"
        assert out.extras["state"]["by"] == "fast"

    def test_initial_state_is_not_mutated(self):
        initial = {"n": 1}
        out = run_alternatives(
            [lambda ws: ws.__setitem__("n", 99)], initial, backend="async"
        )
        assert initial == {"n": 1}
        assert out.extras["state"]["n"] == 99

    def test_all_fail_block_fails(self):
        out = run_alternatives([_boom, _boom], backend="async")
        assert out.failed and out.winner is None
        assert len(out.losers) == 2


class TestElimination:
    def test_losers_labelled_eliminated(self):
        out = run_alternatives([_fast, _slow_coro], backend="async")
        (loser,) = out.losers
        assert loser.error == "eliminated (task cancelled)"
        assert not loser.guard_failed
        assert out.extras["eliminated"] == 1
        assert out.extras["elimination_policy"] == "async"

    def test_synchronous_elimination_reaps_before_return(self):
        # under SYNCHRONOUS no loser may still be executing when the
        # parent resumes: the flag a cancelled loser would have set
        # after its sleep must never appear
        flags = {}

        async def lingering(ws):
            await asyncio.sleep(0.5)
            flags["survived"] = True
            return "late"

        out = run_alternatives(
            [_fast, lingering], backend="async",
            elimination=EliminationPolicy.SYNCHRONOUS,
        )
        assert out.value == "fast"
        assert out.extras["uncollected"] == 0
        assert "survived" not in flags
        assert out.extras["elimination_policy"] == "sync"

    def test_guard_rejection_paths(self):
        entry = Alternative(
            _fast, guard=Guard(name="no-entry", check=lambda s: False),
            name="rejected-entry",
        )
        result = Alternative(
            lambda ws: "bad",
            guard=Guard(name="no-result", accept=lambda s, r: False),
            name="rejected-result",
        )
        winner = Alternative(
            lambda ws: "ok", name="winner", start_delay=0.05
        )
        out = run_alternatives([entry, result, winner], backend="async")
        assert out.value == "ok"
        by_name = {l.name: l for l in out.losers}
        assert by_name["rejected-entry"].guard_failed
        assert "rejected entry" in by_name["rejected-entry"].error
        assert by_name["rejected-result"].guard_failed
        assert "rejected result" in by_name["rejected-result"].error


class TestTimeout:
    def test_block_timeout_no_winner(self):
        out = run_alternatives([_slow_coro], timeout=0.05, backend="async")
        assert out.winner is None
        assert out.timed_out
        (loser,) = out.losers
        assert loser.error == "timeout-killed"

    def test_fast_winner_beats_timeout(self):
        out = run_alternatives(
            [_fast, _slow_coro], timeout=5.0, backend="async"
        )
        assert out.value == "fast"
        assert not out.timed_out


class TestEntryPoints:
    def test_sync_entry_refuses_nested_loop(self):
        async def nested():
            with pytest.raises(WorldsError, match="alt_block_async"):
                run_alternatives_async([_fast])
            return True

        assert asyncio.run(nested())

    def test_alt_block_async_inside_host_loop(self):
        async def host():
            out = await alt_block_async([_fast, _slow_coro])
            return out

        out = asyncio.run(host())
        assert out.value == "fast"
        assert out.extras["eliminated"] == 1

    def test_registry_dispatch_matches_direct_call(self):
        via_registry = run_alternatives([_fast], backend="async")
        direct = run_alternatives_async([_fast])
        assert via_registry.value == direct.value == "fast"

    def test_sync_entry_usable_from_worker_thread(self):
        # the serve layer runs blocks on worker threads; each call owns
        # a private loop so threads must not collide
        results = []

        def work():
            results.append(run_alternatives_async([_fast]).value)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["fast"] * 4


class TestJournalExactlyOnce:
    def test_win_journaled_once(self):
        j = CommitJournal()
        out = run_alternatives(
            [_fast, _slow_coro], backend="async", block_id=7, journal=j
        )
        assert out.value == "fast"
        hit = find_block_win(j, 7)
        assert hit is not None and hit["value"] == "fast"
        blocks = [
            r for r in j.records() if r["t"] == "intent" and r["kind"] == "block"
        ]
        assert len(blocks) == 1
        assert j.status(blocks[0]["seq"]) == "applied"

    def test_failed_block_records_nothing(self):
        j = CommitJournal()
        out = run_alternatives([_boom], backend="async", block_id=7, journal=j)
        assert out.winner is None
        assert find_block_win(j, 7) is None

    def test_supervisor_replays_async_win(self):
        from repro.faults import Supervisor

        j = CommitJournal()
        first = Supervisor(max_retries=0, block_id=21, journal=j).run(
            [_fast], backend="async"
        )
        assert first.value == "fast"
        # restart over the same journal: the block must not re-run
        second = Supervisor(max_retries=0, block_id=21, journal=j).run(
            [_boom], backend="async"
        )
        assert second.value == "fast"
        assert second.extras["journal_recovered"] is True


class TestObservability:
    def test_block_span_and_counter(self):
        obs = Observability()
        out = run_alternatives([_fast, _slow_coro], backend="async", obs=obs)
        assert out.value == "fast"
        blocks = [s for s in obs.tracer.spans if s.cat == "alt-block"]
        assert len(blocks) == 1 and blocks[0].attrs["backend"] == "async"
        assert obs.registry.get("mw_backend_blocks_total").value(
            backend="async", result="committed"
        ) == 1

    def test_eliminated_loser_disposition(self):
        obs = Observability()
        run_alternatives([_fast, _slow_coro], backend="async", obs=obs)
        children = {s.name: s for s in obs.tracer.spans if s.cat == "child"}
        assert children["_slow_coro"].disposition == "eliminated"
        assert children["_fast"].disposition == "committed"


class TestFaultSite:
    def test_slow_task_delays_but_does_not_kill(self):
        plan = FaultPlan(
            seed=0, rates={FaultKind.SLOW_TASK: 1.0}, slow_task_s=0.05
        )
        t0 = time.perf_counter()
        out = run_alternatives([_fast], backend="async", fault_plan=plan)
        assert out.value == "fast"
        assert time.perf_counter() - t0 >= 0.05
        assert any(
            f["kind"] == "slow-task" for f in out.extras["injected_faults"]
        )

    def test_cancel_ignored_loser_still_converges(self):
        # the loser swallows its first cancellation and lingers; bounded
        # synchronous reaping must still collect it (grace >> linger)
        plan = FaultPlan(
            seed=0, rates={FaultKind.CANCEL_IGNORED: 1.0}, cancel_ignore_s=0.1
        )
        out = run_alternatives(
            [_fast, _slow_coro], backend="async", fault_plan=plan,
            elimination=EliminationPolicy.SYNCHRONOUS,
        )
        assert out.value == "fast"
        assert out.extras["uncollected"] == 0

    def test_loop_stall_delays_every_sibling(self):
        # a synchronous stall in any task blocks the shared loop, so
        # even the winner cannot commit before the stall has run
        plan = FaultPlan(
            seed=0, rates={FaultKind.LOOP_STALL: 1.0}, loop_stall_s=0.05
        )
        t0 = time.perf_counter()
        out = run_alternatives([_fast, _fast], backend="async", fault_plan=plan)
        assert out.value == "fast"
        assert time.perf_counter() - t0 >= 0.05

    def test_child_crash_fault_applies(self):
        plan = FaultPlan.crashes(seed=0, rate=1.0)
        out = run_alternatives([_fast], backend="async", fault_plan=plan)
        assert out.failed
        (loser,) = out.losers
        assert "injected crash-before-report" in loser.error

    def test_spawn_fault_raises_spawn_error(self):
        plan = FaultPlan(seed=0, rates={FaultKind.SPAWN_FAIL: 1.0})
        with pytest.raises(SpawnError, match="task-creation"):
            run_alternatives([_fast], backend="async", fault_plan=plan)

    def test_determinism_same_seed_same_schedule(self):
        def once():
            plan = FaultPlan.crashes(seed=3, rate=0.5)
            out = run_alternatives(
                [_fast, _fast, _fast], backend="async", fault_plan=plan
            )
            return sorted(f["index"] for f in out.extras["injected_faults"])

        assert once() == once()


class TestSupervisorDegradation:
    def test_async_degrades_through_thread_to_sequential(self):
        from repro.faults import Supervisor

        plan = FaultPlan(seed=0, rates={FaultKind.SPAWN_FAIL: 1.0})
        out = Supervisor(fault_plan=plan).run(
            [lambda ws: 42], backend="async"
        )
        assert out.value == 42
        assert [d["backend"] for d in out.extras["degraded"]] == [
            "async", "thread"
        ]
        assert out.extras["backend"] == "sequential"

    def test_async_fallback_chain_order(self):
        from repro.faults import ASYNC_FALLBACK, Supervisor

        assert ASYNC_FALLBACK == ("async", "thread", "sequential")
        assert Supervisor()._chain_from("async") == ASYNC_FALLBACK
