"""The extracted backend registry: names, dispatch, errors, extension."""

import pytest

from repro.core import backend as backend_mod
from repro.core import worlds
from repro.core.backend import (
    backend_names,
    backend_summaries,
    register_backend,
    resolve_backend,
)
from repro.core.outcome import BlockOutcome
from repro.core.worlds import run_alternatives
from repro.errors import WorldsError

BUILTINS = ("sim", "fork", "thread", "sequential", "async")


def test_builtin_backends_registered_in_order():
    names = backend_names()
    assert names == BUILTINS


def test_worlds_BACKENDS_is_the_registry_view():
    assert worlds.BACKENDS == backend_names()
    assert "BACKENDS" in dir(worlds)


def test_every_backend_has_a_doc_summary():
    summaries = dict(backend_summaries())
    for name in BUILTINS:
        assert summaries[name], f"backend {name!r} missing a summary"


def test_module_docstring_generated_from_registry():
    for name in backend_names():
        assert f'backend="{name}"' in worlds.__doc__


def test_unknown_backend_error_names_the_valid_set():
    with pytest.raises(WorldsError, match="unknown backend 'nope'"):
        resolve_backend("nope")
    with pytest.raises(WorldsError, match="'async'"):
        run_alternatives([lambda ws: 1], backend="nope")


def test_unknown_backend_rejected_before_side_effects():
    class Exploding:
        def watch_fault_plan(self, plan):  # pragma: no cover - must not run
            raise AssertionError("side effect before backend validation")

    with pytest.raises(WorldsError, match="unknown backend"):
        run_alternatives([lambda ws: 1], backend="nope", obs=Exploding())


def test_duplicate_registration_requires_replace():
    with pytest.raises(WorldsError, match="already registered"):
        register_backend("async", lambda: None)


@pytest.fixture
def scratch_backend():
    """Register a throwaway backend, removed again after the test."""
    name = "test-scratch"
    yield name
    backend_mod._REGISTRY.pop(name, None)


def test_registered_backend_dispatches_through_run_alternatives(scratch_backend):
    calls = []

    def runner(alternatives, initial, timeout, **kwargs):
        calls.append(kwargs["block_id"])
        return BlockOutcome(winner=None, elapsed_s=0.0, extras={"scratch": True})

    register_backend(scratch_backend, lambda: runner, summary="test stub")
    out = run_alternatives([lambda ws: 1], backend=scratch_backend, block_id=9)
    assert out.extras["scratch"] is True
    assert calls == [9]
    assert scratch_backend in worlds.BACKENDS


def test_loader_called_lazily_and_cached(scratch_backend):
    loads = []

    def loader():
        loads.append(1)
        return lambda alternatives, initial, timeout, **kw: BlockOutcome(winner=None, elapsed_s=0.0)

    register_backend(scratch_backend, loader)
    assert loads == []  # registration alone must not import anything
    resolve_backend(scratch_backend)
    resolve_backend(scratch_backend)
    assert loads == [1]


def test_replace_swaps_the_loader(scratch_backend):
    register_backend(scratch_backend, lambda: None, summary="first")
    register_backend(
        scratch_backend,
        lambda: (lambda a, i, t, **kw: BlockOutcome(winner=None, elapsed_s=0.0)),
        summary="second",
        replace=True,
    )
    assert dict(backend_summaries())[scratch_backend] == "second"


def test_backend_name_must_be_a_string():
    with pytest.raises(WorldsError, match="non-empty string"):
        register_backend("", lambda: None)
