"""summarize.py --json must survive corrupt results files.

A crashed bench can leave a truncated or garbage ``results/*.json``
behind; the merge step skips those with a warning and only fails when
nothing at all was salvageable.
"""

import json
import os
import subprocess
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
sys.path.insert(0, BENCH_DIR)

from summarize import merge_json  # noqa: E402


def write(path, text):
    with open(path, "w") as fh:
        fh.write(text)


def good_doc(bench="good", name="m", value=1.5):
    return json.dumps(
        {"bench": bench, "metrics": [{"name": name, "value": value, "unit": "s"}]}
    )


@pytest.fixture
def results_dir(tmp_path):
    return str(tmp_path)


def merged(results_dir):
    with open(os.path.join(results_dir, "BENCH_OBS.json")) as fh:
        return json.load(fh)["metrics"]


def test_corrupt_files_are_skipped_with_warning(results_dir, capsys):
    write(os.path.join(results_dir, "good.json"), good_doc())
    write(os.path.join(results_dir, "truncated.json"), good_doc()[:20])
    write(os.path.join(results_dir, "notdict.json"), "[1, 2, 3]")
    write(os.path.join(results_dir, "nometrics.json"), '{"bench": "x"}')
    write(
        os.path.join(results_dir, "badrow.json"),
        '{"bench": "y", "metrics": [{"value": 1}]}',
    )
    write(
        os.path.join(results_dir, "nonnumeric.json"),
        '{"bench": "z", "metrics": [{"name": "m", "value": "NaN-ish"}]}',
    )
    valid = merge_json(results_dir)
    assert valid == 1
    rows = merged(results_dir)
    assert [r["bench"] for r in rows] == ["good"]
    err = capsys.readouterr().err
    for fname in ("truncated", "notdict", "nometrics", "badrow", "nonnumeric"):
        assert fname in err


def test_chrome_trace_exports_are_silently_ignored(results_dir, capsys):
    write(os.path.join(results_dir, "good.json"), good_doc())
    write(os.path.join(results_dir, "fig_obs.trace.json"), '{"traceEvents": []}')
    assert merge_json(results_dir) == 1
    assert capsys.readouterr().err == ""


def test_all_corrupt_returns_zero(results_dir):
    write(os.path.join(results_dir, "junk.json"), "{{{{")
    assert merge_json(results_dir) == 0
    assert merged(results_dir) == []


def test_stale_merge_output_is_not_reingested(results_dir):
    write(os.path.join(results_dir, "good.json"), good_doc())
    assert merge_json(results_dir) == 1
    # a second pass must not double-count via the previous BENCH_OBS.json
    assert merge_json(results_dir) == 1
    assert len(merged(results_dir)) == 1


def test_async_slice_written_and_not_reingested(results_dir):
    write(os.path.join(results_dir, "good.json"), good_doc())
    write(
        os.path.join(results_dir, "async_concurrency.json"),
        good_doc(bench="async_concurrency", name="async_peak_inflight_worlds",
                 value=10000),
    )
    assert merge_json(results_dir) == 2
    with open(os.path.join(results_dir, "BENCH_ASYNC.json")) as fh:
        async_rows = json.load(fh)["metrics"]
    assert [r["bench"] for r in async_rows] == ["async_concurrency"]
    assert len(merged(results_dir)) == 2
    # a second pass must not double-count via the split artifact either
    assert merge_json(results_dir) == 2
    assert len(merged(results_dir)) == 2


def test_no_async_slice_without_async_bench(results_dir):
    write(os.path.join(results_dir, "good.json"), good_doc())
    merge_json(results_dir)
    assert not os.path.exists(os.path.join(results_dir, "BENCH_ASYNC.json"))


def test_corrupt_async_results_do_not_block_the_slice(results_dir, capsys):
    # malformed-file tolerance applies to the async bench like any other
    write(
        os.path.join(results_dir, "async_concurrency.json"),
        good_doc(bench="async_concurrency")[:25],
    )
    write(os.path.join(results_dir, "good.json"), good_doc())
    assert merge_json(results_dir) == 1
    assert "async_concurrency" in capsys.readouterr().err
    assert not os.path.exists(os.path.join(results_dir, "BENCH_ASYNC.json"))


def cli(results_dir):
    env = dict(os.environ)
    script = os.path.join(BENCH_DIR, "summarize.py")
    return subprocess.run(
        [sys.executable, script, "--json", "--results-dir", results_dir],
        capture_output=True, text=True, env=env,
    )


def test_cli_exits_nonzero_only_without_any_valid_results(results_dir):
    write(os.path.join(results_dir, "junk.json"), "not json")
    proc = cli(results_dir)
    assert proc.returncode != 0
    assert "no valid results" in proc.stderr
    write(os.path.join(results_dir, "good.json"), good_doc())
    proc = cli(results_dir)
    assert proc.returncode == 0, proc.stderr
