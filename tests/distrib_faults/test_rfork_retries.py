"""RemoteFork under an unreliable link: retries, dedup, local fallback."""

import pytest

from repro.analysis.calibration import NetworkProfile
from repro.distrib.netsim import SimulatedLink
from repro.distrib.retry import RetryPolicy
from repro.distrib.rfork import RemoteFork
from repro.errors import RetriesExhausted
from repro.faults.plan import FaultKind, FaultPlan

FAST = NetworkProfile("fast", latency_s=0.001, bandwidth_bytes_s=1e8)


def _double(state):
    return state["x"] * 2


def make_rfork(rates, seed=0, **kwargs):
    plan = FaultPlan(seed=seed, rates=rates)
    link = SimulatedLink(FAST, fault_plan=plan, seed=seed)
    return RemoteFork(link=link, **kwargs)


class TestCommitUnderLoss:
    @pytest.mark.parametrize("seed", range(12))
    def test_every_seed_commits_at_thirty_percent_drop(self, seed):
        # acceptance: at a 30% transfer-failure rate, execute() commits
        # the correct result for every seed — via retries or fallback —
        # and the path taken is recorded in BlockOutcome.extras.
        rfork = make_rfork({FaultKind.XFER_DROP: 0.3}, seed=seed)
        outcome = rfork.execute_block(_double, {"x": 21}, name=f"s{seed}")
        assert outcome.winner is not None
        assert outcome.winner.value == 42
        report = outcome.extras["rfork"]
        assert report["attempts"] >= 1
        assert report["fallback"] in (None, "local")
        # the faults list covers every failed attempt: all retried ones,
        # plus the final failure when the task fell back to local
        expected_faults = report["retries"] + (
            1 if report["fallback"] == "local" else 0
        )
        assert len(report["faults"]) == expected_faults

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_faults_still_commit(self, seed):
        rfork = make_rfork(
            {
                FaultKind.XFER_DROP: 0.2,
                FaultKind.XFER_CORRUPT: 0.2,
                FaultKind.XFER_DUP: 0.1,
            },
            seed=seed,
        )
        result, cost = rfork.execute(_double, {"x": 5})
        assert result == 10
        assert cost.attempts == rfork.last_report["attempts"]

    def test_corrupt_delivery_retried_never_unpickled(self):
        # every delivery corrupts; the CRC gate rejects them all and the
        # protocol exhausts, then falls back locally — no poisoned pickle
        rfork = make_rfork({FaultKind.XFER_CORRUPT: 1.0}, seed=0)
        result, _ = rfork.execute(_double, {"x": 3})
        assert result == 6
        assert rfork.last_report["fallback"] == "local"
        assert all(f == "CheckpointError" for f in rfork.last_report["faults"])


class TestIdempotency:
    def test_duplicate_delivery_applies_once(self):
        rfork = make_rfork({FaultKind.XFER_DUP: 1.0}, seed=0)
        result, _ = rfork.execute(_double, {"x": 8})
        assert result == 16
        assert rfork.duplicates_suppressed >= 1
        assert rfork.last_report["fallback"] is None

    def test_resend_of_applied_image_reuses_result(self):
        # at-least-once delivery: a retry whose earlier copy actually
        # landed must not re-run the task
        from repro.runtime.checkpoint import CheckpointImage

        rfork = make_rfork({}, seed=0)
        blob = CheckpointImage.capture(_double, {"x": 1}, "same").to_bytes()
        r1, _ = rfork._deliver_once(blob, "tok", 0)
        r2, _ = rfork._deliver_once(blob, "tok", 1)
        assert r1 == r2 == 2
        assert rfork.duplicates_suppressed == 1


class TestFallbackAndExhaustion:
    def test_dead_link_falls_back_local(self):
        rfork = make_rfork({FaultKind.XFER_DROP: 1.0}, seed=0)
        outcome = rfork.execute_block(_double, {"x": 50})
        assert outcome.winner.value == 100
        assert outcome.extras["rfork"]["fallback"] == "local"
        assert outcome.remote_fallback == "local"
        assert outcome.network_retries == rfork.retry.max_retries

    def test_no_fallback_raises_retries_exhausted(self):
        rfork = make_rfork(
            {FaultKind.XFER_DROP: 1.0}, seed=0, fallback_local=False,
            retry=RetryPolicy(max_retries=2),
        )
        with pytest.raises(RetriesExhausted) as err:
            rfork.execute(_double, {"x": 1})
        assert err.value.attempts == 3
        outcome = rfork.execute_block(_double, {"x": 1})
        assert outcome.winner is None
        assert "error" in outcome.extras["rfork"]

    def test_remote_crash_site_retries_then_lands(self):
        plan = FaultPlan(seed=3, rates={FaultKind.REMOTE_CRASH: 0.5})
        link = SimulatedLink(FAST, fault_plan=plan, seed=3)
        rfork = RemoteFork(link=link, node_id=7)
        result, cost = rfork.execute(_double, {"x": 4})
        assert result == 8
        faults = rfork.last_report["faults"]
        assert all(f in ("RemoteNodeDown",) for f in faults)


class TestDeterminism:
    def run_once(self, seed):
        rfork = make_rfork(
            {FaultKind.XFER_DROP: 0.4, FaultKind.XFER_CORRUPT: 0.2}, seed=seed
        )
        result, cost = rfork.execute(_double, {"x": 9}, name="det")
        report = dict(rfork.last_report)
        return result, cost.attempts, report["faults"], report["backoff_s"]

    def test_same_seed_identical_retry_sequence(self):
        # acceptance: same seed => byte-identical fault-event and retry
        # sequences end to end
        assert self.run_once(17) == self.run_once(17)

    def test_backoff_is_deterministic_jitter(self):
        _, _, _, ba = self.run_once(17)
        _, _, _, bb = self.run_once(17)
        assert ba == bb
