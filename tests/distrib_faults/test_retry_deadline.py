"""RetryPolicy.deadline_s: the total-time cap across a retry loop."""

import time

import pytest

from repro.distrib.netsim import NetworkProfile, SimulatedLink
from repro.distrib.retry import RetryPolicy, call_with_retries
from repro.errors import RetriesExhausted, TransferDropped


def always_fail(attempt):
    raise TransferDropped(f"attempt {attempt} dropped")


class TestDeadlineCap:
    def test_deadline_cuts_attempts_short(self):
        # generous attempt budget, tiny deadline: the clock wins
        policy = RetryPolicy(
            max_retries=50, base_backoff_s=0.02, multiplier=2.0,
            max_backoff_s=0.5, jitter=0.0, deadline_s=0.1,
        )
        t0 = time.monotonic()
        with pytest.raises(RetriesExhausted) as info:
            call_with_retries(always_fail, policy=policy, token="cap")
        elapsed = time.monotonic() - t0
        assert info.value.attempts < 51, "deadline must beat the attempt cap"
        assert elapsed < 1.0
        assert "deadline" in str(info.value)
        # the recorded backoff never crosses the cap
        assert info.value.stats.backoff_s <= 0.1

    def test_attempts_win_when_deadline_is_generous(self):
        policy = RetryPolicy(
            max_retries=3, base_backoff_s=0.001, jitter=0.0, deadline_s=60.0,
        )
        with pytest.raises(RetriesExhausted) as info:
            call_with_retries(always_fail, policy=policy, token="slack")
        assert info.value.attempts == 4  # 1 + max_retries: attempts tripped
        assert "attempts" in str(info.value)

    def test_no_deadline_means_attempts_only(self):
        policy = RetryPolicy(max_retries=2, base_backoff_s=0.001, jitter=0.0)
        assert policy.deadline_s is None
        with pytest.raises(RetriesExhausted) as info:
            call_with_retries(always_fail, policy=policy)
        assert info.value.attempts == 3

    def test_success_before_deadline_unaffected(self):
        calls = []

        def third_time_lucky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise TransferDropped("early")
            return "ok"

        policy = RetryPolicy(
            max_retries=5, base_backoff_s=0.001, jitter=0.0, deadline_s=30.0,
        )
        value, stats = call_with_retries(third_time_lucky, policy=policy)
        assert value == "ok" and stats.attempts == 3 and calls == [0, 1, 2]


class TestVirtualClock:
    """With a link, elapsed time is the *virtual* backoff total — so the
    deadline-vs-attempts race is deterministic under simulation."""

    def _link(self):
        return SimulatedLink(NetworkProfile("t", latency_s=0.01, bandwidth_bytes_s=1e6))

    def test_deadline_measured_on_link_clock(self):
        # backoffs: 0.2, 0.4 — the third retry's pause would cross the
        # 1.0s virtual deadline at 0.6+0.8, so exactly 3 attempts run
        link = self._link()
        policy = RetryPolicy(
            max_retries=10, base_backoff_s=0.2, multiplier=2.0,
            max_backoff_s=10.0, jitter=0.0, deadline_s=1.0,
        )
        t0 = time.monotonic()
        with pytest.raises(RetriesExhausted) as info:
            call_with_retries(always_fail, policy=policy, link=link, token="v")
        assert info.value.attempts == 3
        assert info.value.stats.backoff_s == pytest.approx(0.6)
        assert link.clock == pytest.approx(0.6)
        # virtual seconds, not wall seconds
        assert time.monotonic() - t0 < 0.5

    def test_virtual_deadline_is_deterministic(self):
        outcomes = []
        for _ in range(3):
            link = self._link()
            policy = RetryPolicy(
                max_retries=20, base_backoff_s=0.1, multiplier=2.0,
                jitter=0.5, deadline_s=2.0,
            )
            with pytest.raises(RetriesExhausted) as info:
                call_with_retries(
                    always_fail, policy=policy, link=link, token="det"
                )
            outcomes.append((info.value.attempts, link.clock))
        assert len(set(outcomes)) == 1, outcomes
