"""Fault-injected SimulatedLink: behaviour, determinism, accounting."""

import threading

import pytest

from repro.analysis.calibration import NetworkProfile
from repro.distrib.netsim import SimulatedLink, corrupt_payload
from repro.errors import LinkPartitioned, TransferDropped
from repro.faults.plan import FaultKind, FaultPlan

FAST = NetworkProfile("fast", latency_s=0.001, bandwidth_bytes_s=1e8)


def make_link(rates, seed=0, **knobs):
    plan = FaultPlan(seed=seed, rates=rates, **knobs)
    return SimulatedLink(FAST, fault_plan=plan, seed=seed)


class TestFaultBehaviour:
    def test_drop_raises_and_charges_the_timeout(self):
        link = make_link({FaultKind.XFER_DROP: 1.0})
        with pytest.raises(TransferDropped):
            link.transfer(1000)
        # the sender paid for discovering the loss
        assert link.busy_seconds > 0
        assert link.ledger[0].ok is False
        assert link.ledger[0].fault == "transfer-drop"
        assert link.drops == 1

    def test_slow_multiplies_transfer_time(self):
        slow = make_link({FaultKind.LINK_SLOW: 1.0}, slow_factor=5.0)
        clean = SimulatedLink(FAST)
        assert slow.transfer(4096) == pytest.approx(5.0 * clean.transfer(4096))
        assert slow.fault_events[0].kind == "link-slow"

    def test_corrupt_ship_flips_exactly_one_byte(self):
        link = make_link({FaultKind.XFER_CORRUPT: 1.0})
        payload = b"all my worlds are belong to us" * 10
        delivery = link.ship(payload)
        assert delivery.corrupted
        diff = [i for i, (x, y) in enumerate(zip(payload, delivery.payload)) if x != y]
        assert len(diff) == 1
        assert delivery.payload == corrupt_payload(payload)

    def test_duplicate_ship_charges_twice(self):
        link = make_link({FaultKind.XFER_DUP: 1.0})
        payload = b"z" * 2048
        delivery = link.ship(payload)
        assert delivery.copies == 2
        assert delivery.payload == payload  # both copies intact
        assert link.bytes_moved == 2 * len(payload)

    def test_reorder_swaps_arrival_order(self):
        link = make_link({FaultKind.XFER_REORDER: 1.0})
        first = link.ship(b"a" * 100)
        second = link.ship(b"b" * 100)
        assert first.reordered
        # seq 1 lands before the held seq 0
        assert link.arrival_order[:2] == [second.seq, first.seq]

    def test_partition_window_blocks_then_heals(self):
        link = make_link(
            {FaultKind.LINK_FLAP: 1.0}, partition_window_s=1.0, flap_s=0.25
        )
        with pytest.raises(LinkPartitioned):
            link.transfer(100)
        # waiting out the flap heals the link
        link.wait(0.3)
        assert link.transfer(100) > 0

    def test_faultless_plan_is_the_old_link(self):
        link = SimulatedLink(FAST, fault_plan=FaultPlan.quiet())
        for _ in range(50):
            link.transfer(1000)
        assert link.fault_events == []
        assert link.drops == 0
        assert link.bytes_moved == 50_000


class TestDeterminism:
    def run_schedule(self, seed):
        link = SimulatedLink(
            FAST,
            jitter=0.5,
            seed=seed,
            fault_plan=FaultPlan(
                seed=seed,
                rates={
                    FaultKind.XFER_DROP: 0.2,
                    FaultKind.XFER_DUP: 0.1,
                    FaultKind.XFER_CORRUPT: 0.1,
                    FaultKind.LINK_SLOW: 0.1,
                },
            ),
        )
        events = []
        for i in range(80):
            try:
                d = link.ship(bytes([i % 256]) * (100 + i))
                events.append(("ok", d.seq, d.copies, d.corrupted, d.seconds))
            except TransferDropped:
                events.append(("drop", i))
        return link, events

    def test_same_seed_identical_event_and_ledger_sequence(self):
        la, ea = self.run_schedule(seed=13)
        lb, eb = self.run_schedule(seed=13)
        assert ea == eb
        assert la.ledger == lb.ledger
        assert la.fault_events == lb.fault_events
        assert la.arrival_order == lb.arrival_order

    def test_different_seeds_differ(self):
        _, ea = self.run_schedule(seed=1)
        _, eb = self.run_schedule(seed=2)
        assert ea != eb


class TestJitterDeterminismAndAccounting:
    def test_same_seed_identical_transfer_ledgers(self):
        # satellite: same seed => byte-identical TransferRecord ledgers
        a = SimulatedLink(FAST, jitter=0.8, seed=21)
        b = SimulatedLink(FAST, jitter=0.8, seed=21)
        for n in (100, 5000, 1, 70 * 1024, 333):
            a.transfer(n)
            b.transfer(n)
        assert a.ledger == b.ledger
        assert a.busy_seconds == b.busy_seconds
        assert a.clock == b.clock

    def test_concurrent_transfers_account_exactly(self):
        # satellite: bytes_moved / busy_seconds stay exact when real
        # threads share one link
        link = SimulatedLink(FAST, jitter=0.3, seed=5)
        threads = [
            threading.Thread(
                target=lambda: [link.transfer(1000) for _ in range(50)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(link.ledger) == 400
        assert link.bytes_moved == 400 * 1000
        assert link.clock == pytest.approx(link.busy_seconds)
        # every transfer got a unique sequence number despite the race
        assert len({r.seq for r in link.ledger}) == 400
