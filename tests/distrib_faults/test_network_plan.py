"""The fault plan's network sites: purity, independence, windows."""

import pytest

from repro.faults.plan import (
    HEARTBEAT_SITE,
    LINK_SITE,
    PARTITION_SITE,
    REMOTE_SITE,
    SITE_KINDS,
    FaultKind,
    FaultPlan,
)


class TestNetworkSites:
    def test_sites_registered(self):
        assert SITE_KINDS[LINK_SITE] == (
            FaultKind.XFER_DROP,
            FaultKind.XFER_DUP,
            FaultKind.XFER_REORDER,
            FaultKind.XFER_CORRUPT,
            FaultKind.LINK_SLOW,
        )
        assert SITE_KINDS[PARTITION_SITE] == (FaultKind.LINK_FLAP,)
        assert SITE_KINDS[REMOTE_SITE] == (FaultKind.REMOTE_CRASH,)
        assert SITE_KINDS[HEARTBEAT_SITE] == (FaultKind.HEARTBEAT_MISS,)

    def test_decisions_pure_in_seed_site_key(self):
        a = FaultPlan(seed=9, rates={FaultKind.XFER_DROP: 0.5})
        b = FaultPlan(seed=9, rates={FaultKind.XFER_DROP: 0.5})
        for seq in range(64):
            assert a.decide(LINK_SITE, 0, seq, 0) == b.decide(LINK_SITE, 0, seq, 0)

    def test_attempts_reroll(self):
        plan = FaultPlan(seed=4, rates={FaultKind.XFER_DROP: 0.5})
        outcomes = {
            plan.decide(LINK_SITE, 0, 7, attempt).fires for attempt in range(32)
        }
        assert outcomes == {True, False}  # the same transfer re-rolls per attempt

    def test_links_independent(self):
        plan = FaultPlan(seed=2, rates={FaultKind.XFER_DROP: 0.5})
        a = [plan.decide(LINK_SITE, 1, s, 0).fires for s in range(64)]
        b = [plan.decide(LINK_SITE, 2, s, 0).fires for s in range(64)]
        assert a != b

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, rates={FaultKind.REMOTE_CRASH: 1.0})
        d = plan.decide(REMOTE_SITE, 5, 0)
        assert d.kind is FaultKind.REMOTE_CRASH
        assert d.param == plan.remote_crash_fraction

    def test_slow_param_is_factor(self):
        plan = FaultPlan(seed=0, rates={FaultKind.LINK_SLOW: 1.0}, slow_factor=7.0)
        assert plan.decide(LINK_SITE, 0, 0, 0).param == 7.0

    def test_lossy_helper(self):
        plan = FaultPlan.lossy(seed=3, rate=0.25)
        assert plan.rates == {FaultKind.XFER_DROP: 0.25}


class TestPartitionWindows:
    def test_no_flap_rate_means_always_up(self):
        plan = FaultPlan.quiet()
        assert not any(plan.link_down(0, t / 10) for t in range(100))

    def test_windows_deterministic(self):
        a = FaultPlan(seed=11, rates={FaultKind.LINK_FLAP: 0.4})
        b = FaultPlan(seed=11, rates={FaultKind.LINK_FLAP: 0.4})
        times = [t * 0.05 for t in range(400)]
        assert [a.link_down(3, t) for t in times] == [b.link_down(3, t) for t in times]

    def test_flap_confined_to_window_head(self):
        plan = FaultPlan(
            seed=0, rates={FaultKind.LINK_FLAP: 1.0},
            partition_window_s=1.0, flap_s=0.25,
        )
        assert plan.link_down(0, 2.1)  # inside the first flap_s of window 2
        assert not plan.link_down(0, 2.6)  # window 2's tail is healthy

    def test_rate_controls_down_fraction(self):
        plan = FaultPlan(
            seed=5, rates={FaultKind.LINK_FLAP: 0.3},
            partition_window_s=1.0, flap_s=1.0,
        )
        down = sum(plan.link_down(0, w + 0.5) for w in range(400))
        assert 0.2 < down / 400 < 0.4


class TestExistingSitesUndisturbed:
    def test_child_site_schedule_stable_with_network_rates(self):
        # enabling network kinds must not reshuffle child-site decisions
        base = FaultPlan(seed=1, rates={FaultKind.CRASH: 0.3})
        extended = FaultPlan(
            seed=1, rates={FaultKind.CRASH: 0.3, FaultKind.XFER_DROP: 0.9}
        )
        assert base.schedule(0, 8, attempts=3) == extended.schedule(0, 8, attempts=3)

    def test_unknown_site_still_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.quiet().decide("wormhole", 0)
