"""Migration over a dying link: clean refusal, source keeps the process."""

import pytest

from repro.analysis.calibration import NetworkProfile
from repro.distrib.migration import migrate_process
from repro.distrib.netsim import SimulatedLink
from repro.distrib.retry import RetryPolicy
from repro.errors import NetworkError
from repro.faults.plan import FaultKind, FaultPlan
from repro.kernel import Kernel
from repro.kernel.process import ProcState

FAST = NetworkProfile("fast", latency_s=0.001, bandwidth_bytes_s=1e8)


def _echo_server(ctx):
    total = 0
    while True:
        msg = yield ctx.recv()
        if msg.data == "stop":
            return total
        total += msg.data


def park_server(kernel):
    pid = kernel.spawn(_echo_server, name="server")
    kernel.run(until=0.001)
    return pid


def lossy_link(rate, seed=0):
    plan = FaultPlan(seed=seed, rates={FaultKind.XFER_DROP: rate})
    return SimulatedLink(FAST, fault_plan=plan, seed=seed)


class TestLinkDeathMidShip:
    def test_dead_link_aborts_with_network_error(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = park_server(src)
        link = lossy_link(rate=1.0)
        with pytest.raises(NetworkError, match="source kernel keeps the process"):
            migrate_process(src, pid, dst, link, retry=RetryPolicy(max_retries=2))

    def test_source_keeps_process_and_target_untouched(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = park_server(src)
        dst_pids_before = set(dst.pid_worlds)
        with pytest.raises(NetworkError):
            migrate_process(src, pid, dst, lossy_link(rate=1.0))
        # the source still owns a live, recv-parked copy...
        world = next(w for w in src.worlds_of(pid) if w.alive)
        assert world.state is ProcState.BLOCKED_RECV
        # ...and the target registered nothing
        assert set(dst.pid_worlds) == dst_pids_before

    def test_aborted_migration_is_retryable_later(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = park_server(src)
        with pytest.raises(NetworkError):
            migrate_process(src, pid, dst, lossy_link(rate=1.0))
        # the link heals (a clean one stands in): the same call now works
        record = migrate_process(src, pid, dst, SimulatedLink(FAST))
        assert record.src_pid == pid

        def driver(ctx, server):
            yield ctx.send(server, 42)
            yield ctx.send(server, "stop")

        dst.spawn(driver, record.dst_pid)
        dst.run()
        assert dst.result_of(record.dst_pid) == 42


class TestLossyButSurvivable:
    @pytest.mark.parametrize("seed", range(6))
    def test_migration_retries_through_loss(self, seed):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = park_server(src)
        record = migrate_process(src, pid, dst, lossy_link(rate=0.3, seed=seed))
        assert record.dst_pid in dst.pid_worlds
        assert record.transfer_s > 0
        # retries and their backoff are visible in the record
        assert record.retries >= 0
        assert record.transfer_s >= record.backoff_s

    def test_clean_link_records_no_retries(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = park_server(src)
        record = migrate_process(src, pid, dst, SimulatedLink(FAST))
        assert record.retries == 0
        assert record.backoff_s == 0.0

    def test_retry_accounting_deterministic(self):
        def run(seed):
            src, dst = Kernel(cpus=2), Kernel(cpus=2)
            pid = park_server(src)
            r = migrate_process(src, pid, dst, lossy_link(rate=0.5, seed=seed))
            return (r.retries, r.backoff_s)

        assert run(11) == run(11)
