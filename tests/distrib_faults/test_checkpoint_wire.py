"""Checkpoint wire format v2: CRC verification and header validation."""

import os
import struct

import pytest

import repro.runtime.checkpoint as ckpt_mod
from repro.errors import CheckpointError
from repro.runtime.checkpoint import CheckpointImage


def _task(state):
    return state["x"] + 1


class TestWireFormatV2:
    def test_roundtrip(self):
        image = CheckpointImage.capture(_task, {"x": 1}, "t")
        blob = image.to_bytes()
        assert blob.startswith(b"MWCKPT2\n")
        restored = CheckpointImage.from_bytes(blob)
        assert restored.name == "t"
        assert restored.restart() == 2

    def test_legacy_v1_still_readable(self):
        image = CheckpointImage.capture(_task, {"x": 4}, "old")
        header = image.name.encode()
        v1 = (
            b"MWCKPT1\n"
            + struct.pack("<Qd", len(header), image.created_at)
            + header
            + image.payload
        )
        restored = CheckpointImage.from_bytes(v1)
        assert restored.restart() == 5

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            CheckpointImage.from_bytes(b"NOTANIMG" + b"x" * 64)

    def test_truncated_header_raises_checkpoint_error(self):
        # satellite: a truncated header must not leak a bare struct.error
        blob = CheckpointImage.capture(_task, {"x": 1}).to_bytes()
        for cut in (9, 12, 20, 27):
            with pytest.raises(CheckpointError, match="truncated"):
                CheckpointImage.from_bytes(blob[:cut])

    def test_name_len_validated_against_blob(self):
        # satellite: a header promising a name longer than the blob
        blob = b"MWCKPT2\n" + struct.pack("<QdI", 1 << 40, 0.0, 0) + b"tiny"
        with pytest.raises(CheckpointError, match="name_len"):
            CheckpointImage.from_bytes(blob)
        v1 = b"MWCKPT1\n" + struct.pack("<Qd", 1 << 40, 0.0) + b"tiny"
        with pytest.raises(CheckpointError, match="name_len"):
            CheckpointImage.from_bytes(v1)

    def test_flipped_byte_rejected_before_unpickling(self, monkeypatch):
        image = CheckpointImage.capture(_task, {"x": 1}, "guarded")
        blob = bytearray(image.to_bytes())
        blob[-3] ^= 0xFF  # corrupt the pickled payload

        calls = []
        real_loads = ckpt_mod.pickle.loads
        monkeypatch.setattr(
            ckpt_mod.pickle, "loads",
            lambda *a, **k: calls.append(1) or real_loads(*a, **k),
        )
        with pytest.raises(CheckpointError, match="checksum"):
            CheckpointImage.from_bytes(bytes(blob))
        assert calls == []  # pickle.loads never saw the corrupt payload

    def test_torn_tail_rejected(self):
        blob = CheckpointImage.capture(_task, {"x": 1}).to_bytes()
        with pytest.raises(CheckpointError, match="checksum"):
            CheckpointImage.from_bytes(blob[:-10])

    def test_every_single_byte_flip_detected(self):
        blob = CheckpointImage.capture(_task, {"x": 1}, "n").to_bytes()
        start = len(b"MWCKPT2\n") + struct.calcsize("<QdI")
        for pos in range(start, len(blob), max(1, len(blob) // 40)):
            mutated = bytearray(blob)
            mutated[pos] ^= 0x01
            with pytest.raises(CheckpointError):
                CheckpointImage.from_bytes(bytes(mutated))

    def test_header_field_flips_detected(self):
        # regression: created_at (bytes 16-23) was once outside the CRC,
        # so a flip there sailed through verification — every mutable
        # header byte must be covered
        blob = CheckpointImage.capture(_task, {"x": 1}, "n").to_bytes()
        for pos in range(len(b"MWCKPT2\n"), len(b"MWCKPT2\n") + struct.calcsize("<Qd")):
            mutated = bytearray(blob)
            mutated[pos] ^= 0xFF
            with pytest.raises(CheckpointError):
                CheckpointImage.from_bytes(bytes(mutated))

    def test_read_file_verifies(self, tmp_path):
        image = CheckpointImage.capture(_task, {"x": 1})
        path = tmp_path / "img.ckpt"
        image.write_file(str(path))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x10
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            CheckpointImage.read_file(str(path))


def _suicidal(state):
    # dies without writing any report: the parent's pipe just closes
    os._exit(17)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
class TestRestartPipe:
    def test_broken_pipe_raises_checkpoint_error(self):
        # satellite: a short result pipe must not crash in struct.unpack
        image = CheckpointImage.capture(_suicidal, {}, "kamikaze")
        with pytest.raises(CheckpointError, match="mid-header"):
            image.restart_in_fork()

    def test_healthy_fork_roundtrip(self):
        image = CheckpointImage.capture(_task, {"x": 41})
        assert image.restart_in_fork() == 42
