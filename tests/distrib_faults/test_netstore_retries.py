"""NetworkStore on an unreliable link: retries, CRC gate, idempotent puts."""

import pytest

from repro.analysis.calibration import NetworkProfile
from repro.distrib.netsim import SimulatedLink
from repro.distrib.netstore import DemandPagedImage, NetworkStore
from repro.errors import RetriesExhausted
from repro.faults.plan import FaultKind, FaultPlan
from repro.memory.store import SingleLevelStore

FAST = NetworkProfile("fast", latency_s=0.001, bandwidth_bytes_s=1e8)


def make_netstore(rates, seed=0, page_size=256):
    plan = FaultPlan(seed=seed, rates=rates)
    link = SimulatedLink(FAST, fault_plan=plan, seed=seed)
    return NetworkStore(SingleLevelStore(page_size=page_size), link)


class TestLossyWrites:
    @pytest.mark.parametrize("seed", range(8))
    def test_write_survives_thirty_percent_drop(self, seed):
        ns = make_netstore({FaultKind.XFER_DROP: 0.3}, seed=seed)
        payload = bytes(range(256)) * 4
        seconds = ns.write_file("f", payload)
        assert ns.store.read_file("f") == payload
        assert seconds > 0
        # backoff is part of the caller-visible price
        assert seconds >= ns.stats["backoff_s"]

    def test_duplicate_write_applies_once(self):
        ns = make_netstore({FaultKind.XFER_DUP: 1.0})
        ns.write_file("f", b"once")
        ns.write_file("f", b"once")  # identical content re-sent
        assert ns.store.read_file("f") == b"once"
        assert ns.stats["duplicates_suppressed"] >= 2

    def test_corrupt_delivery_rejected_and_retried(self):
        # corruption fires on the first attempt only for this seed/rate
        ns = make_netstore({FaultKind.XFER_CORRUPT: 0.5}, seed=1)
        ns.write_file("f", b"precious" * 100)
        assert ns.store.read_file("f") == b"precious" * 100
        if ns.stats["corrupt_rejected"]:
            assert ns.stats["retries"] >= ns.stats["corrupt_rejected"]

    def test_total_corruption_exhausts(self):
        ns = make_netstore({FaultKind.XFER_CORRUPT: 1.0})
        with pytest.raises(RetriesExhausted):
            ns.write_file("f", b"never lands" * 50)
        # the store was never poisoned with a corrupt payload
        assert not ns.store.exists("f")
        assert ns.stats["corrupt_rejected"] == ns.retry.max_attempts


class TestLossyReads:
    @pytest.mark.parametrize("seed", range(8))
    def test_read_file_retries_to_success(self, seed):
        ns = make_netstore({FaultKind.XFER_DROP: 0.3}, seed=seed)
        ns.store.write_file("f", b"stable bytes" * 64)  # server-side state
        data, seconds = ns.read_file("f")
        assert data == b"stable bytes" * 64
        assert seconds > 0

    def test_read_page_verified(self):
        ns = make_netstore({FaultKind.XFER_DROP: 0.3}, seed=2, page_size=128)
        blob = bytes(i % 251 for i in range(1024))
        ns.store.write_file("img", blob)
        for page in range(ns.pages_of("img")):
            data, _ = ns.read_page("img", page)
            assert data == blob[page * 128 : (page + 1) * 128]


class TestDemandPagingUnderFaults:
    def test_reader_correct_at_thirty_percent_loss(self):
        ns = make_netstore({FaultKind.XFER_DROP: 0.3}, seed=4, page_size=128)
        blob = bytes(i % 13 for i in range(4096))
        image, _ = DemandPagedImage.publish(ns, "img", blob)
        reader = image.reader()
        assert reader.read(1000, 300) == blob[1000:1300]
        assert reader.read(0, 64) == blob[:64]
        acct = reader.accounting()
        assert 0 < acct.pages_fetched < acct.pages_total
        assert acct.transfer_s > 0

    def test_stats_accumulate_across_operations(self):
        ns = make_netstore({FaultKind.XFER_DROP: 0.5}, seed=6)
        ns.write_file("a", b"x" * 500)
        ns.write_file("b", b"y" * 500)
        ns.read_file("a")
        assert ns.stats["retries"] > 0
        assert ns.stats["backoff_s"] > 0


class TestDeterminism:
    def run_once(self, seed):
        ns = make_netstore(
            {FaultKind.XFER_DROP: 0.3, FaultKind.XFER_CORRUPT: 0.2}, seed=seed
        )
        times = [ns.write_file(f"f{i}", bytes([i]) * 400) for i in range(10)]
        return times, dict(ns.stats), ns.link.ledger

    def test_same_seed_identical_exchange_history(self):
        ta, sa, la = self.run_once(9)
        tb, sb, lb = self.run_once(9)
        assert ta == tb
        assert sa == sb
        assert la == lb
