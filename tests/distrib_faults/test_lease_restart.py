"""RemoteWorldLease restart edges: successor crashes, fenced originals.

Two shapes the durable-restart layer leans on: (1) a takeover successor
that itself dies mid-replay must be takeover-able again without forking
the work, and (2) an original holder that was fenced (false-positive
death declaration) and later restarts must observe the fence — a late
heartbeat must not resurrect its lease, and a late result must not
commit or re-land.
"""

import threading
import time

import pytest

from repro.cluster import ClusterRouter, ClusterShard
from repro.distrib.lease import LeaseState, RemoteWorldLease
from repro.errors import NetworkError
from repro.journal import CommitJournal, MemoryJournalStorage


class TestSuccessorCrashMidReplay:
    def test_second_takeover_continues_the_lineage(self):
        lease = RemoteWorldLease(lease_id=7, node_id=2, term_s=0.8)
        lease.declare_dead(0.4, "holder crashed")
        first = lease.takeover(0.5, new_node_id=9)
        # the successor dies while replaying the predecessor's work
        first.miss(0.7, "mid-replay crash")
        first.declare_dead(0.9, "successor crashed mid-replay")
        second = first.takeover(1.0, new_node_id=11)
        assert second.state is LeaseState.ACTIVE
        assert second.lease_id == 7
        assert second.node_id == 11
        # timing knobs survive two hops
        assert second.term_s == 0.8
        # both handoffs are auditable from the predecessors' logs
        assert "takeover" in lease.event_names
        assert "takeover" in first.event_names
        second.complete(1.2)

    def test_dead_successors_late_result_rejected(self):
        lease = RemoteWorldLease(lease_id=7, node_id=2)
        lease.declare_dead(0.3, "holder crashed")
        first = lease.takeover(0.4, new_node_id=9)
        first.declare_dead(0.6, "successor crashed mid-replay")
        first.takeover(0.7, new_node_id=11)
        # the first successor's process comes back and tries to finish:
        # its lease is settled, the result must not commit
        with pytest.raises(NetworkError, match="must not commit"):
            first.complete(0.8)

    def test_shard_successor_crash_commits_exactly_once(self):
        """Cluster-level: home dies unserved, the re-land successor dies
        mid-run, a second takeover finishes — one applied block win."""
        storages = {sid: MemoryJournalStorage() for sid in range(3)}
        shards = [
            ClusterShard(
                sid, slots=2, workers=2,
                journal=CommitJournal(storage=storages[sid]),
                journal_admission=True,
            )
            for sid in range(3)
        ]
        router = ClusterRouter(shards).start(detect=False)
        gate = threading.Event()

        def slow(ws):
            gate.wait(10)
            return 42

        try:
            ticket = router.submit("t", [slow], spec={"n": 1})
            time.sleep(0.05)
            with router._lock:
                home = router._inflight[ticket.seq].shard_id
            router.kill_shard(home)
            router.takeover(home)  # re-lands on a successor shard
            time.sleep(0.05)
            with router._lock:
                rec = router._inflight.get(ticket.seq)
            if rec is not None:
                successor = rec.shard_id
                assert successor != home
                router.kill_shard(successor)
                router.takeover(successor)  # second hop
            gate.set()
            result = ticket.result(timeout=30)
            assert result.committed
            assert result.value == 42
            audit = router.audit_applied()
            assert audit.get(ticket.seq) == 1, "exactly one applied win"
        finally:
            gate.set()
            router.stop()


class TestFencedOriginalRestart:
    def test_late_heartbeat_does_not_resurrect_a_dead_lease(self):
        lease = RemoteWorldLease(lease_id=3, node_id=2)
        lease.miss(0.1)
        lease.miss(0.2)
        lease.declare_dead(0.3, "partition false positive")
        successor = lease.takeover(0.4, new_node_id=5)
        # the fenced original restarts and heartbeats again: the lease
        # must stay DEAD — reviving it would fork the work with the
        # successor
        lease.renew(0.5)
        assert lease.state is LeaseState.DEAD
        assert not lease.alive
        assert successor.alive

    def test_restarted_original_must_not_reland_its_result(self):
        lease = RemoteWorldLease(lease_id=3, node_id=2)
        lease.declare_dead(0.3, "partition false positive")
        lease.reclaim(0.3)
        lease.takeover(0.4, new_node_id=5)
        # the restarted original observes it was fenced: completing (the
        # re-land of its computed result) is a protocol error
        with pytest.raises(NetworkError, match="must not commit"):
            lease.complete(0.6)
        assert lease.state is LeaseState.RECLAIMED

    def test_fenced_shard_never_resolves_after_restart_boundary(self):
        """A fenced shard's service reports nothing; only the journal
        speaks for it at the next restart."""
        journal = CommitJournal(storage=MemoryJournalStorage())
        shard = ClusterShard(
            0, slots=1, workers=1, journal=journal, journal_admission=True
        )
        shard.service.start()
        gate = threading.Event()
        ticket = shard.service.submit(
            "t", [lambda ws: gate.wait(10)], spec={"n": 1}
        )
        shard.fence()
        gate.set()
        # the fenced process must not resolve the ticket...
        assert not ticket.done
        # ...but the durable ack survives for the next restore
        sealed = journal.sealed_unapplied_intents("admit")
        assert [i["data"]["request"] for i in sealed] == [ticket.seq]
