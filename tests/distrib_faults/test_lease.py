"""Leased remote worlds: the state machine and supervised crash recovery."""

import pytest

from repro.analysis.calibration import NetworkProfile
from repro.distrib.lease import (
    LeaseState,
    RemoteNode,
    RemoteWorldLease,
    heartbeat_lost,
)
from repro.distrib.netsim import SimulatedLink
from repro.distrib.rfork import RemoteFork
from repro.errors import NetworkError
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.supervisor import Supervisor

FAST = NetworkProfile("fast", latency_s=0.001, bandwidth_bytes_s=1e8)


def _answer(state):
    return state.get("x", 0) + 40


class TestLeaseStateMachine:
    def test_grant_and_complete(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        assert lease.state is LeaseState.ACTIVE
        lease.renew(0.1)
        lease.complete(0.2)
        assert lease.state is LeaseState.COMPLETED
        assert lease.event_names == ["granted", "completed"]

    def test_miss_suspects_then_probe_recovers(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        lease.miss(0.1, "beat lost")
        assert lease.state is LeaseState.SUSPECT
        lease.renew(0.2)
        assert lease.state is LeaseState.ACTIVE
        assert lease.consecutive_misses == 0
        assert "recovered" in lease.event_names

    def test_declare_dead_then_reclaim(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        for i in range(3):
            lease.miss(0.1 * (i + 1))
        lease.declare_dead(0.4, "3 consecutive misses")
        lease.reclaim(0.4)
        assert lease.state is LeaseState.RECLAIMED

    def test_cannot_reclaim_living_lease(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        with pytest.raises(NetworkError):
            lease.reclaim(0.1)

    def test_late_result_from_reclaimed_world_rejected(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        lease.declare_dead(0.3, "test")
        lease.reclaim(0.3)
        with pytest.raises(NetworkError, match="must not commit"):
            lease.complete(0.5)

    def test_term_expiry(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2, term_s=0.5)
        lease.renew(0.2)
        assert not lease.check_expiry(0.6)
        assert lease.check_expiry(0.75)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(NetworkError):
            RemoteWorldLease(lease_id=1, node_id=2, term_s=0.0)
        with pytest.raises(NetworkError):
            RemoteWorldLease(lease_id=1, node_id=2, miss_threshold=0)


class TestTerminalTransitionGuards:
    """Terminal states are sticky: late detectors must not re-log or revive."""

    def test_double_declare_dead_is_a_noop(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        lease.declare_dead(0.3, "misses")
        events = list(lease.event_names)
        lease.declare_dead(0.4, "late detector repeats itself")
        assert lease.state is LeaseState.DEAD
        assert lease.event_names == events  # nothing re-logged

    def test_declare_dead_on_completed_is_a_noop(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        lease.complete(0.2)
        lease.declare_dead(0.3, "detector fired after commit")
        assert lease.state is LeaseState.COMPLETED
        assert lease.event_names == ["granted", "completed"]

    def test_declare_dead_on_reclaimed_is_a_noop(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        lease.declare_dead(0.3, "misses")
        lease.reclaim(0.3)
        lease.declare_dead(0.4, "second detector path")
        assert lease.state is LeaseState.RECLAIMED

    def test_reclaim_twice_does_not_relog(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        lease.declare_dead(0.3, "misses")
        lease.reclaim(0.3)
        events = list(lease.event_names)
        lease.reclaim(0.5)
        assert lease.state is LeaseState.RECLAIMED
        assert lease.event_names == events

    def test_reclaim_after_complete_still_rejected(self):
        lease = RemoteWorldLease(lease_id=1, node_id=2)
        lease.complete(0.2)
        with pytest.raises(NetworkError):
            lease.reclaim(0.3)


class TestTakeover:
    def test_takeover_requires_a_dead_holder(self):
        lease = RemoteWorldLease(lease_id=7, node_id=2)
        with pytest.raises(NetworkError, match="declare the holder dead"):
            lease.takeover(0.2, new_node_id=3)
        lease.complete(0.2)
        with pytest.raises(NetworkError):
            lease.takeover(0.3, new_node_id=3)

    def test_takeover_hands_work_to_the_successor(self):
        lease = RemoteWorldLease(
            lease_id=7, node_id=2, term_s=0.8, heartbeat_s=0.2, miss_threshold=5
        )
        lease.declare_dead(0.4, "holder crashed")
        successor = lease.takeover(0.5, new_node_id=9)
        assert successor.lease_id == 7
        assert successor.node_id == 9
        assert successor.state is LeaseState.ACTIVE
        assert successor.granted_at_s == 0.5
        # timing knobs carry over; the lineage is on the predecessor's log
        assert successor.term_s == 0.8
        assert successor.miss_threshold == 5
        assert "takeover" in lease.event_names

    def test_takeover_after_reclaim_allowed(self):
        lease = RemoteWorldLease(lease_id=7, node_id=2)
        lease.declare_dead(0.3, "misses")
        lease.reclaim(0.3)
        successor = lease.takeover(0.4, new_node_id=5)
        assert successor.state is LeaseState.ACTIVE


class TestFaultPlanHooks:
    def test_remote_node_crash_time(self):
        plan = FaultPlan(
            seed=0, rates={FaultKind.REMOTE_CRASH: 1.0}, remote_crash_fraction=0.25
        )
        node = RemoteNode(node_id=3, plan=plan)
        assert node.crash_time(work_s=2.0) == pytest.approx(0.5)
        assert RemoteNode(node_id=3, plan=None).crash_time(2.0) is None

    def test_heartbeat_loss_deterministic(self):
        plan = FaultPlan(seed=5, rates={FaultKind.HEARTBEAT_MISS: 0.4})
        a = [heartbeat_lost(plan, 1, b) for b in range(64)]
        b = [heartbeat_lost(plan, 1, b) for b in range(64)]
        assert a == b
        assert any(a) and not all(a)


def make_supervisor(rates, seed=0, **plan_knobs):
    plan = FaultPlan(seed=seed, rates=rates, **plan_knobs)
    link = SimulatedLink(FAST, fault_plan=plan, seed=seed)
    rfork = RemoteFork(link=link, node_id=1)
    sup = Supervisor(fault_plan=plan)
    return sup, rfork


class TestRunRemote:
    def test_quiet_plan_completes_remotely(self):
        sup, rfork = make_supervisor({})
        outcome = sup.run_remote(_answer, {"x": 2}, rfork=rfork, work_s=0.5)
        assert outcome.winner.value == 42
        assert not outcome.relanded
        assert outcome.lease_events[-1]["event"] == "completed"
        assert outcome.extras["remote"]["beats_missed"] == 0

    def test_killed_remote_world_relands_locally(self):
        # acceptance: a killed remote world is detected by lease expiry
        # and the work re-lands locally with the correct value
        sup, rfork = make_supervisor({FaultKind.REMOTE_CRASH: 1.0})
        outcome = sup.run_remote(
            _answer, {"x": 2}, rfork=rfork, work_s=1.0, local_backend="sequential"
        )
        assert outcome.winner.value == 42
        assert outcome.relanded
        events = [e["event"] for e in outcome.lease_events]
        assert events[0] == "granted"
        assert "declare-dead" in events
        assert events[-1] == "reclaim-orphan"
        # the degradation ladder starts at the remote rung
        assert outcome.extras["degraded"][0]["backend"] == "remote"

    def test_unreachable_node_relands(self):
        sup, rfork = make_supervisor({FaultKind.XFER_DROP: 1.0})
        outcome = sup.run_remote(
            _answer, {"x": 2}, rfork=rfork, local_backend="sequential"
        )
        assert outcome.winner.value == 42
        assert outcome.relanded
        assert outcome.extras["degraded"][0]["error"] == "remote-unreachable"
        assert outcome.extras["remote"]["ship"]["retries"] == rfork.retry.max_retries

    def test_lost_heartbeats_rescued_by_probe(self):
        # beats vanish in flight but the node is alive and the link is up:
        # every suspicion must be rescued by a probe, never a declaration
        sup, rfork = make_supervisor({FaultKind.HEARTBEAT_MISS: 0.5}, seed=2)
        outcome = sup.run_remote(_answer, {"x": 2}, rfork=rfork, work_s=1.0)
        assert outcome.winner.value == 42
        assert not outcome.relanded
        events = [e["event"] for e in outcome.lease_events]
        assert "declare-dead" not in events
        if "suspect" in events:
            assert "probe-ok" in events

    @pytest.mark.parametrize("seed", range(6))
    def test_always_commits_under_mixed_faults(self, seed):
        sup, rfork = make_supervisor(
            {
                FaultKind.XFER_DROP: 0.3,
                FaultKind.REMOTE_CRASH: 0.3,
                FaultKind.HEARTBEAT_MISS: 0.2,
            },
            seed=seed,
        )
        outcome = sup.run_remote(
            _answer, {"x": 2}, rfork=rfork, work_s=1.0,
            local_backend="sequential",
        )
        assert outcome.winner is not None
        assert outcome.winner.value == 42

    def test_same_seed_identical_lease_history(self):
        def run(seed):
            sup, rfork = make_supervisor(
                {
                    FaultKind.XFER_DROP: 0.2,
                    FaultKind.REMOTE_CRASH: 0.4,
                    FaultKind.HEARTBEAT_MISS: 0.3,
                },
                seed=seed,
            )
            outcome = sup.run_remote(
                _answer, {"x": 2}, rfork=rfork, work_s=1.0,
                local_backend="sequential",
            )
            return (
                [(e["at_s"], e["event"], e["detail"]) for e in outcome.lease_events],
                outcome.relanded,
                outcome.winner.value,
            )

        assert run(13) == run(13)
        # and seeds genuinely vary the history
        histories = {tuple(map(tuple, run(s)[0])) for s in range(5)}
        assert len(histories) > 1
