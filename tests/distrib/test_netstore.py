"""Tests for the network store and demand-paged images."""

import pytest

from repro.analysis.calibration import NetworkProfile
from repro.distrib.netsim import SimulatedLink
from repro.distrib.netstore import (
    DemandPagedImage,
    NetworkStore,
    breakeven_fraction,
)
from repro.errors import NetworkError
from repro.memory.store import SingleLevelStore


def make_netstore(latency=0.01, bandwidth=1e6, page_size=1024):
    return NetworkStore(
        SingleLevelStore(page_size=page_size),
        SimulatedLink(NetworkProfile("lan", latency, bandwidth)),
    )


class TestNetworkStore:
    def test_roundtrip_charges_link(self):
        ns = make_netstore()
        up = ns.write_file("f", b"x" * 5000)
        data, down = ns.read_file("f")
        assert data == b"x" * 5000
        assert up > 0 and down > 0
        assert ns.link.bytes_moved == 10_000

    def test_read_page(self):
        ns = make_netstore(page_size=1024)
        ns.write_file("f", bytes(range(256)) * 10)  # 2560 bytes, 3 pages
        page, seconds = ns.read_page("f", 1)
        assert page == (bytes(range(256)) * 10)[1024:2048]
        assert seconds > 0

    def test_read_page_out_of_range(self):
        ns = make_netstore()
        ns.write_file("f", b"abc")
        with pytest.raises(NetworkError):
            ns.read_page("f", 5)


class TestDemandPagedImage:
    def _published(self, image_bytes=64 * 1024, page_size=1024):
        ns = make_netstore(page_size=page_size)
        image, upload_s = DemandPagedImage.publish(ns, "ckpt", bytes(image_bytes))
        return ns, image, upload_s

    def test_publish_uploads_once(self):
        ns, image, upload_s = self._published()
        assert upload_s > 0
        assert image.pages == 64

    def test_reader_fetches_only_touched_pages(self):
        _, image, _ = self._published()
        reader = image.reader()
        reader.read(0, 100)  # one page
        reader.read(10_000, 100)  # another
        acct = reader.accounting()
        assert acct.pages_fetched == 2
        assert acct.fetch_fraction == pytest.approx(2 / 64)
        assert acct.transfer_s > 0

    def test_cache_avoids_refetch(self):
        _, image, _ = self._published()
        reader = image.reader()
        reader.read(0, 50)
        t1 = reader.transfer_s
        reader.read(10, 50)  # same page
        assert reader.transfer_s == t1

    def test_cross_page_read(self):
        ns = make_netstore(page_size=1024)
        payload = bytes(range(256)) * 8  # 2048 bytes
        image, _ = DemandPagedImage.publish(ns, "x", payload)
        reader = image.reader()
        assert reader.read(1000, 100) == payload[1000:1100]
        assert reader.accounting().pages_fetched == 2

    def test_lazy_beats_eager_when_sparse(self):
        _, image, _ = self._published()
        reader = image.reader()
        reader.read(0, 100)
        assert reader.accounting().transfer_s < image.eager_fetch_time()

    def test_eager_beats_lazy_when_dense(self):
        # high latency link: per-page faults are expensive
        ns = make_netstore(latency=0.05, bandwidth=1e7, page_size=1024)
        image, _ = DemandPagedImage.publish(ns, "ckpt", bytes(32 * 1024))
        reader = image.reader()
        for page in range(32):
            reader.read(page * 1024, 1)
        assert reader.accounting().transfer_s > image.eager_fetch_time()


class TestBreakeven:
    def test_fraction_in_unit_range(self):
        link = SimulatedLink(NetworkProfile("l", 0.05, 200 * 1024))
        frac = breakeven_fraction(70 * 1024, link, 2048)
        assert 0 < frac <= 1.0

    def test_latency_dominated_links_favor_eager(self):
        slow_latency = SimulatedLink(NetworkProfile("l", 1.0, 1e9))
        fast_latency = SimulatedLink(NetworkProfile("l", 0.0001, 1e6))
        f_slow = breakeven_fraction(1 << 20, slow_latency, 4096)
        f_fast = breakeven_fraction(1 << 20, fast_latency, 4096)
        # with huge per-fault latency, lazy only wins if you touch almost
        # nothing; with negligible latency, lazy wins almost always
        assert f_slow < f_fast
