"""Tests for simulated links, remote fork, and process migration."""

import os

import pytest

from repro.analysis.calibration import RFORK_LINK, NetworkProfile
from repro.distrib.migration import migrate_process
from repro.distrib.netsim import SimulatedLink
from repro.distrib.rfork import RemoteFork
from repro.errors import CheckpointError, NetworkError
from repro.kernel import Kernel


class TestSimulatedLink:
    def test_transfer_time_latency_plus_bandwidth(self):
        link = SimulatedLink(NetworkProfile("t", latency_s=0.1, bandwidth_bytes_s=1000))
        assert link.transfer_time(500) == pytest.approx(0.1 + 0.5)

    def test_ledger_accumulates(self):
        link = SimulatedLink(NetworkProfile("t", 0.01, 1e6))
        link.transfer(1000)
        link.transfer(2000)
        assert link.bytes_moved == 3000
        assert len(link.ledger) == 2
        assert link.clock == pytest.approx(link.busy_seconds)

    def test_jitter_reproducible_and_bounded(self):
        a = SimulatedLink(NetworkProfile("t", 0.01, 1e6), jitter=0.5, seed=7)
        b = SimulatedLink(NetworkProfile("t", 0.01, 1e6), jitter=0.5, seed=7)
        ta, tb = a.transfer(1000), b.transfer(1000)
        assert ta == tb
        nominal = a.transfer_time(1000)
        assert nominal <= ta <= nominal * 1.5

    def test_negative_payload_rejected(self):
        link = SimulatedLink(NetworkProfile("t", 0.01, 1e6))
        with pytest.raises(NetworkError):
            link.transfer(-1)


def _remote_task(state):
    return state["x"] * 2


class TestRemoteFork:
    def test_model_reproduces_1989_magnitudes(self):
        rf = RemoteFork(SimulatedLink(RFORK_LINK))
        cost = rf.model(70 * 1024)
        # "slightly less than a second" of checkpoint work
        assert 0.7 < cost.checkpoint_s < 1.0
        # observed ~1.3 s once the network is included
        assert 1.1 < cost.total_s < 1.6

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_execute_returns_result_and_breakdown(self):
        rf = RemoteFork(SimulatedLink(NetworkProfile("fast", 0.0, 1e9)))
        result, cost = rf.execute(_remote_task, {"x": 21})
        assert result == 42
        assert cost.image_bytes > 0
        assert cost.checkpoint_s >= 0 and cost.restart_s > 0


def _echo_server(ctx):
    total = 0
    while True:
        msg = yield ctx.recv()
        if msg.data == "stop":
            return total
        total += msg.data
        yield ctx.put("total", total)


class TestMigration:
    def _park_server(self, kernel):
        pid = kernel.spawn(_echo_server, name="server")
        kernel.run(until=0.001)  # let it reach recv
        return pid

    def test_migrate_recv_parked_process(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = self._park_server(src)
        link = SimulatedLink(NetworkProfile("lan", 0.01, 1e6))
        record = migrate_process(src, pid, dst, link)
        assert record.src_pid == pid
        assert record.image_bytes > 0
        assert record.transfer_s > 0
        # the migrated server keeps working on the destination machine
        def driver(ctx, server):
            yield ctx.send(server, 20)
            yield ctx.send(server, 22)
            yield ctx.send(server, "stop")

        dst.spawn(driver, record.dst_pid)
        dst.run()
        assert dst.result_of(record.dst_pid) == 42

    def test_migration_carries_heap_state(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = src.spawn(_echo_server, name="server")

        def feeder(ctx, server):
            yield ctx.send(server, 100)

        src.spawn(feeder, pid)
        src.run(until=1.0)  # server handled 100, parked at recv again
        record = migrate_process(src, pid, dst)

        def finisher(ctx, server):
            yield ctx.send(server, 1)
            yield ctx.send(server, "stop")

        dst.spawn(finisher, record.dst_pid)
        dst.run()
        assert dst.result_of(record.dst_pid) == 101  # state survived the move

    def test_migration_carries_queued_messages(self):
        # a parked receiver normally drains its mailbox, so manufacture a
        # queued message directly (white-box) and check it travels along
        from repro.ipc.message import Message

        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = self._park_server(src)
        world = next(w for w in src.worlds_of(pid) if w.alive)
        world.mailbox.deliver(Message(sender=99, dest=pid, data=7, msg_id=50))
        world.mailbox.deliver(Message(sender=99, dest=pid, data="stop", msg_id=51))
        record = migrate_process(src, pid, dst)
        assert record.queued_messages == 2
        dst.run()
        assert dst.result_of(record.dst_pid) == 7

    def test_cannot_migrate_running_process(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)

        def cruncher(ctx):
            yield ctx.compute(100.0)

        pid = src.spawn(cruncher)
        src.run(until=1.0)
        with pytest.raises(CheckpointError):
            migrate_process(src, pid, dst)

    def test_source_copy_is_dead_after_migration(self):
        src, dst = Kernel(cpus=2), Kernel(cpus=2)
        pid = self._park_server(src)
        migrate_process(src, pid, dst)
        assert all(not w.alive for w in src.worlds_of(pid))
        # and no completion fact was fabricated for the moved pid
        assert pid not in src.facts
