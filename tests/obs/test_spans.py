"""Tests for the span tracer: lifecycle, dispositions, bounded buffer."""

import pytest

from repro.obs.spans import DISPOSITIONS, NULL_TRACER, Tracer


def make_tracer(**kwargs):
    # a manual clock keeps starts/ends deterministic
    box = {"t": 100.0}
    tracer = Tracer(clock=lambda: box["t"], **kwargs)
    return tracer, box


def test_begin_end_relative_times():
    tracer, box = make_tracer()
    sid = tracer.begin("w", track=1, wid=1, pid=10, lineage=(1,))
    box["t"] = 102.5
    tracer.end(sid, disposition="committed", cpu_s=2.0)
    (span,) = tracer.spans
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration == 2.5
    assert span.disposition == "committed"
    assert span.attrs["cpu_s"] == 2.0
    assert span.lineage == (1,)


def test_explicit_t_overrides_clock():
    tracer, _ = make_tracer()
    sid = tracer.begin("w", t=5.0)
    tracer.end(sid, t=9.0)
    assert (tracer.spans[0].start, tracer.spans[0].end) == (5.0, 9.0)


def test_context_manager_dispositions():
    tracer, _ = make_tracer()
    with tracer.span("clean"):
        pass
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError()
    with tracer.span("settled") as h:
        h.settle("eliminated", reason="sibling won")
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["clean"].disposition == "committed"
    assert by_name["boom"].disposition == "aborted"
    assert by_name["settled"].disposition == "eliminated"
    assert by_name["settled"].attrs["reason"] == "sibling won"


def test_complete_and_instant():
    tracer, _ = make_tracer()
    tracer.complete("done", 1.0, 3.0, disposition="committed")
    tracer.instant("mark", t=2.0, note="x")
    span, inst = tracer.spans
    assert (span.start, span.end, span.kind) == (1.0, 3.0, "span")
    assert (inst.start, inst.end, inst.kind) == (2.0, 2.0, "instant")


def test_buffer_limit_counts_drops():
    tracer, _ = make_tracer(limit=2)
    ids = [tracer.begin(f"s{i}") for i in range(4)]
    assert ids[2] == -1 and ids[3] == -1
    assert len(tracer.spans) == 2
    assert tracer.dropped == 2
    # ending recorded spans still works past the limit
    tracer.end(ids[0], disposition="committed")
    assert tracer.spans[0].disposition == "committed"


def test_finish_open_settles_speculative():
    tracer, _ = make_tracer()
    tracer.begin("a")
    tracer.begin("b")
    sid = tracer.begin("c")
    tracer.end(sid, disposition="committed")
    assert len(tracer.open_spans()) == 2
    closed = tracer.finish_open(t=9.0)
    assert closed == 2
    assert not tracer.open_spans()
    assert sorted(
        s.disposition for s in tracer.spans
    ) == ["committed", "speculative", "speculative"]


def test_disabled_tracer_is_inert():
    tracer = Tracer(enabled=False)
    assert tracer.begin("x") == -1
    assert tracer.complete("x", 0, 1) == -1
    assert tracer.instant("x") == -1
    with tracer.span("x"):
        pass
    assert len(tracer) == 0
    assert NULL_TRACER.begin("y") == -1


def test_track_names_and_dispositions_registry():
    tracer, _ = make_tracer()
    tracer.set_track_name(3, "wid 3 · main")
    assert tracer.track_names[3] == "wid 3 · main"
    assert set(DISPOSITIONS) == {
        "speculative", "committed", "eliminated", "aborted"
    }
