"""Tests for the metrics registry: kinds, labels, strictness, threads."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    DuplicateMetricError,
    FuncGauge,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    bind_attr_gauges,
)


# -- counters / gauges -------------------------------------------------------
def test_counter_counts_and_totals():
    c = Counter("c", labelnames=("site",))
    c.inc(site="a")
    c.inc(2.0, site="a")
    c.inc(site="b")
    assert c.value(site="a") == 3.0
    assert c.value(site="b") == 1.0
    assert c.total() == 4.0


def test_counter_rejects_decrease():
    c = Counter("c")
    with pytest.raises(MetricError):
        c.inc(-1.0)


def test_counter_label_cardinality_enforced():
    c = Counter("c", labelnames=("site", "kind"))
    with pytest.raises(MetricError):
        c.inc(site="a")  # missing "kind"
    with pytest.raises(MetricError):
        c.inc(site="a", kind="x", extra="nope")


def test_gauge_set_inc_dec():
    g = Gauge("g")
    g.set(5.0)
    g.inc(2.0)
    g.dec(4.0)
    assert g.value() == 3.0


def test_func_gauge_reads_live_value():
    box = {"v": 1.0}
    g = FuncGauge("fg", lambda: box["v"])
    assert g.value() == 1.0
    box["v"] = 7.0
    assert g.samples() == [{"labels": {}, "value": 7.0}]


def test_invalid_metric_name_rejected():
    with pytest.raises(MetricError):
        Counter("not a name")


# -- histograms --------------------------------------------------------------
def test_histogram_bucket_edges():
    h = Histogram("h", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.1, 0.5, 1.0, 5.0, 100.0):
        h.observe(v)
    # boundary values land in the bucket whose upper edge they equal
    assert h.bucket_counts() == [2, 2, 1, 1]
    assert h.count() == 6
    assert h.sum() == pytest.approx(106.65)


def test_histogram_rejects_bad_edges():
    with pytest.raises(MetricError):
        Histogram("h", buckets=())
    with pytest.raises(MetricError):
        Histogram("h", buckets=(1.0, 1.0))
    with pytest.raises(MetricError):
        Histogram("h", buckets=(2.0, 1.0))


def test_default_buckets_are_increasing():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    Histogram("h")  # constructs without raising


# -- registry strictness -----------------------------------------------------
def test_duplicate_registration_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(DuplicateMetricError):
        reg.gauge("m")
    with pytest.raises(DuplicateMetricError):
        reg.register(Counter("m"))


def test_get_or_create_requires_matching_signature():
    reg = MetricsRegistry()
    c = reg.counter("m", labelnames=("a",))
    assert reg.counter("m", labelnames=("a",)) is c
    with pytest.raises(DuplicateMetricError):
        reg.counter("m", labelnames=("a", "b"))
    with pytest.raises(DuplicateMetricError):
        reg.histogram("m")


def test_gauge_fn_rebinds_existing_shim():
    reg = MetricsRegistry()
    g1 = reg.gauge_fn("shim", lambda: 1.0)
    g2 = reg.gauge_fn("shim", lambda: 2.0)
    assert g1 is g2
    assert g1.value() == 2.0
    # rebinding applies to FuncGauges only
    reg.counter("plain")
    with pytest.raises(DuplicateMetricError):
        reg.gauge_fn("plain", lambda: 0.0)


def test_registry_introspection():
    reg = MetricsRegistry()
    reg.counter("a")
    reg.gauge("b")
    assert "a" in reg and "b" in reg and "c" not in reg
    assert reg.names() == ["a", "b"]
    assert len(reg) == 2
    assert [d["name"] for d in reg.collect()] == ["a", "b"]


def test_snapshot_is_flat_and_labeled():
    reg = MetricsRegistry()
    reg.counter("c", labelnames=("k",)).inc(k="x")
    reg.gauge("g").set(2.5)
    snap = reg.snapshot()
    assert snap["c{k=x}"] == 1.0
    assert snap["g"] == 2.5


def test_bind_attr_gauges_absorbs_memory_stats():
    from repro.memory.stats import MemoryStats

    reg = MetricsRegistry()
    stats = MemoryStats()
    bind_attr_gauges(reg, stats, ("cow_faults", "forks"), prefix="mw_mem")
    stats.cow_faults = 11
    stats.forks = 3
    snap = reg.snapshot()
    assert snap["mw_mem_cow_faults"] == 11.0
    assert snap["mw_mem_forks"] == 3.0


def test_bind_attr_gauges_fails_fast_on_typo():
    reg = MetricsRegistry()
    with pytest.raises(AttributeError):
        bind_attr_gauges(reg, object(), ("nope",), prefix="x")


# -- thread safety -----------------------------------------------------------
def test_counter_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("c", labelnames=("t",))
    h = reg.histogram("h", buckets=(0.5, 1.0))

    def worker(tag):
        for _ in range(2000):
            c.inc(t=tag)
            h.observe(0.25)

    threads = [threading.Thread(target=worker, args=(str(i % 2),)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.total() == 16000
    assert h.count() == 16000


def test_metrics_under_thread_backend():
    """The thread backend's workers increment one shared registry."""
    from repro.core.worlds import run_alternatives
    from repro.obs import Observability

    obs = Observability()

    def make(i):
        def alt(ws):
            obs.registry.counter("from_workers").inc()
            return i

        alt.__name__ = f"alt{i}"
        return alt

    out = run_alternatives(
        [make(i) for i in range(6)], backend="thread", obs=obs
    )
    assert out.winner is not None
    assert obs.registry.get("from_workers").total() >= 1
    assert obs.registry.get("mw_backend_blocks_total").value(
        backend="thread", result="committed"
    ) == 1
