"""Integration tests for the telemetry plane across the layers.

Covers the acceptance criteria: a traced run yields a Chrome trace with
one lane per world and eliminated worlds visibly terminated, and a
SpeculationReport whose span-derived quantities agree with the kernel's
own counters within 1%.
"""

import pytest

from repro.core.alternative import Alternative
from repro.core.worlds import run_alternatives, run_alternatives_sim
from repro.faults.plan import FaultKind, FaultPlan
from repro.kernel import Kernel
from repro.obs import Observability
from repro.obs.export import (
    SpeculationReport,
    chrome_trace_events,
    validate_chrome_trace,
    validate_jsonl,
    validate_metrics,
    write_chrome_trace,
    write_jsonl,
)


def _alts(costs=(3.0, 1.0, 2.0)):
    alternatives = []
    for i, cost in enumerate(costs):
        def body(ws, _i=i):
            ws["winner"] = _i
            return _i

        alternatives.append(
            Alternative(body, name=f"method_{i}", sim_cost=cost)
        )
    return alternatives


def traced_sim_run(obs, **kwargs):
    outcome, kernel = run_alternatives_sim(_alts(), cpus=4, obs=obs, **kwargs)
    obs.finalize(kernel.now)
    return outcome, kernel


# -- world spans -------------------------------------------------------------
def test_world_spans_one_lane_per_world():
    obs = Observability()
    outcome, kernel = traced_sim_run(obs)
    assert outcome.value == 1  # fastest sim_cost wins

    world_spans = [
        s for s in obs.tracer.spans if s.cat == "world" and s.kind == "span"
    ]
    # driver + 3 alternatives + reaper
    assert len(world_spans) == len(kernel.worlds)
    # one lane per world: track is the wid, every wid distinct, named
    assert all(s.track == s.wid for s in world_spans)
    wids = [s.wid for s in world_spans]
    assert len(set(wids)) == len(wids)
    assert all(wid in obs.tracer.track_names for wid in wids)
    # lineage chains run root -> leaf
    children = [s for s in world_spans if len(s.lineage) > 1]
    assert children and all(s.lineage[-1] == s.wid for s in children)

    by_disposition = {}
    for s in world_spans:
        by_disposition.setdefault(s.disposition, []).append(s)
    assert len(by_disposition["eliminated"]) == 2
    # the losers' lanes are cut short at the commit, before the run ends
    wall = max(s.end for s in world_spans)
    assert all(s.end < wall for s in by_disposition["eliminated"])


def test_alt_block_span_and_metrics():
    obs = Observability()
    traced_sim_run(obs)
    (block,) = [s for s in obs.tracer.spans if s.cat == "alt-block"]
    assert block.disposition == "committed"
    assert block.attrs["n_eliminated"] == 2
    assert block.attrs["response_s"] >= block.attrs["c_best_s"] > 0
    reg = obs.registry
    assert reg.get("mw_alt_blocks_total").value(result="committed") == 1
    assert reg.get("mw_worlds_total").value(disposition="eliminated") == 2
    assert reg.get("mw_commit_response_s").count() == 1


# -- acceptance: span-derived report vs kernel counters ----------------------
def test_speculation_report_agrees_with_kernel_counters():
    obs = Observability()
    _, kernel = traced_sim_run(obs)

    from_spans = SpeculationReport.from_kernel(kernel, obs)
    from_counters = SpeculationReport.from_kernel(kernel, None)
    assert from_spans.source == "spans"
    assert from_counters.source == "kernel"

    # wasted-work ratio from spans within 1% of the kernel's own counters
    assert from_spans.wasted_work_ratio == pytest.approx(
        from_counters.wasted_work_ratio, rel=0.01
    )
    assert from_spans.total_cpu_s == pytest.approx(
        kernel.utilization_report().total_cpu_s, rel=0.01
    )
    # write fraction is counter-derived in both cases: exact agreement
    stats = kernel.stats
    expected_wf = stats.cow_faults / stats.pte_copies if stats.pte_copies else 0.0
    assert from_spans.write_fraction == from_counters.write_fraction == expected_wf
    # and both agree with the live mw_mem_* gauges
    snap = obs.registry.snapshot()
    assert snap["mw_mem_cow_faults"] == stats.cow_faults
    assert snap["mw_mem_pte_copies"] == stats.pte_copies


# -- acceptance: traced Table I run loads as a Chrome trace ------------------
def test_table_one_row_traced_chrome_trace(tmp_path):
    from repro.apps.poly.rootfind.parallel import (
        ParallelRootfinder,
        default_table_polynomial,
    )

    obs = Observability()
    finder = ParallelRootfinder(default_table_polynomial(degree=6))
    row = finder.table_one_row(3, obs=obs)
    assert row.procs == 3
    obs.finalize()

    world_spans = [
        s for s in obs.tracer.spans if s.cat == "world" and s.kind == "span"
    ]
    assert world_spans

    trace_path = str(tmp_path / "table1.trace.json")
    jsonl_path = str(tmp_path / "table1.spans.jsonl")
    assert write_chrome_trace(obs.tracer, trace_path) > 0
    assert validate_chrome_trace(trace_path) > 0
    assert write_jsonl(obs.tracer, jsonl_path) == len(obs.tracer.spans)
    assert validate_jsonl(jsonl_path) == len(obs.tracer.spans)
    assert validate_metrics(obs.registry) > 0

    events = chrome_trace_events(obs.tracer)
    lanes = [e for e in events if e["ph"] == "X" and "wid" in e["args"]]
    # one lane per world
    assert {e["tid"] for e in lanes} == {s.wid for s in world_spans}
    # eliminated/aborted worlds are visibly terminated: their lanes end
    # strictly before the surviving driver's lane does
    wall_us = max(e["ts"] + e["dur"] for e in lanes)
    losers = [
        e for e in lanes
        if e["args"]["disposition"] in ("eliminated", "aborted")
    ]
    assert losers
    assert all(e["ts"] + e["dur"] < wall_us for e in losers)


# -- fault-plane correlation -------------------------------------------------
def test_fault_injections_correlate_with_annotations():
    plan = FaultPlan(seed=3, rates={FaultKind.STALL: 1.0}, stall_s=0.5)
    obs = Observability()
    kernel = Kernel(cpus=1, fault_plan=plan, obs=obs)

    def program(ctx):
        yield ctx.compute(0.1)
        yield ctx.compute(0.1)
        return "done"

    kernel.spawn(program, name="main")
    kernel.run()
    obs.finalize(kernel.now)

    n = len(kernel.faults_injected)
    assert n == 2  # rate 1.0: every costed op stalls
    # every injection landed in the plan's correlation log...
    assert len(plan.injections) == n
    assert all(
        rec["site"] == "compute" and rec["kind"] == "stall"
        for rec in plan.injections
    )
    # ...in the metrics plane...
    counter = obs.registry.get("mw_faults_injected_total")
    assert counter.value(site="compute", kind="stall") == n
    # ...and as cat="fault" annotation instants on the world's track
    instants = [
        s for s in obs.tracer.spans
        if s.cat == "fault" and s.kind == "instant"
    ]
    assert len(instants) == n
    assert all(s.name == "fault:stall" for s in instants)
    # the stall really happened: 2 ops + 2 stalls of virtual time
    assert kernel.now == pytest.approx(0.2 + 2 * 0.5, rel=0.01)


# -- journal / network / lease spans -----------------------------------------
def test_journal_transaction_spans_and_counters():
    from repro.journal.wal import CommitJournal

    obs = Observability()
    journal = CommitJournal(obs=obs)
    seq = journal.begin("block", winner=1)
    journal.seal(seq)
    journal.mark_applied(seq)
    seq2 = journal.begin("block")
    journal.abort(seq2, reason="no winner")

    spans = [s for s in obs.tracer.spans if s.cat == "journal"]
    assert [(s.name, s.disposition) for s in spans] == [
        ("txn:block", "committed"),
        ("txn:block", "aborted"),
    ]
    c = obs.registry.get("mw_journal_txns_total")
    assert c.value(kind="block", phase="intent") == 2
    assert c.value(kind="block", phase="seal") == 1
    assert c.value(kind="block", phase="applied") == 1
    assert c.value(kind="block", phase="abort") == 1


def test_link_transfer_spans_and_drop_correlation():
    from repro.distrib.netsim import NetworkProfile, SimulatedLink, TransferDropped

    obs = Observability()
    plan = FaultPlan.lossy(seed=0, rate=1.0)
    # the link wires plan -> obs itself when given both
    link = SimulatedLink(
        NetworkProfile("lan", 0.001, 1e6), fault_plan=plan, link_id=7, obs=obs
    )
    with pytest.raises(TransferDropped):
        link.transfer(4096)

    c = obs.registry.get("mw_net_transfers_total")
    assert c.value(link="7", result="dropped") == 1
    (span,) = [s for s in obs.tracer.spans if s.cat == "net"]
    assert span.disposition == "aborted"
    assert span.attrs["fault"] == "transfer-drop"
    assert span.track == "link:7"
    # the drop is correlated on the same track as the transfer span
    (fault,) = [s for s in obs.tracer.spans if s.cat == "fault"]
    assert fault.track == "link:7"
    assert obs.registry.get("mw_faults_injected_total").value(
        site="link", kind="transfer-drop"
    ) == 1


def test_lease_lifecycle_span():
    from repro.distrib.lease import RemoteWorldLease

    obs = Observability()
    lease = RemoteWorldLease(lease_id=4, node_id=2, obs=obs)
    lease.miss(0.1, reason="beat lost")
    lease.renew(0.2)
    lease.complete(0.3)

    (span,) = [
        s for s in obs.tracer.spans
        if s.cat == "distrib" and s.kind == "span"
    ]
    assert span.name == "lease:4"
    assert span.disposition == "committed"
    assert span.end == pytest.approx(0.3)
    assert span.attrs["beats_ok"] == 1
    # suspicion and recovery land as instants on the lease's track
    instants = [s.name for s in obs.tracer.spans if s.kind == "instant"]
    assert instants == ["lease:suspect", "lease:recovered"]


def test_sequential_backend_block_span():
    obs = Observability()

    def ok(ws):
        return 42

    out = run_alternatives([ok], backend="sequential", obs=obs)
    assert out.winner is not None
    blocks = [s for s in obs.tracer.spans if s.cat == "alt-block"]
    assert len(blocks) == 1 and blocks[0].attrs["backend"] == "sequential"
    assert obs.registry.get("mw_backend_blocks_total").value(
        backend="sequential", result="committed"
    ) == 1
