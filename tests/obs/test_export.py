"""Tests for the exporters and their schema validators."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.export import (
    SCHEMA_VERSION,
    SchemaError,
    chrome_trace_events,
    validate_chrome_trace,
    validate_jsonl,
    validate_metrics,
    write_chrome_trace,
    write_jsonl,
)


def sample_tracer():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.set_track_name(1, "wid 1 · main")
    tracer.set_track_name(2, "wid 2 · alt")
    tracer.complete("main", 0.0, 3.0, cat="world", track=1, wid=1,
                    disposition="committed")
    tracer.complete("alt", 0.5, 1.5, cat="world", track=2, wid=2,
                    lineage=(1, 2), disposition="eliminated")
    tracer.instant("fault:msg-drop", cat="fault", track="faults", t=1.0)
    return tracer


def test_jsonl_roundtrip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    n = write_jsonl(sample_tracer(), path)
    assert n == 3
    assert validate_jsonl(path) == 3
    lines = [json.loads(l) for l in open(path)]
    assert lines[0]["type"] == "meta"
    assert lines[0]["schema"] == SCHEMA_VERSION
    assert lines[0]["tracks"]["1"] == "wid 1 · main"
    assert lines[2]["lineage"] == [1, 2]


def test_jsonl_validator_rejects_bad_lines(tmp_path):
    path = str(tmp_path / "bad.jsonl")

    def check(content, match):
        with open(path, "w") as fh:
            fh.write(content)
        with pytest.raises(SchemaError, match=match):
            validate_jsonl(path)

    check("not json\n", "not JSON")
    check('{"type": "span"}\n', "meta header")
    meta = json.dumps({"type": "meta", "schema": SCHEMA_VERSION}) + "\n"
    check(meta, "no spans")
    check(meta + '{"type": "mystery"}\n', "unknown line type")
    check(
        meta + '{"type": "span", "span_id": 1, "name": "x"}\n',
        "missing",
    )
    good = {
        "type": "span", "span_id": 1, "name": "x", "cat": "c",
        "kind": "span", "track": 0, "start": 2.0,
    }
    check(meta + json.dumps(dict(good, disposition="zombie")) + "\n",
          "bad disposition")
    check(meta + json.dumps(dict(good, end=1.0)) + "\n", "ends before")


def test_chrome_trace_one_lane_per_world(tmp_path):
    tracer = sample_tracer()
    events = chrome_trace_events(tracer)
    # integer tracks keep wid as tid -> one lane per world
    lanes = {e["tid"] for e in events if e["ph"] == "X"}
    assert lanes == {1, 2}
    names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names[1] == "wid 1 · main"
    # non-integer tracks allocate tids >= 1,000,000
    fault_events = [e for e in events if e["ph"] == "i"]
    assert fault_events and all(e["tid"] >= 1_000_000 for e in fault_events)
    # eliminated worlds are visibly terminated: dur ends the lane early
    alt = next(e for e in events if e["ph"] == "X" and e["args"].get("wid") == 2)
    assert alt["args"]["disposition"] == "eliminated"
    assert alt["ts"] + alt["dur"] < 3.0 * 1e6

    path = str(tmp_path / "t.trace.json")
    assert write_chrome_trace(tracer, path) == len(events)
    assert validate_chrome_trace(path) == 3


def test_chrome_validator_rejects_malformed(tmp_path):
    path = str(tmp_path / "bad.trace.json")

    def check(doc, match):
        with open(path, "w") as fh:
            if isinstance(doc, str):
                fh.write(doc)
            else:
                json.dump(doc, fh)
        with pytest.raises(SchemaError, match=match):
            validate_chrome_trace(path)

    check("nope", "not JSON")
    check({}, "no traceEvents")
    check({"traceEvents": [{"ph": "Z", "name": "x", "pid": 0, "tid": 0}]},
          "unknown phase")
    check({"traceEvents": [{"ph": "X", "pid": 0, "tid": 0}]}, "missing name")
    check({"traceEvents": [{"ph": "X", "name": "x", "pid": 0, "tid": 0}]},
          "needs ts")
    check(
        {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0}
        ]},
        "metadata only",
    )


def test_validate_metrics_passes_and_counts():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.gauge("b").set(1.0)
    reg.histogram("c").observe(0.1)
    assert validate_metrics(reg) == 3


def test_validate_metrics_rejects_non_numeric_sample():
    reg = MetricsRegistry()
    reg.gauge("weird").set("NaN-ish")  # Gauge.set does not coerce
    with pytest.raises(SchemaError, match="non-numeric"):
        validate_metrics(reg)
