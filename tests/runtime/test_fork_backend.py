"""Tests for the os.fork execution backend (real COW worlds)."""

import os
import time

import pytest

from repro.core.alternative import Alternative, Guard, GuardPlacement
from repro.core.policy import EliminationPolicy
from repro.core.worlds import run_alternatives

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")


def _sleep_then(seconds, label):
    def alt(ws):
        time.sleep(seconds)
        ws["winner"] = label
        return label

    alt.__name__ = label
    return alt


def test_fastest_alternative_wins():
    out = run_alternatives(
        [_sleep_then(0.5, "slow"), _sleep_then(0.02, "fast")],
        backend="fork",
    )
    assert out.value == "fast"
    assert out.winner.index == 1
    assert out.extras["state"]["winner"] == "fast"


def test_response_time_tracks_best_not_mean():
    t0 = time.perf_counter()
    out = run_alternatives(
        [_sleep_then(0.05, "fast"), _sleep_then(1.0, "slow")],
        backend="fork",
    )
    wall = time.perf_counter() - t0
    assert out.value == "fast"
    assert wall < 0.6  # far below the 1.0s loser and the 0.52s mean


def test_workspace_isolation_loser_writes_discarded():
    def fast(ws):
        ws["x"] = "fast-wrote"
        return "fast"

    def slow(ws):
        ws["x"] = "slow-wrote"
        ws["slow-only"] = True
        time.sleep(0.8)
        return "slow"

    out = run_alternatives([fast, slow], initial={"x": "orig"}, backend="fork")
    assert out.extras["state"]["x"] == "fast-wrote"
    assert "slow-only" not in out.extras["state"]


def test_all_fail_selects_failure():
    def bad1(ws):
        raise ValueError("nope")

    def bad2(ws):
        raise RuntimeError("also nope")

    out = run_alternatives([bad1, bad2], backend="fork")
    assert out.failed
    assert not out.timed_out
    assert len(out.losers) == 2


def test_one_failure_tolerated():
    def bad(ws):
        raise ValueError("nope")

    out = run_alternatives([bad, _sleep_then(0.02, "good")], backend="fork")
    assert out.value == "good"


def test_timeout_kills_stragglers():
    t0 = time.perf_counter()
    out = run_alternatives([_sleep_then(30.0, "never")], timeout=0.3, backend="fork")
    wall = time.perf_counter() - t0
    assert out.timed_out and out.failed
    assert wall < 2.0


def test_crashing_child_counts_as_failed():
    def crasher(ws):
        os._exit(7)  # dies without reporting

    out = run_alternatives([crasher, _sleep_then(0.05, "ok")], backend="fork")
    assert out.value == "ok"
    errors = [l.error for l in out.losers]
    assert any("without reporting" in (e or "") for e in errors)


def test_guard_entry_in_child():
    guarded = Alternative(
        _sleep_then(0.01, "guarded"),
        guard=Guard(name="no", check=lambda ws: False),
    )
    out = run_alternatives([guarded, _sleep_then(0.1, "ok")], backend="fork")
    assert out.value == "ok"
    assert any(l.guard_failed for l in out.losers)


def test_guard_before_spawn_skips_fork():
    guarded = Alternative(
        _sleep_then(0.01, "guarded"),
        guard=Guard(check=lambda ws: False, placement=GuardPlacement.BEFORE_SPAWN),
    )
    out = run_alternatives([guarded, _sleep_then(0.05, "ok")], backend="fork")
    assert out.value == "ok"
    rejected = [l for l in out.losers if l.guard_failed]
    assert rejected and rejected[0].error == "guard rejected before spawn"


def test_guard_at_sync_rechecked_in_parent():
    tricky = Alternative(
        _sleep_then(0.01, "tricky"),
        guard=Guard(
            accept=lambda ws, v: v != "tricky",
            placement=GuardPlacement.AT_SYNC,
        ),
    )
    out = run_alternatives([tricky, _sleep_then(0.2, "honest")], backend="fork")
    assert out.value == "honest"


def test_sync_vs_async_elimination_latency():
    alts = [_sleep_then(0.02, "fast")] + [_sleep_then(5.0, f"s{i}") for i in range(8)]
    out_async = run_alternatives(
        alts, backend="fork", elimination=EliminationPolicy.ASYNCHRONOUS
    )
    out_sync = run_alternatives(
        alts, backend="fork", elimination=EliminationPolicy.SYNCHRONOUS
    )
    assert out_async.value == "fast" and out_sync.value == "fast"
    assert out_async.extras["eliminated"] == 8
    # both should finish fast; async completion accounting is never slower
    # than sync on the same machine by more than noise
    assert out_async.overhead.completion_s <= out_sync.overhead.completion_s + 0.05


def test_large_state_roundtrip():
    def producer(ws):
        ws["blob"] = bytes(2_000_000)
        return len(ws["blob"])

    out = run_alternatives([producer], backend="fork")
    assert out.value == 2_000_000
    assert len(out.extras["state"]["blob"]) == 2_000_000


def test_no_zombies_left_behind():
    """Every child is reaped, under both elimination policies."""
    for policy in (EliminationPolicy.SYNCHRONOUS, EliminationPolicy.ASYNCHRONOUS):
        run_alternatives(
            [_sleep_then(0.01, "fast")] + [_sleep_then(5.0, f"s{i}") for i in range(3)],
            backend="fork",
            elimination=policy,
        )
        with pytest.raises(ChildProcessError):
            os.waitpid(-1, os.WNOHANG)  # no children of ours remain


def test_start_delay_staggers_real_children():
    from repro.core.alternative import Alternative

    primary = Alternative(_sleep_then(0.02, "primary"), name="primary")
    spare = Alternative(
        _sleep_then(0.0, "spare"), name="spare", start_delay=5.0
    )
    t0 = time.perf_counter()
    out = run_alternatives([primary, spare], backend="fork")
    wall = time.perf_counter() - t0
    # the staggered spare never got a chance; the primary won quickly
    assert out.value == "primary"
    assert wall < 2.0


def test_unpicklable_workspace_entries_dropped_not_fatal():
    def solver(ws):
        ws["answer"] = 42
        return "solved"

    out = run_alternatives(
        [solver], initial={"f": lambda x: x, "n": 5}, backend="fork"
    )
    assert out.value == "solved"
    state = out.extras["state"]
    assert state["answer"] == 42 and state["n"] == 5
    assert state["_unpicklable"] == ["f"]


def test_unpicklable_result_is_a_clean_failure():
    def bad(ws):
        return lambda: None

    out = run_alternatives([bad], backend="fork")
    assert out.failed
    assert "not picklable" in out.losers[0].error


def test_timeout_no_winner_losers_labeled_timeout_killed():
    out = run_alternatives(
        [_sleep_then(30.0, "s0"), _sleep_then(30.0, "s1")],
        timeout=0.2,
        backend="fork",
    )
    assert out.timed_out and out.failed
    assert [l.error for l in out.losers] == ["timeout-killed", "timeout-killed"]
    assert all(l.elapsed_s > 0 for l in out.losers)


def test_losers_after_winner_labeled_eliminated():
    out = run_alternatives(
        [_sleep_then(0.02, "fast"), _sleep_then(30.0, "slow")], backend="fork"
    )
    assert out.value == "fast"
    slow = next(l for l in out.losers if l.name == "slow")
    assert slow.error == "eliminated"
    assert slow.elapsed_s > 0


def test_all_alternatives_skipped_by_pre_spawn_guards():
    def never_runs(ws):  # pragma: no cover - must not execute
        raise AssertionError("spawned despite BEFORE_SPAWN rejection")

    alts = [
        Alternative(
            never_runs,
            name=f"alt{i}",
            guard=Guard(check=lambda ws: False, placement=GuardPlacement.BEFORE_SPAWN),
        )
        for i in range(3)
    ]
    out = run_alternatives(alts, backend="fork")
    assert out.failed and not out.timed_out
    assert len(out.losers) == 3
    assert all(l.error == "guard rejected before spawn" for l in out.losers)
    with pytest.raises(ChildProcessError):
        os.waitpid(-1, os.WNOHANG)  # nothing was ever forked


class TestEncodeReport:
    """Unit tests for the child-side report sanitizer."""

    def _roundtrip(self, payload):
        import pickle

        from repro.runtime.fork_backend import _encode_report

        return pickle.loads(_encode_report(payload))

    def test_picklable_payload_passes_through(self):
        payload = ("ok", 42, {"x": [1, 2], "y": "z"})
        assert self._roundtrip(payload) == payload

    def test_unpicklable_workspace_entries_dropped_and_listed(self):
        status, value, ws = self._roundtrip(
            ("ok", 7, {"f": lambda x: x, "g": open(os.devnull), "n": 5})
        )
        assert (status, value) == ("ok", 7)
        assert ws["n"] == 5
        assert ws["_unpicklable"] == ["f", "g"]
        assert "f" not in ws and "g" not in ws

    def test_unpicklable_value_becomes_clean_failure(self):
        status, reason = self._roundtrip(("ok", lambda: None, {}))
        assert status == "fail"
        assert "not picklable" in reason

    def test_unserializable_failure_report_degrades_gracefully(self):
        status, reason = self._roundtrip(("fail", lambda: None))
        assert status == "fail"
        assert reason == "unserializable failure report"


def test_genuine_parallelism_across_cpus():
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs >= 2 CPUs")

    def busy(ws):
        deadline = time.perf_counter() + 0.4
        x = 0
        while time.perf_counter() < deadline:
            x += 1
        return x

    t0 = time.perf_counter()
    out = run_alternatives([busy, busy], backend="fork")
    wall = time.perf_counter() - t0
    assert out.winner is not None
    assert wall < 0.75  # two 0.4s busy loops ran concurrently
