"""Tests for checkpoint/restart images (the rfork substrate)."""

import os

import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import CheckpointImage, capture_checkpoint, checkpoint_here


def _task(state):
    """Top-level task: importable, hence picklable."""
    return sum(state["numbers"]) + state.get("bias", 0)


def _failing_task(state):
    raise RuntimeError("task exploded")


def test_capture_and_restart_in_process():
    image = capture_checkpoint(_task, {"numbers": [1, 2, 3], "bias": 10})
    assert image.restart() == 16


def test_image_roundtrips_through_bytes():
    image = capture_checkpoint(_task, {"numbers": list(range(100))}, name="summer")
    blob = image.to_bytes()
    restored = CheckpointImage.from_bytes(blob)
    assert restored.name == "summer"
    assert restored.restart() == sum(range(100))


def test_bad_magic_rejected():
    with pytest.raises(CheckpointError):
        CheckpointImage.from_bytes(b"garbage data here")


def test_unpicklable_task_rejected():
    with pytest.raises(CheckpointError):
        capture_checkpoint(lambda s: 0, {})


def test_image_size_reflects_state():
    small = capture_checkpoint(_task, {"numbers": [1]})
    big = capture_checkpoint(_task, {"numbers": list(range(10_000))})
    assert big.size_bytes > small.size_bytes + 10_000


def test_write_and_read_file(tmp_path):
    image = capture_checkpoint(_task, {"numbers": [5, 5]})
    path = tmp_path / "proc.ckpt"
    written = image.write_file(str(path))
    assert written == path.stat().st_size
    assert CheckpointImage.read_file(str(path)).restart() == 10


def test_checkpoint_here_return_convention():
    image, is_restart = checkpoint_here(_task, {"numbers": [2, 2]})
    assert is_restart is False
    assert image.restart() == 4


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
def test_restart_in_fork_ships_result_back():
    image = capture_checkpoint(_task, {"numbers": list(range(1000))})
    assert image.restart_in_fork() == sum(range(1000))


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
def test_restart_in_fork_propagates_failure():
    image = capture_checkpoint(_failing_task, {})
    with pytest.raises(CheckpointError):
        image.restart_in_fork()
