"""Tests for the sequential (degraded) execution backend."""

import time

from repro.core.alternative import Alternative, Guard
from repro.core.worlds import run_alternatives
from repro.faults.plan import FaultKind, FaultPlan
from repro.runtime.sequential_backend import run_alternatives_sequential


def _ret(value, label):
    def alt(ws):
        ws["by"] = label
        return value

    alt.__name__ = label
    return alt


def test_first_accepted_wins_in_order():
    out = run_alternatives_sequential([_ret(1, "first"), _ret(2, "second")])
    assert out.value == 1
    assert out.winner.index == 0
    assert out.extras["state"]["by"] == "first"
    assert out.extras["sequential"] is True


def test_failed_prefix_falls_through():
    def bad(ws):
        raise ValueError("nope")

    guarded = Alternative(_ret(7, "guarded"), guard=Guard(check=lambda ws: False))
    out = run_alternatives_sequential([bad, guarded, _ret(3, "good")])
    assert out.value == 3
    assert len(out.losers) == 2
    assert any(l.guard_failed for l in out.losers)


def test_workspace_isolation_between_attempts():
    def polluter(ws):
        ws["shared"].append("dirt")
        raise RuntimeError("after the damage")

    def reader(ws):
        return list(ws["shared"])

    out = run_alternatives_sequential(
        [polluter, reader], initial={"shared": ["clean"]}
    )
    assert out.value == ["clean"]  # polluter's write never leaked


def test_timeout_between_alternatives():
    def slow(ws):
        time.sleep(0.2)
        raise RuntimeError("fail after burning the budget")

    out = run_alternatives_sequential([slow, _ret(1, "late")], timeout=0.05)
    assert out.failed and out.timed_out
    assert any(l.error == "timeout-killed" for l in out.losers)


def test_injected_crash_skips_alternative():
    plan = FaultPlan(seed=0, rates={FaultKind.CRASH: 1.0})
    out = run_alternatives_sequential([_ret(1, "a"), _ret(2, "b")], fault_plan=plan)
    assert out.failed
    assert all("injected" in l.error for l in out.losers)


def test_injected_hang_is_skipped_not_executed():
    plan = FaultPlan(seed=0, rates={FaultKind.HANG: 1.0}, hang_s=30.0)
    t0 = time.perf_counter()
    out = run_alternatives_sequential([_ret(1, "a")], fault_plan=plan)
    assert time.perf_counter() - t0 < 1.0  # the hang was recorded, not slept
    assert out.failed
    assert "cannot hang" in out.losers[0].error


def test_reachable_through_run_alternatives():
    out = run_alternatives([_ret(5, "only")], backend="sequential")
    assert out.value == 5
