"""Tests for the thread execution backend."""

import time

from repro.core.alternative import Alternative, Guard
from repro.core.worlds import run_alternatives


def _sleep_then(seconds, label):
    def alt(ws):
        time.sleep(seconds)
        ws["winner"] = label
        return label

    alt.__name__ = label
    return alt


def test_fastest_wins():
    out = run_alternatives(
        [_sleep_then(0.5, "slow"), _sleep_then(0.02, "fast")], backend="thread"
    )
    assert out.value == "fast"
    assert out.extras["state"]["winner"] == "fast"


def test_workspace_deep_copied():
    def mutator(ws):
        ws["shared"].append("mutated")
        return "m"

    initial = {"shared": ["orig"]}
    out = run_alternatives([mutator], initial=initial, backend="thread")
    assert out.extras["state"]["shared"] == ["orig", "mutated"]
    assert initial["shared"] == ["orig"]  # caller's dict untouched


def test_all_fail():
    def bad(ws):
        raise ValueError("x")

    out = run_alternatives([bad, bad], backend="thread")
    assert out.failed


def test_timeout():
    out = run_alternatives([_sleep_then(10.0, "never")], timeout=0.1, backend="thread")
    assert out.timed_out
    assert out.extras["uncollected"] == 0 or out.failed


def test_losers_uncollected_not_killed():
    out = run_alternatives(
        [_sleep_then(0.02, "fast"), _sleep_then(0.5, "slow")], backend="thread"
    )
    assert out.value == "fast"
    assert out.extras["uncollected"] == 1  # slow is still running, ignored


def test_start_delay_on_threads():
    from repro.core.alternative import Alternative

    delayed = Alternative(_sleep_then(0.0, "delayed"), name="delayed",
                          start_delay=0.3)
    quick = Alternative(_sleep_then(0.02, "quick"), name="quick")
    out = run_alternatives([delayed, quick], backend="thread")
    assert out.value == "quick"


def test_guard_rejection():
    guarded = Alternative(
        _sleep_then(0.01, "guarded"), guard=Guard(check=lambda ws: False)
    )
    out = run_alternatives([guarded, _sleep_then(0.05, "ok")], backend="thread")
    assert out.value == "ok"
