"""Kernel resource-limit guards."""

import pytest

from repro.errors import KernelError
from repro.kernel import Kernel


def test_max_worlds_validated():
    with pytest.raises(ValueError):
        Kernel(max_worlds=0)


def test_world_limit_stops_runaway_spawning():
    k = Kernel(cpus=2, max_worlds=8)

    def spawner(ctx):
        def leaf(c):
            yield c.compute(0.1)
            return "leaf"

        # each block creates 3 children; looping blocks would eventually
        # cross the limit because dead worlds stay in the ledger
        for _ in range(10):
            out = yield from ctx.run_alternatives([leaf, leaf, leaf])
            assert out.value == "leaf"
        return "done"

    k.spawn(spawner)
    with pytest.raises(KernelError, match="world limit"):
        k.run()


def test_generous_limit_is_invisible():
    k = Kernel(cpus=2, max_worlds=100)

    def spawner(ctx):
        def leaf(c):
            yield c.compute(0.01)
            return "leaf"

        out = yield from ctx.run_alternatives([leaf, leaf])
        return out.value

    pid = k.spawn(spawner)
    k.run()
    assert k.result_of(pid) == "leaf"
