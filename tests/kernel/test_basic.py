"""Basic kernel behaviour: processes, virtual time, heap, randomness."""

import pytest

from repro.analysis.calibration import MODERN_SIM
from repro.errors import DeadlockError, InvalidSyscall, KernelError, ProcessDied
from repro.kernel import Kernel, ProcState


def make_kernel(**kw):
    kw.setdefault("cpus", 4)
    return Kernel(**kw)


def test_single_process_result_and_time():
    k = make_kernel()

    def prog(ctx):
        yield ctx.compute(2.5)
        return "answer"

    pid = k.spawn(prog)
    k.run()
    assert k.result_of(pid) == "answer"
    assert k.now == pytest.approx(2.5)


def test_heap_roundtrip_through_pages():
    k = make_kernel()

    def prog(ctx):
        yield ctx.put("nums", list(range(50)))
        nums = yield ctx.get("nums")
        yield ctx.put("total", sum(nums))
        return (yield ctx.get("total"))

    pid = k.spawn(prog)
    k.run()
    assert k.result_of(pid) == sum(range(50))


def test_heap_get_default():
    k = make_kernel()

    def prog(ctx):
        return (yield ctx.get("missing", "fallback"))

    pid = k.spawn(prog)
    k.run()
    assert k.result_of(pid) == "fallback"


def test_heap_delete_and_snapshot():
    k = make_kernel()

    def prog(ctx):
        yield ctx.put("a", 1)
        yield ctx.put("b", 2)
        yield ctx.delete("a")
        return (yield ctx.snapshot())

    pid = k.spawn(prog)
    k.run()
    assert k.result_of(pid) == {"b": 2}


def test_heap_init():
    k = make_kernel()

    def prog(ctx):
        return (yield ctx.get("seed"))

    pid = k.spawn(prog, heap_init={"seed": 99})
    k.run()
    assert k.result_of(pid) == 99


def test_program_exception_aborts_process():
    k = make_kernel()

    def prog(ctx):
        yield ctx.compute(0.1)
        raise RuntimeError("boom")

    pid = k.spawn(prog)
    k.run()
    world = k.worlds_of(pid)[0]
    assert world.state is ProcState.ABORTED
    assert "boom" in world.error
    with pytest.raises(ProcessDied):
        k.result_of(pid)


def test_yielding_garbage_raises_inside_program():
    k = make_kernel()
    caught = {}

    def prog(ctx):
        try:
            yield "not a syscall"
        except InvalidSyscall as exc:
            caught["exc"] = exc
        return "recovered"

    pid = k.spawn(prog)
    k.run()
    assert k.result_of(pid) == "recovered"
    assert "exc" in caught


def test_root_program_must_be_generator():
    k = make_kernel()
    with pytest.raises(KernelError):
        k.spawn(lambda ctx: 42)


def test_sleep_does_not_occupy_cpu():
    k = Kernel(cpus=1)

    def sleeper(ctx):
        yield ctx.sleep(10.0)
        return "slept"

    def worker(ctx):
        yield ctx.compute(1.0)
        t = yield ctx.now()
        return t

    spid = k.spawn(sleeper)
    wpid = k.spawn(worker)
    k.run()
    # worker computed for 1s on the single CPU despite the 10s sleeper
    assert k.result_of(wpid) == pytest.approx(1.0, abs=0.05)
    assert k.result_of(spid) == "slept"


def test_now_and_getpid():
    k = make_kernel()

    def prog(ctx):
        t0 = yield ctx.now()
        pid = yield ctx.getpid()
        yield ctx.compute(1.0)
        t1 = yield ctx.now()
        return (t0, pid, t1)

    pid = k.spawn(prog)
    k.run()
    t0, seen_pid, t1 = k.result_of(pid)
    assert t0 == 0.0
    assert seen_pid == pid
    assert t1 == pytest.approx(1.0)


def test_draws_are_deterministic_per_seed():
    def prog(ctx):
        a = yield ctx.uniform()
        b = yield ctx.angle()
        c = yield ctx.integers(0, 100)
        return (a, b, c)

    results = []
    for _ in range(2):
        k = Kernel(seed=42, cpus=2)
        pid = k.spawn(prog)
        k.run()
        results.append(k.result_of(pid))
    assert results[0] == results[1]

    k = Kernel(seed=43, cpus=2)
    pid = k.spawn(prog)
    k.run()
    assert k.result_of(pid) != results[0]


def test_deadlock_detected():
    k = make_kernel()

    def prog(ctx):
        yield ctx.recv()  # nobody will ever send

    k.spawn(prog)
    with pytest.raises(DeadlockError):
        k.run()


def test_run_until_pauses_and_resumes():
    k = make_kernel()

    def prog(ctx):
        yield ctx.compute(5.0)
        return "done"

    pid = k.spawn(prog)
    k.run(until=2.0)
    assert k.now == pytest.approx(2.0)
    with pytest.raises(ProcessDied):
        k.result_of(pid)
    k.run()
    assert k.result_of(pid) == "done"


def test_two_processes_share_one_cpu():
    k = Kernel(cpus=1)
    finish = {}

    def prog(ctx, label):
        yield ctx.compute(1.0)
        finish[label] = yield ctx.now()

    k.spawn(prog, "a")
    k.spawn(prog, "b")
    k.run()
    # both need 1s of CPU; sharing one CPU they finish around 2s
    assert max(finish.values()) == pytest.approx(2.0, rel=0.05)


def test_two_processes_two_cpus_run_in_parallel():
    k = Kernel(cpus=2)
    finish = {}

    def prog(ctx, label):
        yield ctx.compute(1.0)
        finish[label] = yield ctx.now()

    k.spawn(prog, "a")
    k.spawn(prog, "b")
    k.run()
    assert max(finish.values()) == pytest.approx(1.0, rel=0.05)


def test_compute_zero_is_free():
    k = make_kernel()

    def prog(ctx):
        for _ in range(10):
            yield ctx.compute(0)
        return "ok"

    pid = k.spawn(prog)
    k.run()
    assert k.now == 0.0
    assert k.result_of(pid) == "ok"


def test_heap_of_prefers_live_then_done():
    k = make_kernel()

    def prog(ctx):
        yield ctx.put("k", "v")
        return "ok"

    pid = k.spawn(prog)
    k.run()
    assert k.heap_of(pid).get("k") == "v"
    with pytest.raises(ProcessDied):
        k.heap_of(9999)


def test_run_max_events_pauses():
    k = make_kernel()

    def prog(ctx):
        for _ in range(50):
            yield ctx.compute(0.1)
        return "done"

    pid = k.spawn(prog)
    k.run(max_events=3)
    with pytest.raises(ProcessDied):
        k.result_of(pid)
    k.run()
    assert k.result_of(pid) == "done"


def test_advance_on_dead_world_is_noop():
    """Cascades can kill a world between op completion and resume; the
    driver must leave dead worlds untouched (regression guard)."""
    k = make_kernel()

    def prog(ctx):
        yield ctx.compute(0.1)
        return "done"

    pid = k.spawn(prog)
    k.run()
    world = k.worlds_of(pid)[0]
    assert world.state is ProcState.DONE
    k._advance(world, None)  # must not resume the finished generator
    assert world.state is ProcState.DONE
    assert world.result == "done"


def test_negative_compute_rejected_in_program():
    k = make_kernel()

    def prog(ctx):
        try:
            yield ctx.compute(-1)
        except InvalidSyscall:
            return "caught"

    pid = k.spawn(prog)
    k.run()
    assert k.result_of(pid) == "caught"
