"""Alternative blocks in the simulation kernel: spawn, sync, eliminate.

Covers paper section 2.2: at-most-once synchronization, commit by page-map
replacement, guard placements, the failure alternative, timeouts, and
sync/async elimination.
"""

import pytest

from repro.core.alternative import Alternative, Guard, GuardPlacement
from repro.core.policy import EliminationPolicy
from repro.errors import KernelError
from repro.kernel import Kernel, ProcState, TIMEOUT


def K(**kw):
    kw.setdefault("cpus", 8)
    return Kernel(**kw)


def run_block(kernel, alternatives, timeout=None,
              elimination=EliminationPolicy.ASYNCHRONOUS, heap_init=None):
    box = {}

    def driver(ctx):
        out = yield from ctx.run_alternatives(alternatives, timeout, elimination)
        box["outcome"] = out
        box["state"] = yield ctx.snapshot()
        return out.value

    pid = kernel.spawn(driver, name="parent", heap_init=heap_init)
    kernel.run()
    return box["outcome"], box.get("state"), pid


def timed(label, seconds, value=None):
    """A generator alternative computing for `seconds` then returning."""

    def alt(ctx):
        yield ctx.compute(seconds)
        yield ctx.put("winner", label)
        return value if value is not None else label

    alt.__name__ = label
    return alt


class TestBasicBlocks:
    def test_fastest_alternative_wins(self):
        k = K()
        out, state, _ = run_block(k, [timed("slow", 3.0), timed("fast", 1.0)])
        assert out.value == "fast"
        assert out.winner_index == 1
        assert state["winner"] == "fast"

    def test_winner_state_committed_losers_state_gone(self):
        k = K()

        def fast(ctx):
            yield ctx.compute(0.5)
            yield ctx.put("result", "from-fast")
            yield ctx.put("fast-only", True)
            return "fast"

        def slow(ctx):
            yield ctx.put("slow-early-write", True)  # written before losing
            yield ctx.compute(5.0)
            return "slow"

        out, state, _ = run_block(k, [fast, slow], heap_init={"result": None})
        assert state["result"] == "from-fast"
        assert state["fast-only"] is True
        assert "slow-early-write" not in state

    def test_at_most_once_single_winner(self):
        k = K()
        out, _, _ = run_block(k, [timed(f"alt{i}", 1.0 + 0.01 * i) for i in range(6)])
        committed = [c for c in out.children if c.status == "committed"]
        assert len(committed) == 1
        assert out.winner_index == 0

    def test_children_records_complete(self):
        k = K()
        out, _, _ = run_block(k, [timed("a", 1.0), timed("b", 2.0), timed("c", 3.0)])
        assert len(out.children) == 3
        statuses = {c.name: c.status for c in out.children}
        assert statuses["a"] == "committed"
        assert statuses["b"] == "eliminated"
        assert statuses["c"] == "eliminated"

    def test_elapsed_close_to_best_plus_overhead(self):
        k = K()
        out, _, _ = run_block(k, [timed("fast", 1.0), timed("slow", 10.0)])
        assert out.elapsed_s == pytest.approx(1.0, rel=0.01)

    def test_single_alternative_block(self):
        k = K()
        out, _, _ = run_block(k, [timed("only", 0.5)])
        assert out.value == "only"


class TestFailureAndTimeout:
    def test_all_aborted_selects_failure(self):
        k = K()

        def bad1(ctx):
            yield ctx.compute(0.1)
            yield ctx.abort("no good")

        def bad2(ctx):
            yield ctx.compute(0.2)
            raise ValueError("broken")

        out, _, _ = run_block(k, [bad1, bad2])
        assert out.failed
        assert out.winner_index is None
        assert not out.timed_out
        assert {c.status for c in out.children} == {"aborted"}

    def test_timeout_kills_children_and_fails(self):
        k = K()
        out, _, _ = run_block(k, [timed("slow1", 100.0), timed("slow2", 200.0)],
                              timeout=1.0)
        assert out.timed_out
        assert out.value is TIMEOUT
        assert {c.status for c in out.children} == {"timeout-killed"}
        assert all(not w.alive or w.name == "parent"
                   for w in k.worlds.values())

    def test_fast_success_beats_timeout(self):
        k = K()
        out, _, _ = run_block(k, [timed("quick", 0.5)], timeout=10.0)
        assert not out.timed_out
        assert out.value == "quick"

    def test_one_failure_does_not_fail_block(self):
        k = K()

        def bad(ctx):
            yield ctx.abort("nope")

        out, _, _ = run_block(k, [bad, timed("good", 1.0)])
        assert out.value == "good"
        statuses = {c.name: c.status for c in out.children}
        assert statuses["bad"] == "aborted"

    def test_infinite_loop_alternative_tolerated(self):
        # Scheme B is frustrated by infinite loops; Scheme C is not.
        k = K()

        def diverges(ctx):
            while True:
                yield ctx.compute(1.0)

        out, _, _ = run_block(k, [diverges, timed("finite", 2.0)])
        assert out.value == "finite"


class TestGuards:
    def test_guard_in_child_entry_rejects(self):
        k = K()
        alt_ok = Alternative(timed("ok", 1.0))
        alt_guarded = Alternative(
            timed("guarded", 0.1),
            guard=Guard(name="never", check=lambda s: False),
        )
        out, _, _ = run_block(k, [alt_guarded, alt_ok])
        assert out.value == "ok"
        statuses = {c.name: c.status for c in out.children}
        assert statuses["guarded"] == "aborted"

    def test_guard_before_spawn_skips_spawn(self):
        k = K()
        alt_ok = Alternative(timed("ok", 1.0))
        alt_guarded = Alternative(
            timed("guarded", 0.1),
            guard=Guard(
                name="pre", check=lambda s: False,
                placement=GuardPlacement.BEFORE_SPAWN,
            ),
        )
        out, _, _ = run_block(k, [alt_guarded, alt_ok])
        assert out.value == "ok"
        statuses = {c.name: c.status for c in out.children}
        assert statuses["guarded"] == "guard-rejected"

    def test_guard_at_sync_rejects_result(self):
        k = K()
        alt_fast_bad = Alternative(
            timed("fastbad", 0.5),
            guard=Guard(
                name="sync", accept=lambda s, v: v != "fastbad",
                placement=GuardPlacement.AT_SYNC,
            ),
        )
        alt_slow_ok = Alternative(timed("slowok", 2.0))
        out, _, _ = run_block(k, [alt_fast_bad, alt_slow_ok])
        # the faster child reached sync first but its guard rejected it
        assert out.value == "slowok"

    def test_all_guards_rejected_before_spawn_fails_block(self):
        k = K()
        alts = [
            Alternative(
                timed(f"g{i}", 0.1),
                guard=Guard(check=lambda s: False, placement=GuardPlacement.BEFORE_SPAWN),
            )
            for i in range(3)
        ]
        out, _, _ = run_block(k, alts)
        assert out.failed

    def test_guard_sees_heap_state(self):
        k = K()
        alt = Alternative(
            timed("picky", 0.5),
            guard=Guard(name="wants-flag", check=lambda s: s.get("flag") == "yes"),
        )
        out, _, _ = run_block(k, [alt], heap_init={"flag": "yes"})
        assert out.value == "picky"


class TestPlainCallableAlternatives:
    def test_plain_fn_runs_against_workspace(self):
        k = K()

        def double(ws):
            ws["x"] = ws["x"] * 2
            return ws["x"]

        out, state, _ = run_block(
            k, [Alternative(double, sim_cost=1.0)], heap_init={"x": 21}
        )
        assert out.value == 42
        assert state["x"] == 42

    def test_plain_fn_cost_callable(self):
        k = K()

        def work(ws):
            return "done"

        alt = Alternative(work, sim_cost=lambda ws: ws["n"] * 0.1)
        out, _, _ = run_block(k, [alt], heap_init={"n": 20})
        assert out.elapsed_s == pytest.approx(2.0, rel=0.05)

    def test_plain_fn_exception_aborts(self):
        k = K()

        def boom(ws):
            raise RuntimeError("bad")

        def ok(ws):
            return "ok"

        out, _, _ = run_block(
            k, [Alternative(boom, sim_cost=0.1), Alternative(ok, sim_cost=1.0)]
        )
        assert out.value == "ok"

    def test_plain_fn_key_deletion_propagates(self):
        k = K()

        def remover(ws):
            del ws["victim"]
            return "removed"

        out, state, _ = run_block(
            k, [Alternative(remover, sim_cost=0.1)],
            heap_init={"victim": 1, "keeper": 2},
        )
        assert "victim" not in state
        assert state["keeper"] == 2

    def test_plain_guard_checked_in_wrapper(self):
        k = K()

        def never_valid(ws):
            return "should not win"

        alt = Alternative(
            never_valid,
            sim_cost=0.1,
            guard=Guard(accept=lambda s, v: False),
        )
        ok = Alternative(lambda ws: "ok", sim_cost=1.0, name="ok")
        out, _, _ = run_block(k, [alt, ok])
        assert out.value == "ok"


class TestParentDiscipline:
    def test_parent_heap_write_between_spawn_and_wait_rejected(self):
        k = K()

        def driver(ctx):
            yield ctx.alt_spawn([timed("a", 1.0)])
            try:
                yield ctx.put("illegal", 1)
            except KernelError:
                out = yield ctx.alt_wait()
                return ("caught", out.value)

        pid = k.spawn(driver)
        k.run()
        assert k.result_of(pid) == ("caught", "a")

    def test_alt_wait_without_spawn_rejected(self):
        k = K()

        def driver(ctx):
            try:
                yield ctx.alt_wait()
            except KernelError:
                return "caught"

        pid = k.spawn(driver)
        k.run()
        assert k.result_of(pid) == "caught"

    def test_double_spawn_rejected(self):
        k = K()

        def driver(ctx):
            yield ctx.alt_spawn([timed("a", 1.0)])
            try:
                yield ctx.alt_spawn([timed("b", 1.0)])
            except KernelError:
                out = yield ctx.alt_wait()
                return ("caught", out.value)

        pid = k.spawn(driver)
        k.run()
        assert k.result_of(pid) == ("caught", "a")


class TestNesting:
    def test_nested_blocks_commit_through_levels(self):
        k = K()

        def inner_fast(ctx):
            yield ctx.compute(0.2)
            yield ctx.put("inner", "fast")
            return "inner-fast"

        def inner_slow(ctx):
            yield ctx.compute(5.0)
            return "inner-slow"

        def outer_nested(ctx):
            out = yield from ctx.run_alternatives([inner_fast, inner_slow])
            yield ctx.put("outer", out.value)
            return f"outer({out.value})"

        def outer_plain(ctx):
            yield ctx.compute(10.0)
            return "outer-plain"

        box = {}

        def driver(ctx):
            out = yield from ctx.run_alternatives([outer_nested, outer_plain])
            box["state"] = yield ctx.snapshot()
            return out.value

        pid = k.spawn(driver)
        k.run()
        assert k.result_of(pid) == "outer(inner-fast)"
        assert box["state"]["inner"] == "fast"
        assert box["state"]["outer"] == "inner-fast"

    def test_losing_outer_kills_inner_descendants(self):
        k = K()

        def grandchild(ctx):
            yield ctx.compute(50.0)
            return "gc"

        def outer_loser(ctx):
            out = yield from ctx.run_alternatives([grandchild])
            return out.value

        def outer_winner(ctx):
            yield ctx.compute(0.5)
            return "winner"

        out, _, _ = run_block(k, [outer_loser, outer_winner])
        assert out.value == "winner"
        # nothing except the parent survived
        for w in k.worlds.values():
            if w.name != "parent":
                assert not w.alive


class TestElimination:
    def test_sync_elimination_delays_parent(self):
        profile_kwargs = dict(cpus=8)
        k_sync = Kernel(**profile_kwargs)
        out_s, _, _ = run_block(
            k_sync,
            [timed(f"a{i}", 1.0 + i) for i in range(8)],
            elimination=EliminationPolicy.SYNCHRONOUS,
        )
        k_async = Kernel(**profile_kwargs)
        out_a, _, _ = run_block(
            k_async,
            [timed(f"a{i}", 1.0 + i) for i in range(8)],
            elimination=EliminationPolicy.ASYNCHRONOUS,
        )
        # async gives strictly better response time (paper section 2.2.1)
        assert out_a.response_s < out_s.response_s
        sync_extra = out_s.response_s - out_a.response_s
        expected = k_sync.profile.kill_sync_s * 7
        assert sync_extra == pytest.approx(expected, rel=0.2)

    def test_async_elimination_spawns_reaper(self):
        k = K()
        run_block(
            k, [timed("a", 1.0), timed("b", 2.0)],
            elimination=EliminationPolicy.ASYNCHRONOUS,
        )
        reapers = [w for w in k.worlds.values() if w.name.startswith("reaper")]
        assert len(reapers) == 1
        assert reapers[0].state is ProcState.DONE

    def test_elimination_cost_recorded_as_completion_overhead(self):
        k = K()
        out, _, _ = run_block(
            k, [timed(f"a{i}", 1.0 + i) for i in range(4)],
            elimination=EliminationPolicy.SYNCHRONOUS,
        )
        assert out.overhead.completion_s == pytest.approx(
            k.profile.kill_sync_s * 3
        )

    def test_setup_overhead_scales_with_alternatives(self):
        k1 = K()
        out1, _, _ = run_block(k1, [timed("a", 1.0)], heap_init={"d": bytes(10000)})
        k2 = K()
        out2, _, _ = run_block(
            k2, [timed("a", 1.0), timed("b", 1.5), timed("c", 2.0)],
            heap_init={"d": bytes(10000)},
        )
        assert out2.overhead.setup_s == pytest.approx(3 * out1.overhead.setup_s)


class TestMemoryHygiene:
    def test_loser_pages_are_reclaimed(self):
        k = K()

        def writer(ctx, label, amount, cost):
            def alt(c):
                yield c.compute(cost)
                yield c.put(f"data-{label}", bytes(amount))
                yield c.compute(cost)
                return label
            alt.__name__ = label
            return alt

        def fast(ctx):
            yield ctx.compute(0.1)
            return "fast"

        def slow(ctx):
            yield ctx.put("big", bytes(100_000))
            yield ctx.compute(10.0)
            return "slow"

        out, _, _ = run_block(k, [fast, slow], heap_init={"base": bytes(1000)})
        assert out.value == "fast"
        # the loser's 100k of private pages must be freed; remaining live
        # frames are the parent's committed state only
        live_bytes = k.pool.live_frames * k.profile.page_size
        assert live_bytes < 50_000
