"""Tests for staggered alternative spawning (start_delay)."""

import pytest

from repro.apps.recovery import RecoveryBlock
from repro.core import Alternative, run_alternatives_sim
from repro.errors import WorldsError


def test_negative_delay_rejected():
    with pytest.raises(WorldsError):
        Alternative(lambda ws: 1, start_delay=-0.5)


def test_delayed_alternative_starts_late():
    fast_but_late = Alternative(
        lambda ws: "late", name="late", sim_cost=0.1, start_delay=2.0
    )
    slow_but_early = Alternative(
        lambda ws: "early", name="early", sim_cost=1.0
    )
    outcome, _ = run_alternatives_sim([fast_but_late, slow_but_early], cpus=2)
    # the early starter finishes at 1.0; the late one would finish at 2.1
    assert outcome.value == "early"
    assert outcome.elapsed_s == pytest.approx(1.0, rel=0.05)


def test_delayed_alternative_wins_when_still_fastest():
    late = Alternative(lambda ws: "late", name="late", sim_cost=0.1, start_delay=0.5)
    early = Alternative(lambda ws: "early", name="early", sim_cost=5.0)
    outcome, _ = run_alternatives_sim([late, early], cpus=2)
    assert outcome.value == "late"
    assert outcome.elapsed_s == pytest.approx(0.6, rel=0.05)


def test_staggered_spare_never_starts_when_primary_wins():
    primary = Alternative(lambda ws: "primary", name="primary", sim_cost=0.5)
    spare = Alternative(lambda ws: "spare", name="spare", sim_cost=0.5,
                        start_delay=5.0)
    outcome, kernel = run_alternatives_sim([primary, spare], cpus=2)
    assert outcome.value == "primary"
    util = kernel.utilization_report()
    # the spare consumed no CPU at all: it was eliminated while sleeping
    assert util.wasted_cpu_s == pytest.approx(0.0, abs=1e-9)


def test_stagger_delay_appears_in_trace():
    late = Alternative(lambda ws: 1, name="late", sim_cost=0.1, start_delay=1.0)
    _, kernel = run_alternatives_sim([late], trace=True)
    events = kernel.trace.of_kind("stagger")
    assert len(events) == 1
    assert events[0].info["delay"] == 1.0


def test_generator_alternative_with_delay():
    def gen_alt(ctx):
        t = yield ctx.now()
        yield ctx.compute(0.1)
        return t

    late = Alternative(gen_alt, name="late", start_delay=0.7)
    outcome, _ = run_alternatives_sim([late])
    # the program observed a start time at (or just after) its delay
    assert outcome.value == pytest.approx(0.7, abs=0.01)


class TestStaggeredRecovery:
    def _block(self):
        def primary(ws):
            if ws.get("inject_fault"):
                raise RuntimeError("fault")
            ws["x"] = "primary"
            return "primary"

        def spare(ws):
            ws["x"] = "spare"
            return "spare"

        return RecoveryBlock(lambda ws, v: True, primary, spare)

    def test_healthy_primary_wins_and_spare_costs_nothing(self):
        block = self._block()
        result = block.run_parallel(
            {}, backend="sim", sim_costs=[1.0, 1.0], stagger_s=2.0, cpus=2
        )
        assert result.alternate == "primary"
        assert result.outcome.elapsed_s == pytest.approx(1.0, rel=0.05)

    def test_faulty_primary_costs_one_stagger(self):
        block = self._block()
        result = block.run_parallel(
            {"inject_fault": True}, backend="sim",
            sim_costs=[1.0, 1.0], stagger_s=2.0, cpus=2,
        )
        assert result.alternate == "spare"
        # spare starts at 2.0 and runs 1.0
        assert result.outcome.elapsed_s == pytest.approx(3.0, rel=0.05)

    def test_zero_stagger_is_the_plain_race(self):
        block = self._block()
        result = block.run_parallel(
            {"inject_fault": True}, backend="sim",
            sim_costs=[1.0, 1.0], stagger_s=0.0, cpus=2,
        )
        assert result.outcome.elapsed_s == pytest.approx(1.0, rel=0.05)
