"""Tests for the kernel trace facility."""

from repro.kernel.trace import Trace, TraceEvent


def test_record_and_query():
    trace = Trace()
    trace.record(0.0, "spawn", 1, name="a")
    trace.record(1.0, "commit", 2, group=1)
    trace.record(2.0, "kill", 3, reason="x")
    assert len(trace) == 3
    assert [e.kind for e in trace.of_kind("commit", "kill")] == ["commit", "kill"]
    assert trace.for_pid(2)[0].kind == "commit"


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.record(0.0, "spawn", 1)
    assert len(trace) == 0


def test_limit_caps_events():
    trace = Trace(limit=2)
    for i in range(5):
        trace.record(float(i), "tick", i)
    assert len(trace) == 2


def test_render_and_str():
    trace = Trace()
    trace.record(1.5, "commit", 42, group=7)
    text = trace.render()
    assert "commit" in text and "42" in text and "group=7" in text


def test_event_str_sorted_info():
    event = TraceEvent(0.5, "deliver", 3, {"z": 1, "a": 2})
    rendered = str(event)
    assert rendered.index("a=2") < rendered.index("z=1")


def test_limit_counts_drops():
    trace = Trace(limit=2)
    for i in range(5):
        trace.record(float(i), "tick", i)
    assert len(trace) == 2
    assert trace.dropped == 3


def test_no_drops_when_under_limit():
    trace = Trace(limit=10)
    trace.record(0.0, "tick", 0)
    assert trace.dropped == 0
    assert "truncated" not in trace.render()


def test_render_notes_truncation():
    trace = Trace(limit=1)
    trace.record(0.0, "tick", 0)
    trace.record(1.0, "tick", 1)
    trace.record(2.0, "tick", 2)
    text = trace.render()
    assert "truncated" in text
    assert "2 event(s) dropped" in text
    assert "limit=1" in text


def test_disabled_trace_counts_no_drops():
    trace = Trace(enabled=False)
    for i in range(3):
        trace.record(float(i), "tick", i)
    assert trace.dropped == 0
