"""Determinism and scheduling properties of the simulation kernel.

The kernel promises: same programs + same seed ⇒ identical virtual
timeline, world population and results. These tests run randomized
workloads twice and diff everything observable, and property-test the
response-time algebra the figures depend on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alternative, run_alternatives_sim
from repro.kernel import Kernel


def _workload(kernel: Kernel, n_procs: int, seed_offset: int):
    pids = []

    def chatter(ctx, peers):
        me = yield ctx.getpid()
        value = yield ctx.uniform()
        yield ctx.put("value", value)
        yield ctx.compute(0.01 * (me % 3 + 1))
        for peer in peers:
            yield ctx.send(peer, (me, value))
        got = []
        for _ in range(len(peers)):
            msg = yield ctx.recv(timeout=5.0)
            if msg:
                got.append(msg.data)
        return sorted(got)

    # ring topology: everyone messages the next two pids
    first = kernel._pids.peek()
    expected = [first + i for i in range(n_procs)]
    for i in range(n_procs):
        peers = [expected[(i + 1) % n_procs], expected[(i + 2) % n_procs]]
        pids.append(kernel.spawn(chatter, peers, name=f"p{i}"))
    return pids


def _fingerprint(kernel: Kernel, pids):
    return {
        "now": kernel.now,
        "results": [kernel.result_of(p) for p in pids],
        "facts": dict(kernel.facts),
        "cpu": [round(w.cpu_time_s, 12) for w in kernel.worlds.values()],
        "events": [(e.time, e.kind, e.pid) for e in kernel.trace],
    }


def test_identical_runs_produce_identical_timelines():
    prints = []
    for _ in range(2):
        kernel = Kernel(cpus=2, seed=123, trace=True)
        pids = _workload(kernel, 5, 0)
        kernel.run()
        prints.append(_fingerprint(kernel, pids))
    assert prints[0] == prints[1]


def test_different_seed_changes_drawn_values_only_deterministically():
    kernels = []
    for seed in (1, 2):
        kernel = Kernel(cpus=2, seed=seed)
        pids = _workload(kernel, 4, 0)
        kernel.run()
        kernels.append([kernel.result_of(p) for p in pids])
    assert kernels[0] != kernels[1]


@given(
    costs=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=6)
)
@settings(max_examples=60, deadline=None)
def test_response_time_tracks_fastest_with_enough_cpus(costs):
    """With one CPU per alternative, response ~= min cost + overhead."""
    alternatives = [
        Alternative(lambda ws, _i=i: _i, name=f"a{i}", sim_cost=c)
        for i, c in enumerate(costs)
    ]
    outcome, kernel = run_alternatives_sim(alternatives, cpus=len(costs))
    best = min(costs)
    assert outcome.elapsed_s >= best
    # overhead on MODERN_SIM is microseconds; one quantum of slack
    assert outcome.elapsed_s <= best + kernel.profile.quantum_s + 0.01
    # near-tied costs finish inside the same quantum, where either may
    # synchronize first — assert the winner is quantum-close to best,
    # not that it is exactly the argmin
    assert costs[outcome.winner.index] <= best + kernel.profile.quantum_s


@given(
    costs=st.lists(st.floats(min_value=0.05, max_value=2.0), min_size=2, max_size=5),
    cpus=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_work_conservation_under_contention(costs, cpus):
    """Total simulated CPU time equals the work of worlds that ran.

    The winner consumes its full cost; losers consume at most theirs.
    Virtual wall clock is bounded by total work (1 CPU) and by the
    fastest alternative's cost (infinite CPUs).
    """
    alternatives = [
        Alternative(lambda ws, _i=i: _i, name=f"a{i}", sim_cost=c)
        for i, c in enumerate(costs)
    ]
    outcome, kernel = run_alternatives_sim(alternatives, cpus=cpus)
    assert not outcome.failed
    total_work = sum(costs)
    assert outcome.elapsed_s <= total_work / min(cpus, 1) + 0.05
    assert outcome.elapsed_s >= min(costs) - 1e-9
    consumed = sum(w.cpu_time_s for w in kernel.worlds.values())
    assert consumed <= total_work + 0.05


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_no_frames_leak_across_blocks(n_alts):
    """After a block settles, live frames == the parent's pages only."""
    alternatives = [
        Alternative(lambda ws, _i=i: _i, name=f"a{i}", sim_cost=0.1 * (i + 1))
        for i in range(n_alts)
    ]
    outcome, kernel = run_alternatives_sim(
        alternatives, initial={"blob": bytes(20_000)}
    )
    assert not outcome.failed
    parent_world = next(w for w in kernel.worlds.values() if w.name == "block-parent")
    parent_pages = len(parent_world.heap.space.table)
    assert kernel.pool.live_frames == parent_pages
