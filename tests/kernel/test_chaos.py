"""Randomized whole-kernel invariant checking ("chaos" tests).

Hypothesis generates arbitrary topologies of blocks, speculative senders
and outside receivers; after every run the kernel must satisfy the
global invariants from DESIGN.md §5, whatever happened:

- no live world's predicates reference a resolved fact;
- at most one DONE world per logical pid;
- every block settles with at most one committed child;
- dead worlds hold no frames (no memory leaks);
- the simulation terminates (no deadlock) because every receiver has a
  timeout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel, ProcState, TIMEOUT

block_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=2.0),  # talker pre-send compute
        st.floats(min_value=0.05, max_value=2.0),  # talker post-send compute
        st.floats(min_value=0.05, max_value=2.0),  # rival compute
        st.booleans(),  # talker sends at all?
    ),
    min_size=1,
    max_size=3,
)


# The receiver's timeout must outlast the worst case the strategy can
# generate: on 1 CPU every world serializes, so up to 3 blocks x
# (2.0 + 2.0 talker + 2.0 rival) = 18 virtual seconds of compute can
# precede the last talker's send. A shorter timeout makes the receiver
# give up before a legitimately winning talker gets to send, breaking
# the observed-iff-won invariant below.
RECV_TIMEOUT_S = 30.0


def _build(kernel: Kernel, specs, n_receivers: int):
    receiver_pids = []

    def receiver(ctx):
        got = []
        while True:
            msg = yield ctx.recv(timeout=RECV_TIMEOUT_S)
            if msg is TIMEOUT:
                return got
            got.append(msg.data)

    for i in range(n_receivers):
        receiver_pids.append(kernel.spawn(receiver, name=f"recv{i}"))

    parent_pids = []
    for index, (pre, post, rival_cost, sends) in enumerate(specs):
        target = receiver_pids[index % n_receivers]

        def parent(ctx, _pre=pre, _post=post, _rival=rival_cost,
                   _sends=sends, _target=target, _index=index):
            def talker(c):
                yield c.compute(_pre)
                if _sends:
                    yield c.send(_target, f"block{_index}")
                yield c.compute(_post)
                return "talker"

            def rival(c):
                yield c.compute(_rival)
                return "rival"

            out = yield from ctx.run_alternatives([talker, rival])
            return out.value

        parent.__name__ = f"parent{index}"
        parent_pids.append(kernel.spawn(parent, name=f"parent{index}"))
    return receiver_pids, parent_pids


@given(
    specs=block_specs,
    n_receivers=st.integers(min_value=1, max_value=2),
    cpus=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=99),
)
@settings(max_examples=60, deadline=None)
def test_global_invariants_hold_after_any_run(specs, n_receivers, cpus, seed):
    kernel = Kernel(cpus=cpus, seed=seed)
    receiver_pids, parent_pids = _build(kernel, specs, n_receivers)
    kernel.run()  # must terminate without DeadlockError

    # every parent selected exactly one alternative
    for pid in parent_pids:
        assert kernel.result_of(pid) in ("talker", "rival")

    # at most one DONE world per logical pid
    for pid, wids in kernel.pid_worlds.items():
        done = [w for w in wids if kernel.worlds[w].state is ProcState.DONE]
        assert len(done) <= 1, f"pid {pid} committed twice"

    # every receiver completed with a consistent transcript: a block's
    # message is observed iff its talker won
    for i, rpid in enumerate(receiver_pids):
        got = kernel.result_of(rpid)
        for index, (_, _, _, sends) in enumerate(specs):
            if index % n_receivers != i:
                continue
            expected = sends and kernel.result_of(parent_pids[index]) == "talker"
            assert (f"block{index}" in got) == expected

    # no live worlds remain, and predicates never reference settled facts
    assert not kernel.live_worlds()
    for world in kernel.worlds.values():
        if world.alive:
            assert not (world.predicates.all_pids() & set(kernel.facts))

    # dead worlds hold no frames; total live frames equal the sum of the
    # completed worlds' resident pages
    for world in kernel.worlds.values():
        if world.state in (ProcState.ABORTED, ProcState.KILLED):
            assert world.heap.space.table.released

    # every group settled with exactly one committed record at most
    for group in kernel.groups.values():
        committed = [
            r for r in group.records.values() if r.status == "committed"
        ]
        assert group.settled
        assert len(committed) <= 1
