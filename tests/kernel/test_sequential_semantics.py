"""The paper's §3.3 semantic anchor, property-tested.

"To an observer, the concurrent execution of the C_i must look like
Scheme B; that is, that we have followed a single thread of computation,
chosen arbitrarily from amongst C_1,...,C_N."

For randomized blocks of state-mutating alternatives we assert: the
committed final state is byte-for-byte what *some single alternative run
sequentially against the initial state* would have produced — never a
mix, never a phantom.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alternative, run_alternatives_sim

# an alternative is a list of (key, value) writes plus optional deletes
write_lists = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", "d"]), st.integers(0, 99)),
    min_size=0,
    max_size=5,
)

alternative_specs = st.tuples(
    write_lists,
    st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=2),  # deletes
    st.floats(min_value=0.01, max_value=2.0),  # cost
    st.booleans(),  # aborts?
)


def _apply_sequentially(initial: dict, writes, deletes) -> dict:
    state = dict(initial)
    for key, value in writes:
        state[key] = value
    for key in deletes:
        state.pop(key, None)
    return state


def _make_alternative(index, writes, deletes, cost, aborts):
    def body(ws: dict):
        for key, value in writes:
            ws[key] = value
        for key in deletes:
            ws.pop(key, None)
        if aborts:
            raise RuntimeError("this alternative fails")
        return index

    return Alternative(body, name=f"alt{index}", sim_cost=cost)


@given(
    specs=st.lists(alternative_specs, min_size=1, max_size=5),
    initial_vals=st.fixed_dictionaries(
        {}, optional={k: st.integers(0, 9) for k in ["a", "b", "c"]}
    ),
    cpus=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=120, deadline=None)
def test_committed_state_is_some_sequential_execution(specs, initial_vals, cpus):
    initial = dict(initial_vals)
    alternatives = [
        _make_alternative(i, writes, deletes, cost, aborts)
        for i, (writes, deletes, cost, aborts) in enumerate(specs)
    ]
    outcome, _ = run_alternatives_sim(alternatives, initial=initial, cpus=cpus)

    legal_states = [
        _apply_sequentially(initial, writes, deletes)
        for (writes, deletes, _, aborts) in specs
        if not aborts
    ]
    final = outcome.extras["state"]
    if outcome.failed:
        # the failure alternative: the parent's state is untouched
        assert final == initial
        assert all(aborts for (_, _, _, aborts) in specs)
    else:
        assert final in legal_states
        # and specifically the winner's own sequential state
        w = outcome.winner.index
        writes, deletes, _, aborts = specs[w]
        assert not aborts
        assert final == _apply_sequentially(initial, writes, deletes)


@given(
    specs=st.lists(alternative_specs, min_size=2, max_size=4),
    cpus=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_winner_is_fastest_surviving_alternative(specs, cpus):
    """Under equal CPU supply, the cheapest non-aborting alternative wins;
    under contention the winner is still a non-aborting one."""
    alternatives = [
        _make_alternative(i, writes, deletes, cost, aborts)
        for i, (writes, deletes, cost, aborts) in enumerate(specs)
    ]
    outcome, _ = run_alternatives_sim(alternatives, cpus=cpus)
    survivors = [i for i, (_, _, _, aborts) in enumerate(specs) if not aborts]
    if not survivors:
        assert outcome.failed
        return
    assert outcome.winner.index in survivors
    if cpus >= len(specs):
        costs = {i: specs[i][2] for i in survivors}
        best = min(costs, key=costs.__getitem__)
        # ties in cost may be broken either way by scheduling order
        assert abs(costs[outcome.winner.index] - costs[best]) < 1e-9 or (
            outcome.winner.index == best
        )
