"""Unit tests for the Context syscall factory."""

from repro.core.policy import EliminationPolicy
from repro.kernel import syscalls as sc
from repro.kernel.context import Context


def ctx():
    return Context(pid=7, name="tester")


def test_basic_constructors():
    c = ctx()
    assert c.compute(1.5) == sc.Compute(1.5)
    assert c.sleep(2.0) == sc.Sleep(2.0)
    assert c.now() == sc.Now()
    assert c.abort("why") == sc.Abort("why")
    assert c.getpid() == sc.GetPid()
    assert c.predicates() == sc.GetPredicates()


def test_heap_constructors():
    c = ctx()
    assert c.put("k", [1]) == sc.HeapPut("k", [1])
    assert c.get("k", 9) == sc.HeapGet("k", 9)
    assert c.delete("k") == sc.HeapDelete("k")
    assert c.snapshot() == sc.HeapSnapshot()


def test_ipc_constructors():
    c = ctx()
    assert c.send(3, "hi") == sc.Send(3, "hi")
    assert c.recv(4.0) == sc.Recv(4.0)
    assert c.recv() == sc.Recv(None)


def test_alt_constructors():
    c = ctx()
    spawn = c.alt_spawn([lambda ws: 1])
    assert isinstance(spawn, sc.AltSpawn) and len(spawn.alternatives) == 1
    wait = c.alt_wait(5.0, EliminationPolicy.SYNCHRONOUS)
    assert wait.timeout == 5.0
    assert wait.elimination is EliminationPolicy.SYNCHRONOUS


def test_device_constructors():
    c = ctx()
    assert c.device_write("d", b"x", 4) == sc.DeviceWrite("d", b"x", 4)
    assert c.device_read("d", 8, 2) == sc.DeviceRead("d", 8, 2)


def test_draw_constructors():
    c = ctx()
    assert c.uniform(1, 2) == sc.Draw("uniform", (1, 2))
    assert c.integers(0, 5) == sc.Draw("integers", (0, 5))
    assert c.angle() == sc.Draw("angle", ())
    assert c.exponential(2.0) == sc.Draw("exponential", (2.0,))
    assert c.normal(1.0, 0.5) == sc.Draw("normal", (1.0, 0.5))


def test_composite_helpers_are_generators():
    c = ctx()
    gen = c.run_alternatives([lambda ws: 1])
    first = next(gen)
    assert isinstance(first, sc.AltSpawn)
    gen2 = c.print("hello")
    op = next(gen2)
    assert op == sc.DeviceWrite("tty", b"hello\n")


def test_pid_and_name_exposed():
    c = ctx()
    assert c.pid == 7
    assert c.name == "tester"
