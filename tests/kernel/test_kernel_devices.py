"""Source gating and sink staging through the kernel (paper 2.1, 2.4.2)."""

import pytest

from repro.devices.backing_store import BackingStoreDevice
from repro.devices.teletype import Teletype
from repro.errors import SourceAccessError
from repro.kernel import Kernel


def K(**kw):
    kw.setdefault("cpus", 8)
    return Kernel(**kw)


class TestSourceGating:
    def test_unpredicated_process_may_print(self):
        k = K()

        def prog(ctx):
            yield from ctx.print("hello")
            return "ok"

        pid = k.spawn(prog)
        k.run()
        assert k.result_of(pid) == "ok"
        assert k.device("tty").text == "hello\n"

    def test_speculative_world_blocks_on_source_until_commit(self):
        k = K(trace=True)

        def parent(ctx):
            def noisy(c):
                yield c.compute(0.1)
                yield c.device_write("tty", b"speculative!\n")
                return "noisy"

            def quiet(c):
                yield c.compute(5.0)
                return "quiet"

            out = yield from ctx.run_alternatives([noisy, quiet])
            return out.value

        pid = k.spawn(parent)
        k.run()
        # noisy is blocked at the source forever (its predicates can only
        # resolve at its own sync, which it never reaches), so quiet wins.
        assert k.result_of(pid) == "quiet"
        assert k.device("tty").text == ""
        assert len(k.trace.of_kind("source-block")) == 1

    def test_strict_policy_raises_in_program(self):
        k = Kernel(cpus=4, source_policy="strict")

        def parent(ctx):
            def naughty(c):
                try:
                    yield c.device_write("tty", b"nope")
                except SourceAccessError:
                    yield c.abort("cannot touch sources")

            def good(c):
                yield c.compute(0.5)
                return "good"

            out = yield from ctx.run_alternatives([naughty, good])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == "good"

    def test_split_world_blocks_on_source_until_resolution(self):
        # an ordinary process that accepted a speculative message becomes
        # speculative itself and must wait before printing
        k = K(trace=True)

        def receiver(ctx):
            msg = yield ctx.recv(timeout=60.0)
            if msg:
                yield ctx.device_write("tty", f"got {msg.data}\n".encode())
                return "printed"
            return "timeout"

        def parent(ctx, dst):
            def talker(c):
                yield c.compute(0.1)
                yield c.send(dst, "news")
                yield c.compute(0.4)
                return "talker"

            out = yield from ctx.run_alternatives([talker])
            return out.value

        rpid = k.spawn(receiver, name="receiver")
        k.spawn(parent, rpid, name="parent")
        k.run()
        assert k.result_of(rpid) == "printed"
        assert k.device("tty").text == "got news\n"
        blocks = k.trace.of_kind("source-block")
        unblocks = k.trace.of_kind("source-unblock")
        assert len(blocks) == 1 and len(unblocks) == 1
        # print only became visible after the talker committed
        commit_time = k.trace.of_kind("commit")[0].time
        assert unblocks[0].time >= commit_time


class TestSinkStaging:
    def test_speculative_sink_write_staged_and_committed(self):
        k = K()
        disk = BackingStoreDevice("disk", size=128)
        k.add_device(disk)

        def parent(ctx):
            def writer(c):
                yield c.compute(0.1)
                yield c.device_write("disk", b"WINNER", 0)
                return "writer"

            def rival(c):
                yield c.compute(5.0)
                return "rival"

            out = yield from ctx.run_alternatives([writer, rival])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == "writer"
        assert disk.read(6) == b"WINNER"

    def test_loser_sink_writes_discarded(self):
        k = K()
        disk = BackingStoreDevice("disk", size=128)
        k.add_device(disk)

        def parent(ctx):
            def loser(c):
                yield c.device_write("disk", b"LOSERDATA", 0)
                yield c.compute(10.0)
                return "loser"

            def winner(c):
                yield c.compute(0.2)
                return "winner"

            out = yield from ctx.run_alternatives([loser, winner])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == "winner"
        assert disk.read(9) == bytes(9)
        assert disk.discarded_writes == 1

    def test_speculative_world_reads_its_own_sink_writes(self):
        k = K()
        disk = BackingStoreDevice("disk", size=128)
        disk.write(b"base", offset=0)
        k.add_device(disk)

        def parent(ctx):
            def writer(c):
                yield c.device_write("disk", b"X", 1)
                data = yield c.device_read("disk", 4, 0)
                return data

            out = yield from ctx.run_alternatives([writer])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == b"bXse"
        assert disk.read(4) == b"bXse"  # committed after the win

    def test_nested_winner_staging_migrates_to_parent_world(self):
        # inner winner's staged writes must not flush while the outer
        # alternative is still speculative; they flush when IT commits
        k = K()
        disk = BackingStoreDevice("disk", size=128)
        k.add_device(disk)

        def parent(ctx):
            def outer(c):
                def inner(cc):
                    yield cc.device_write("disk", b"NESTED", 0)
                    return "inner"

                out = yield from c.run_alternatives([inner])
                yield c.compute(0.1)
                return f"outer+{out.value}"

            def rival(c):
                yield c.compute(5.0)
                return "rival"

            out = yield from ctx.run_alternatives([outer, rival])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == "outer+inner"
        assert disk.read(6) == b"NESTED"

    def test_nested_loser_staging_discarded(self):
        k = K()
        disk = BackingStoreDevice("disk", size=128)
        k.add_device(disk)

        def parent(ctx):
            def outer_loser(c):
                def inner(cc):
                    yield cc.device_write("disk", b"DOOMED", 0)
                    return "inner"

                out = yield from c.run_alternatives([inner])
                yield c.compute(50.0)
                return out.value

            def winner(c):
                yield c.compute(0.3)
                return "winner"

            out = yield from ctx.run_alternatives([outer_loser, winner])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == "winner"
        assert disk.read(6) == bytes(6)


class TestBufferedSourceIntegration:
    def test_replicated_readers_see_same_data(self):
        from repro.devices.buffered import BufferedSource

        k = K()
        tty_in = Teletype("raw-input", input_script=b"0123456789")
        buffered = BufferedSource(tty_in, name="input")
        k.add_device(buffered)

        def reader(ctx):
            data = yield ctx.device_read("input", 4)
            return data

        p1 = k.spawn(reader)
        p2 = k.spawn(reader)
        k.run()
        assert k.result_of(p1) == b"0123"
        assert k.result_of(p2) == b"0123"
        assert tty_in.input_remaining == 6  # consumed once, not twice
