"""Unit tests for syscall value types."""

import pytest

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative
from repro.kernel import syscalls as sc


class TestTimeoutSentinel:
    def test_singleton_and_falsy(self):
        assert sc.TIMEOUT is type(sc.TIMEOUT)()
        assert not sc.TIMEOUT
        assert repr(sc.TIMEOUT) == "TIMEOUT"


class TestNormalizeAlternative:
    def test_passthrough(self):
        alt = Alternative(lambda ws: 1, name="x")
        assert sc.normalize_alternative(alt, 0) is alt

    def test_wraps_callable(self):
        def my_fn(ws):
            return 1

        alt = sc.normalize_alternative(my_fn, 3)
        assert isinstance(alt, Alternative)
        assert alt.name == "my_fn"

    def test_lambda_gets_positional_name(self):
        alt = sc.normalize_alternative(lambda ws: 1, 2)
        assert alt.name == "<lambda>"

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            sc.normalize_alternative(42, 0)


class TestAltOutcome:
    def test_time_properties(self):
        out = sc.AltOutcome(
            winner_index=0, winner_pid=1, value="v",
            spawned_at=1.0, committed_at=3.0, parent_resumed_at=3.5,
            overhead=OverheadBreakdown(completion_s=0.5),
        )
        assert out.elapsed_s == 2.0
        assert out.response_s == 2.5
        assert not out.failed

    def test_failed_when_no_winner(self):
        out = sc.AltOutcome(winner_index=None, winner_pid=None, value=None)
        assert out.failed


class TestSyscallImmutability:
    def test_frozen_dataclasses(self):
        op = sc.Compute(1.0)
        with pytest.raises(AttributeError):
            op.seconds = 2.0  # type: ignore[misc]
        msg_op = sc.Send(3, "x")
        with pytest.raises(AttributeError):
            msg_op.dest = 4  # type: ignore[misc]
