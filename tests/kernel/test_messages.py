"""Predicated IPC in the kernel: delivery, splits, pruning, replay.

Covers paper sections 2.3 and 2.4: messages from speculative worlds carry
their predicates; receivers accept, ignore, or split; when senders resolve,
exactly one receiver copy survives.
"""

import pytest

from repro.errors import DeadlockError, KernelError
from repro.kernel import Kernel, ProcState, TIMEOUT


def K(**kw):
    kw.setdefault("cpus", 8)
    return Kernel(**kw)


class TestPlainMessaging:
    def test_send_recv_roundtrip(self):
        k = K()

        def receiver(ctx):
            msg = yield ctx.recv()
            return msg.data

        def sender(ctx, dst):
            yield ctx.send(dst, {"payload": 7})
            return "sent"

        rpid = k.spawn(receiver)
        k.spawn(sender, rpid)
        k.run()
        assert k.result_of(rpid) == {"payload": 7}

    def test_fifo_ordering(self):
        k = Kernel(cpus=1)

        def receiver(ctx):
            got = []
            for _ in range(3):
                msg = yield ctx.recv()
                got.append(msg.data)
            return got

        def sender(ctx, dst):
            for i in range(3):
                yield ctx.send(dst, i)

        rpid = k.spawn(receiver)
        k.spawn(sender, rpid)
        k.run()
        assert k.result_of(rpid) == [0, 1, 2]

    def test_recv_timeout(self):
        k = K()

        def receiver(ctx):
            msg = yield ctx.recv(timeout=1.0)
            return "timeout" if msg is TIMEOUT else msg.data

        rpid = k.spawn(receiver)
        k.run()
        assert k.result_of(rpid) == "timeout"
        assert k.now == pytest.approx(1.0)

    def test_message_to_dead_process_is_dead_letter(self):
        k = K(trace=True)

        def short(ctx):
            yield ctx.compute(0.1)
            return "gone"

        def sender(ctx, dst):
            yield ctx.compute(1.0)
            yield ctx.send(dst, "too late")
            return "sent"

        spid_target = k.spawn(short)
        spid = k.spawn(sender, spid_target)
        k.run()
        assert k.result_of(spid) == "sent"
        assert len(k.trace.of_kind("dead-letter")) == 1

    def test_message_carries_sender_pid_and_time(self):
        k = K()

        def receiver(ctx):
            msg = yield ctx.recv()
            return (msg.sender, msg.sent_at > 0)

        def sender(ctx, dst):
            yield ctx.compute(0.5)
            yield ctx.send(dst, "hi")

        rpid = k.spawn(receiver)
        spid = k.spawn(sender, rpid)
        k.run()
        sender_pid, has_time = k.result_of(rpid)
        assert sender_pid == spid
        assert has_time

    def test_send_cost_scales_with_size(self):
        def prog_factory(payload):
            def prog(ctx, dst):
                yield ctx.send(dst, payload)
            return prog

        def sink(ctx):
            yield ctx.recv()
            return "ok"

        times = []
        for payload in (b"x", b"x" * 500_000):
            k = K()
            rpid = k.spawn(sink)
            k.spawn(prog_factory(payload), rpid)
            k.run()
            times.append(k.now)
        assert times[1] > times[0]


class TestPredicatedMessaging:
    def _world_split_setup(self, k, send_delay, winner_delay, loser_extra):
        """A block where alternative A sends to an outside receiver."""

        def receiver(ctx):
            msg = yield ctx.recv(timeout=50.0)
            if msg is TIMEOUT:
                return "no-message"
            return msg.data

        def parent(ctx, dst):
            def talker(c):
                yield c.compute(send_delay)
                yield c.send(dst, "speculative-hello")
                yield c.compute(loser_extra)
                return "talker"

            def rival(c):
                yield c.compute(winner_delay)
                return "rival"

            out = yield from ctx.run_alternatives([talker, rival])
            return out.value

        rpid = k.spawn(receiver, name="receiver")
        ppid = k.spawn(parent, rpid, name="parent")
        return rpid, ppid

    def test_receiver_splits_on_speculative_message(self):
        k = K(trace=True)
        self._world_split_setup(k, 0.1, 10.0, 0.1)
        k.run()
        assert len(k.trace.of_kind("world-split")) == 1

    def test_sender_wins_accepting_world_survives(self):
        k = K()
        rpid, ppid = self._world_split_setup(k, 0.1, 10.0, 0.1)
        k.run()
        assert k.result_of(ppid) == "talker"
        assert k.result_of(rpid) == "speculative-hello"

    def test_sender_loses_rejecting_world_survives(self):
        k = K()
        rpid, ppid = self._world_split_setup(k, 0.1, 0.5, 100.0)
        k.run()
        assert k.result_of(ppid) == "rival"
        # the accepting receiver copy died with the talker; the rejecting
        # copy never saw a message and timed out
        assert k.result_of(rpid) == "no-message"

    def test_exactly_one_receiver_world_survives(self):
        for delays in [(0.1, 10.0, 0.1), (0.1, 0.5, 100.0)]:
            k = K()
            rpid, _ = self._world_split_setup(k, *delays)
            k.run()
            done = [w for w in k.worlds_of(rpid) if w.state is ProcState.DONE]
            assert len(done) == 1

    def test_receiver_blocked_sync_until_sender_resolves(self):
        k = K(trace=True)
        self._world_split_setup(k, 0.1, 10.0, 5.0)
        k.run()
        # receiver finished its program before the talker committed, so it
        # had to defer its completion
        assert len(k.trace.of_kind("sync-defer")) >= 1
        assert len(k.trace.of_kind("sync-retry")) >= 1

    def test_sibling_messages_are_ignored(self):
        # an alternative assumes its siblings do NOT complete, so a message
        # from a sibling conflicts and is ignored
        k = K(trace=True)

        def parent(ctx):
            def chatty(c):
                me = yield c.getpid()
                # sibling pid is me+1 by allocation order (fragile but
                # deterministic in this kernel)
                yield c.send(me + 1, "psst")
                yield c.compute(5.0)
                return "chatty"

            def listener(c):
                msg = yield c.recv(timeout=1.0)
                if msg is TIMEOUT:
                    return "ignored-sibling"
                return f"heard: {msg.data}"

            out = yield from ctx.run_alternatives([chatty, listener])
            return out.value

        ppid = k.spawn(parent)
        k.run()
        assert k.result_of(ppid) == "ignored-sibling"
        assert len(k.trace.of_kind("msg-ignore")) == 1

    def test_unpredicated_message_accepted_without_split(self):
        k = K(trace=True)

        def receiver(ctx):
            msg = yield ctx.recv()
            return msg.data

        def sender(ctx, dst):
            yield ctx.send(dst, "plain")

        rpid = k.spawn(receiver)
        k.spawn(sender, rpid)
        k.run()
        assert k.result_of(rpid) == "plain"
        assert len(k.trace.of_kind("world-split")) == 0

    def test_split_receiver_heaps_are_isolated(self):
        k = K()
        results = {}

        def receiver(ctx):
            yield ctx.put("log", [])
            msg = yield ctx.recv(timeout=20.0)
            log = yield ctx.get("log")
            if msg is TIMEOUT:
                log.append("timeout")
            else:
                log.append(msg.data)
            yield ctx.put("log", log)
            return log

        def parent(ctx, dst):
            def talker(c):
                yield c.compute(0.1)
                yield c.send(dst, "world-A")
                yield c.compute(0.2)
                return "talker"

            def rival(c):
                yield c.compute(10.0)
                return "rival"

            out = yield from ctx.run_alternatives([talker, rival])
            return out.value

        rpid = k.spawn(receiver, name="receiver")
        k.spawn(parent, rpid, name="parent")
        k.run()
        assert k.result_of(rpid) == ["world-A"]

    def test_queued_messages_pruned_when_sender_dies(self):
        k = K(trace=True)

        def receiver(ctx):
            # busy long enough that the speculative message queues, then
            # the sender's world dies before we ever look at it
            yield ctx.compute(5.0)
            msg = yield ctx.recv(timeout=1.0)
            return "pruned" if msg is TIMEOUT else msg.data

        def parent(ctx, dst):
            def loser(c):
                yield c.send(dst, "doomed")
                yield c.compute(50.0)
                return "loser"

            def winner(c):
                yield c.compute(0.5)
                return "winner"

            out = yield from ctx.run_alternatives([loser, winner])
            return out.value

        rpid = k.spawn(receiver, name="receiver")
        ppid = k.spawn(parent, rpid, name="parent")
        k.run()
        assert k.result_of(ppid) == "winner"
        assert k.result_of(rpid) == "pruned"


class TestReplayCloning:
    def test_clone_replays_heap_and_draws(self):
        # the receiver does nontrivial work (heap writes, random draws)
        # before blocking; the rejecting clone must reconstruct exactly
        k = K()

        def receiver(ctx):
            u = yield ctx.uniform()
            yield ctx.put("u", u)
            yield ctx.compute(0.05)
            msg = yield ctx.recv(timeout=30.0)
            stored = yield ctx.get("u")
            tag = "timeout" if msg is TIMEOUT else msg.data
            return (stored, u, tag)

        def parent(ctx, dst):
            def loser(c):
                yield c.compute(0.1)
                yield c.send(dst, "from-loser")
                yield c.compute(100.0)
                return "loser"

            def winner(c):
                yield c.compute(0.5)
                return "winner"

            out = yield from ctx.run_alternatives([loser, winner])
            return out.value

        rpid = k.spawn(receiver, name="receiver")
        k.spawn(parent, rpid, name="parent")
        k.run()
        stored, drawn, tag = k.result_of(rpid)
        assert tag == "timeout"  # the surviving world is the rejecting one
        assert stored == drawn  # heap state identical to the original's

    def test_split_during_outstanding_block_rejected(self):
        k = K()

        def receiver(ctx):
            def child(c):
                yield c.compute(10.0)
                return "child"

            yield ctx.alt_spawn([child])
            msg = yield ctx.recv()  # illegal: un-waited block outstanding
            _ = msg
            yield ctx.alt_wait()

        def parent(ctx, dst):
            def talker(c):
                yield c.send(dst, "hello")
                yield c.compute(1.0)
                return "talker"

            out = yield from ctx.run_alternatives([talker])
            return out.value

        rpid = k.spawn(receiver, name="receiver")
        k.spawn(parent, rpid, name="parent")
        with pytest.raises((KernelError, DeadlockError)):
            k.run()
