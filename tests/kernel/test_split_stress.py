"""Stress tests for the world-splitting machinery.

Multiple speculative senders, chained splits, transitive speculation
(receiver of a receiver), and the at-most-one-survivor invariant under
every resolution order.
"""

import pytest

from repro.kernel import Kernel, ProcState, TIMEOUT


def K(**kw):
    kw.setdefault("cpus", 16)
    return Kernel(**kw)


class TestMultipleSenders:
    def _two_blocks_one_receiver(self, k, winner_a, winner_b):
        """Two independent alt blocks; one alternative of each messages
        the same receiver. The receiver can split twice (4 predicate
        worlds), and exactly one interpretation survives."""

        def receiver(ctx):
            got = []
            for _ in range(2):
                msg = yield ctx.recv(timeout=30.0)
                if msg is TIMEOUT:
                    break
                got.append(msg.data)
            return sorted(got)

        rpid = k.spawn(receiver, name="receiver")

        def make_parent(tag, talker_wins):
            def parent(ctx):
                def talker(c):
                    yield c.compute(0.1)
                    yield c.send(rpid, f"{tag}-talker")
                    yield c.compute(0.1 if talker_wins else 10.0)
                    return f"{tag}-talker"

                def rival(c):
                    yield c.compute(5.0 if talker_wins else 0.5)
                    return f"{tag}-rival"

                out = yield from ctx.run_alternatives([talker, rival])
                return out.value

            parent.__name__ = f"parent-{tag}"
            return parent

        pa = k.spawn(make_parent("A", winner_a), name="pa")
        pb = k.spawn(make_parent("B", winner_b), name="pb")
        return rpid, pa, pb

    @pytest.mark.parametrize(
        "winner_a,winner_b,expected",
        [
            (True, True, ["A-talker", "B-talker"]),
            (True, False, ["A-talker"]),
            (False, True, ["B-talker"]),
            (False, False, []),
        ],
    )
    def test_four_way_split_exactly_one_survivor(self, winner_a, winner_b, expected):
        k = K(trace=True)
        rpid, pa, pb = self._two_blocks_one_receiver(k, winner_a, winner_b)
        k.run()
        assert k.result_of(rpid) == expected
        done = [w for w in k.worlds_of(rpid) if w.state is ProcState.DONE]
        assert len(done) == 1
        # no live world references any resolved pid
        for world in k.live_worlds():
            assert not (world.predicates.all_pids() & set(k.facts))

    def test_split_count_grows_with_speculative_messages(self):
        k = K(trace=True)
        self._two_blocks_one_receiver(k, True, True)
        k.run()
        # first message splits 1 world; the second splits the worlds that
        # can still receive it
        assert len(k.trace.of_kind("world-split")) >= 2


class TestTransitiveSpeculation:
    def test_receiver_of_a_receiver(self):
        """B accepts a speculative message from an alternative, then
        messages C: C inherits the speculation transitively and resolves
        with the block."""
        k = K(trace=True)

        def charlie(ctx):
            msg = yield ctx.recv(timeout=30.0)
            return "c-timeout" if msg is TIMEOUT else msg.data

        cpid = k.spawn(charlie, name="charlie")

        def bob(ctx):
            msg = yield ctx.recv(timeout=30.0)
            if msg is TIMEOUT:
                return "b-timeout"
            yield ctx.send(cpid, f"relayed:{msg.data}")
            return msg.data

        bpid = k.spawn(bob, name="bob")

        def parent(ctx):
            def talker(c):
                yield c.compute(0.1)
                yield c.send(bpid, "origin")
                yield c.compute(0.2)
                return "talker"

            def rival(c):
                yield c.compute(5.0)
                return "rival"

            out = yield from ctx.run_alternatives([talker, rival])
            return out.value

        ppid = k.spawn(parent, name="parent")
        k.run()
        assert k.result_of(ppid) == "talker"
        assert k.result_of(bpid) == "origin"
        assert k.result_of(cpid) == "relayed:origin"

    def test_transitive_speculation_pruned_on_failure(self):
        """Same chain, but the talker loses: both B's and C's accepting
        worlds die; the surviving worlds saw nothing."""
        k = K(trace=True)

        def charlie(ctx):
            msg = yield ctx.recv(timeout=3.0)
            return "c-timeout" if msg is TIMEOUT else msg.data

        cpid = k.spawn(charlie, name="charlie")

        def bob(ctx):
            msg = yield ctx.recv(timeout=3.0)
            if msg is TIMEOUT:
                return "b-timeout"
            yield ctx.send(cpid, f"relayed:{msg.data}")
            return msg.data

        bpid = k.spawn(bob, name="bob")

        def parent(ctx):
            def talker(c):
                yield c.compute(0.1)
                yield c.send(bpid, "doomed")
                yield c.compute(50.0)
                return "talker"

            def rival(c):
                yield c.compute(0.5)
                return "rival"

            out = yield from ctx.run_alternatives([talker, rival])
            return out.value

        ppid = k.spawn(parent, name="parent")
        k.run()
        assert k.result_of(ppid) == "rival"
        assert k.result_of(bpid) == "b-timeout"
        assert k.result_of(cpid) == "c-timeout"
        # the relayed message never leaked into a surviving world
        for world in k.worlds_of(cpid):
            if world.state is ProcState.DONE:
                assert world.result == "c-timeout"


class TestSelfAndOrdering:
    def test_send_to_self(self):
        k = K()

        def selfie(ctx):
            me = yield ctx.getpid()
            yield ctx.send(me, "note to self")
            msg = yield ctx.recv()
            return msg.data

        pid = k.spawn(selfie)
        k.run()
        assert k.result_of(pid) == "note to self"

    def test_fifo_preserved_across_ignored_messages(self):
        """An IGNOREd head must not reorder the survivors."""
        k = K()

        def receiver(ctx):
            got = []
            for _ in range(2):
                msg = yield ctx.recv(timeout=10.0)
                if msg is not TIMEOUT:
                    got.append(msg.data)
            return got

        rpid = k.spawn(receiver, name="recv")

        def parent(ctx):
            def loser(c):
                yield c.send(rpid, "from-loser")  # will be pruned/ignored
                yield c.compute(60.0)
                return "loser"

            def winner(c):
                yield c.compute(0.2)
                yield c.send(rpid, "w1")
                yield c.send(rpid, "w2")
                return "winner"

            out = yield from ctx.run_alternatives([loser, winner])
            return out.value

        k.spawn(parent, name="parent")
        k.run()
        # surviving receiver world sees the winner's messages in order
        assert k.result_of(rpid) == ["w1", "w2"]


class TestUtilizationReport:
    def test_waste_accounting(self):
        from repro.core import Alternative, run_alternatives_sim

        alternatives = [
            Alternative(lambda ws: "fast", name="fast", sim_cost=1.0),
            Alternative(lambda ws: "slow", name="slow", sim_cost=9.0),
        ]
        outcome, kernel = run_alternatives_sim(alternatives, cpus=2)
        util = kernel.utilization_report()
        # winner consumed ~1s useful; loser ~1s before elimination
        assert util.useful_cpu_s == pytest.approx(1.0, rel=0.05)
        assert util.wasted_cpu_s == pytest.approx(1.0, rel=0.1)
        assert 0.3 < util.speculation_waste < 0.7
        assert 0 < util.utilization <= 1.0

    def test_no_waste_single_alternative(self):
        from repro.core import Alternative, run_alternatives_sim

        _, kernel = run_alternatives_sim(
            [Alternative(lambda ws: 1, name="only", sim_cost=0.5)]
        )
        util = kernel.utilization_report()
        assert util.wasted_cpu_s == 0.0
        assert util.speculation_waste == 0.0
