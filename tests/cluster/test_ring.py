"""The consistent-hash ring: determinism, order independence, minimal remap."""

import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import HashRing
from repro.errors import ClusterError

shard_sets = st.lists(
    st.integers(min_value=0, max_value=31), min_size=1, max_size=8, unique=True
)
tenants = st.text(min_size=1, max_size=12)


class TestMembership:
    def test_add_duplicate_rejected(self):
        ring = HashRing([0, 1])
        with pytest.raises(ClusterError):
            ring.add(1)

    def test_remove_unknown_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ClusterError):
            ring.remove(7)

    def test_empty_ring_cannot_route(self):
        with pytest.raises(ClusterError):
            HashRing().route("t")

    def test_len_and_contains(self):
        ring = HashRing([3, 5])
        assert len(ring) == 2
        assert 3 in ring and 5 in ring and 4 not in ring
        assert ring.shards == [3, 5]


class TestRingProperties:
    @given(shards=shard_sets, tenant=tenants)
    @settings(max_examples=80, deadline=None)
    def test_route_is_deterministic(self, shards, tenant):
        a = HashRing(shards)
        b = HashRing(shards)
        assert a.route(tenant) == b.route(tenant)
        assert a.preference(tenant) == b.preference(tenant)

    @given(shards=st.permutations(list(range(6))), tenant=tenants)
    @settings(max_examples=60, deadline=None)
    def test_insertion_order_independent(self, shards, tenant):
        shuffled = HashRing(shards)
        canonical = HashRing(sorted(shards))
        assert shuffled.route(tenant) == canonical.route(tenant)
        assert shuffled.preference(tenant) == canonical.preference(tenant)

    @given(shards=shard_sets, tenant=tenants)
    @settings(max_examples=80, deadline=None)
    def test_preference_starts_at_home_and_covers_all(self, shards, tenant):
        ring = HashRing(shards)
        pref = ring.preference(tenant)
        assert pref[0] == ring.route(tenant)
        assert sorted(pref) == sorted(shards)
        assert len(set(pref)) == len(pref)

    @given(shards=shard_sets, new=st.integers(min_value=100, max_value=131))
    @settings(max_examples=40, deadline=None)
    def test_add_remaps_only_onto_the_new_shard(self, shards, new):
        corpus = [f"tenant-{i}" for i in range(150)]
        before = HashRing(shards)
        owners = {t: before.route(t) for t in corpus}
        before.add(new)
        for t in corpus:
            after = before.route(t)
            # a tenant either kept its home or moved onto the new shard
            assert after == owners[t] or after == new

    @given(shards=shard_sets)
    @settings(max_examples=40, deadline=None)
    def test_remove_remaps_only_the_dead_shards_tenants(self, shards):
        corpus = [f"tenant-{i}" for i in range(150)]
        ring = HashRing(shards)
        victim = sorted(shards)[0]
        owners = {t: ring.route(t) for t in corpus}
        ring.remove(victim)
        if not len(ring):
            return
        for t in corpus:
            if owners[t] == victim:
                assert ring.route(t) != victim
            else:
                assert ring.route(t) == owners[t]

    @given(shards=shard_sets, tenant=tenants)
    @settings(max_examples=40, deadline=None)
    def test_failover_order_is_surviving_preference(self, shards, tenant):
        # killing the home shard lands the tenant exactly on its next
        # preference — the property the router's re-land path relies on
        ring = HashRing(shards)
        pref = ring.preference(tenant)
        if len(pref) < 2:
            return
        ring.remove(pref[0])
        assert ring.route(tenant) == pref[1]


class TestRemapFraction:
    def test_add_moves_about_one_over_n(self):
        corpus = [f"tenant-{i}" for i in range(4000)]
        ring = HashRing(range(4), vnodes=64)
        owners = {t: ring.route(t) for t in corpus}
        ring.add(4)
        moved = sum(1 for t in corpus if ring.route(t) != owners[t])
        # ideal is 1/5 = 800; vnode variance allowed for, stampede not
        assert moved / len(corpus) < 0.40

    def test_balance_is_reasonable(self):
        corpus = [f"tenant-{i}" for i in range(4000)]
        ring = HashRing(range(4), vnodes=64)
        counts = {s: 0 for s in range(4)}
        for t in corpus:
            counts[ring.route(t)] += 1
        assert max(counts.values()) / max(1, min(counts.values())) < 3.0


def test_routing_is_stable_across_processes():
    # blake2b (not the per-process-salted hash()) means another python
    # process maps the same tenants to the same shards
    code = textwrap.dedent(
        """
        from repro.cluster.ring import HashRing
        ring = HashRing([0, 1, 2, 3])
        print(",".join(str(ring.route(f"tenant-{i}")) for i in range(32)))
        """
    )
    env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="random")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True, env=env, cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    ).stdout.strip()
    ring = HashRing([0, 1, 2, 3])
    assert out == ",".join(str(ring.route(f"tenant-{i}")) for i in range(32))
