"""Seeded real-process kill fuzz: ``kill -9`` mid-burst, exactly-once.

The out-of-process twin of ``test_failover_fuzz``: each seed runs a
burst against three shard-host *processes*, consults the fault plan's
``transport`` site for which hosts get SIGKILLed and when, kills them
there — a real ``kill -9``, so only the journal files survive — runs
takeover, and audits every journal for the exactly-once invariant.
``bench_cluster_remote`` runs the same audit over ≥25 seeds; this is the
always-on subset. ``REMOTE_FUZZ_SEEDS`` raises the count.
"""

import functools
import os
import time

import pytest

from repro.cluster import ClusterRouter, RemoteShardClient, host_kill_decision
from repro.faults.plan import FaultKind, FaultPlan

SEEDS = range(1, 1 + int(os.environ.get("REMOTE_FUZZ_SEEDS", "3")))
N_SHARDS = 3
N_REQUESTS = 16


def val(ws, i=0):
    time.sleep(0.002)
    return i * 7


def alts(i):
    return [functools.partial(val, i=i)]


def make_cluster(tmp_path, seed):
    remotes = [
        RemoteShardClient(
            sid,
            workdir=str(tmp_path / f"seed{seed}-shard{sid}"),
            slots=2, workers=2, call_timeout_s=0.4,
            breaker_threshold=2, breaker_cooldown_s=0.2,
        )
        for sid in range(N_SHARDS)
    ]
    return remotes


@pytest.mark.parametrize("seed", SEEDS)
def test_sigkill_mid_burst_commits_exactly_once(seed, tmp_path):
    plan = FaultPlan(
        seed=seed,
        rates={FaultKind.HOST_SIGKILL: 0.6},
        host_kill_fraction=0.5,
    )
    remotes = make_cluster(tmp_path, seed)
    router = ClusterRouter(remotes).start(detect=False)
    try:
        doomed = [
            (sid, host_kill_decision(plan, sid, epoch=0))
            for sid in range(N_SHARDS)
            if host_kill_decision(plan, sid, epoch=0) is not None
        ]
        kill_at = {
            sid: int(frac * N_REQUESTS) for sid, frac in doomed[:2]
        }  # keep one survivor

        tickets = []
        for i in range(N_REQUESTS):
            for sid, at in list(kill_at.items()):
                if i == at:
                    remotes[sid].sigkill()  # the real thing
                    router.takeover(sid)
                    del kill_at[sid]
            tickets.append(router.submit(f"tenant-{i % 5}", alts(i)))
        for sid in kill_at:
            remotes[sid].sigkill()
            router.takeover(sid)

        results = [t.result(timeout=30) for t in tickets]
        committed = [r for r in results if r.committed]
        assert len(committed) == N_REQUESTS, [
            (r.status, r.reason) for r in results if not r.committed
        ]
        for i, r in enumerate(results):
            assert r.value == i * 7, (i, r)

        audit = router.audit_applied()
        for r in committed:
            applied = audit.get(r.seq, 0)
            assert applied == 1, (
                f"seed {seed}: request {r.seq} applied {applied} times "
                f"(failover={r.failover!r})"
            )
    finally:
        router.stop()
    assert all(not r.process_alive() for r in remotes)


def test_detector_discovers_sigkilled_host(tmp_path):
    """The full path: a silent host found by real heartbeat pings alone."""
    remotes = make_cluster(tmp_path, seed=0)
    router = ClusterRouter(
        remotes, heartbeat_s=0.05, miss_threshold=2, detect_interval_s=0.02
    ).start()
    try:
        tickets = [router.submit(f"t{i % 5}", alts(i)) for i in range(12)]
        victim = router.ring.route("t0")
        remotes[victim].sigkill()  # no takeover call: the detector must act
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            members = {s["shard"] for s in router.snapshot()["members"]}
            if victim not in members:
                break
            time.sleep(0.05)
        assert victim not in {
            s["shard"] for s in router.snapshot()["members"]
        }, "heartbeats must find the corpse"
        results = [t.result(timeout=30) for t in tickets]
        assert all(r.committed for r in results)
        audit = router.audit_applied()
        assert all(audit.get(r.seq, 0) == 1 for r in results)
    finally:
        router.stop()
