"""The framed RPC wire: CRC-before-unpickle, bounds, stream transport."""

import socket
import threading

import pytest

from repro.cluster.wire import (
    MAGIC,
    MAX_FRAME_BYTES,
    pack_frame,
    recv_frame,
    send_frame,
    unpack_frame,
)
from repro.errors import WireCorrupt


class TestFrameCodec:
    def test_round_trip(self):
        for body in (None, 42, "x", {"op": "ping", "args": {"n": [1, 2]}}):
            assert unpack_frame(pack_frame(body)) == body

    def test_magic_leads_every_frame(self):
        assert pack_frame({}).startswith(MAGIC)

    def test_bad_magic_rejected(self):
        frame = bytearray(pack_frame({"op": "ping"}))
        frame[0] ^= 0xFF
        with pytest.raises(WireCorrupt, match="magic"):
            unpack_frame(bytes(frame))

    def test_truncated_header_rejected(self):
        with pytest.raises(WireCorrupt, match="truncated"):
            unpack_frame(pack_frame({"op": "ping"})[:10])

    def test_truncated_body_rejected(self):
        with pytest.raises(WireCorrupt, match="carries"):
            unpack_frame(pack_frame({"op": "ping"})[:-3])

    def test_corrupt_body_fails_crc_before_unpickle(self):
        frame = bytearray(pack_frame({"op": "ping"}))
        frame[-1] ^= 0xFF
        with pytest.raises(WireCorrupt, match="CRC"):
            unpack_frame(bytes(frame))

    def test_declared_length_bound_enforced(self):
        # a frame whose header *claims* an absurd length must be refused
        # before any allocation happens
        frame = bytearray(pack_frame(b"x" * 64))
        import struct

        struct.pack_into("<I", frame, len(MAGIC), MAX_FRAME_BYTES + 1)
        with pytest.raises(WireCorrupt, match="bound"):
            unpack_frame(bytes(frame))


class TestSocketTransport:
    def _pair(self):
        return socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)

    def test_send_recv_round_trip(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "ping", "id": 1})
            assert recv_frame(b) == {"op": "ping", "id": 1}
        finally:
            a.close()
            b.close()

    def test_many_frames_keep_boundaries(self):
        a, b = self._pair()
        try:
            bodies = [{"i": i, "pad": "x" * (i * 37)} for i in range(20)]
            done = threading.Event()

            def sender():
                for body in bodies:
                    send_frame(a, body)
                done.set()

            t = threading.Thread(target=sender, daemon=True)
            t.start()
            got = [recv_frame(b) for _ in bodies]
            assert got == bodies
            assert done.wait(5)
        finally:
            a.close()
            b.close()

    def test_torn_frame_poisons_stream(self):
        a, b = self._pair()
        try:
            frame = bytearray(pack_frame({"op": "submit"}))
            frame[-1] ^= 0xFF  # body bit-flip: CRC must catch it
            a.sendall(bytes(frame))
            with pytest.raises(WireCorrupt, match="CRC"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_peer_close_mid_frame_is_connection_error(self):
        a, b = self._pair()
        try:
            frame = pack_frame({"op": "ping", "pad": "y" * 1000})
            a.sendall(frame[: len(frame) // 2])
            a.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_recv_timeout(self):
        a, b = self._pair()
        try:
            with pytest.raises((TimeoutError, socket.timeout)):
                recv_frame(b, timeout=0.05)
        finally:
            a.close()
            b.close()
