"""Out-of-process shards: real processes, framed RPC, SIGKILL failover.

Everything here spawns actual shard-host processes (fork + Unix socket),
so "shard death" is a literal ``kill -9`` and the only survivor is the
journal *file* — the strongest version of the failover claim the
in-process tests make.
"""

import functools
import os
import threading
import time

import pytest

from repro.cluster import (
    CircuitBreaker,
    ClusterRouter,
    ClusterShard,
    RemoteShardClient,
    ShardState,
)
from repro.errors import ShardUnreachable
from repro.faults.plan import TRANSPORT_SITE, FaultKind, FaultPlan


def val(ws, i=0):
    time.sleep(0.002)
    return i * 7


def alts(i):
    # remote alternatives cross a process boundary: partials of a
    # module-level function, never closures (closures don't pickle)
    return [functools.partial(val, i=i)]


def slow_val(ws, i=0):
    time.sleep(0.15)
    return i * 7


def slow_alts(i):
    # slow enough that a kill issued right after the submits lands while
    # most requests are still mid-flight: 8 x 0.15 s on 4 total worker
    # slots needs >=2 rounds, so the fleet cannot drain first and the
    # failover path under test is guaranteed to run
    return [functools.partial(slow_val, i=i)]


def make_remote(shard_id, tmp_path, **kw):
    kw.setdefault("workdir", str(tmp_path / f"shard-{shard_id}"))
    kw.setdefault("slots", 2)
    kw.setdefault("workers", 2)
    return RemoteShardClient(shard_id, **kw)


def no_dangling_threads(*names):
    living = {t.name for t in threading.enumerate()}
    return not living.intersection(names)


class TestLifecycle:
    def test_start_ping_stop(self, tmp_path):
        shard = make_remote(0, tmp_path)
        shard.start()
        try:
            assert shard.process_alive()
            assert shard.pid is not None and shard.pid != os.getpid()
            assert shard.answers_heartbeat()
            assert shard.state is ShardState.UP
            assert shard.idle_slots() == 2
            snap = shard.snapshot()
            assert snap["remote"] is True and snap["pid"] == shard.pid
        finally:
            shard.stop()
        assert not shard.process_alive()
        assert shard.state is ShardState.DEAD
        assert os.path.exists(shard.journal_path)

    def test_submit_resolves_and_journals(self, tmp_path):
        shard = make_remote(0, tmp_path)
        shard.start()
        resolved = []
        shard.service.on_resolve = lambda req, res: resolved.append((req.seq, res))
        try:
            seq = shard.service.submit("t0", alts(3))
            deadline = time.monotonic() + 10
            while not resolved and time.monotonic() < deadline:
                time.sleep(0.01)
            assert resolved and resolved[0][0] == seq
            result = resolved[0][1]
            assert result.status == "committed"
            assert result.outcome.winner.value == 21
        finally:
            shard.stop()
        # the journal FILE carries the applied block — kill-proof truth
        applied = [
            i["data"]["block"] for i, _ in shard.journal.applied_intents("block")
        ]
        assert applied == [seq]

    def test_crash_is_sigkill_grade(self, tmp_path):
        shard = make_remote(0, tmp_path)
        shard.start()
        pid = shard.pid
        shard.crash()
        assert not shard.process_alive()
        assert shard.state is ShardState.DEAD
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
        with pytest.raises(ShardUnreachable):
            shard.service.submit("t0", alts(1))

    def test_restart_bumps_incarnation(self, tmp_path):
        shard = make_remote(0, tmp_path)
        shard.start()
        assert shard.incarnation == 0
        shard.sigkill()
        shard.start()
        try:
            assert shard.incarnation == 1
            assert shard.answers_heartbeat()
        finally:
            shard.stop()


class TestRemoteCluster:
    def test_remote_burst_commits_exactly_once(self, tmp_path):
        remotes = [make_remote(i, tmp_path) for i in range(2)]
        router = ClusterRouter(
            remotes, heartbeat_s=0.05, detect_interval_s=0.02
        ).start()
        try:
            tickets = [router.submit(f"t{i % 4}", alts(i)) for i in range(12)]
            results = [t.result(timeout=30) for t in tickets]
            assert all(r.committed for r in results)
            for i, r in enumerate(results):
                assert r.value == i * 7
            audit = router.audit_applied()
            assert all(audit.get(r.seq, 0) == 1 for r in results)
        finally:
            router.stop()
        assert all(not r.process_alive() for r in remotes)

    def test_local_and_remote_mix_in_one_ring(self, tmp_path):
        shards = [ClusterShard(0, slots=2, workers=2), make_remote(1, tmp_path)]
        router = ClusterRouter(shards).start(detect=False)
        try:
            tickets = [router.submit(f"t{i % 5}", alts(i)) for i in range(10)]
            results = [t.result(timeout=30) for t in tickets]
            assert all(r.committed for r in results)
            audit = router.audit_applied()
            assert all(audit.get(r.seq, 0) == 1 for r in results)
        finally:
            router.stop()

    def test_sigkill_mid_burst_fails_over(self, tmp_path):
        remotes = [
            make_remote(
                i, tmp_path, call_timeout_s=0.5,
                breaker_threshold=2, breaker_cooldown_s=0.3,
            )
            for i in range(3)
        ]
        router = ClusterRouter(
            remotes, heartbeat_s=0.05, miss_threshold=2, detect_interval_s=0.02
        ).start()
        try:
            tickets = []
            for i in range(18):
                tickets.append(router.submit(f"t{i % 6}", alts(i)))
                if i == 8:
                    remotes[1].sigkill()  # real kill -9, detector must notice
            results = [t.result(timeout=30) for t in tickets]
            assert all(r.committed for r in results), [
                (r.status, r.reason) for r in results if not r.committed
            ]
            audit = router.audit_applied()
            doubles = {s: c for s, c in audit.items() if c > 1}
            assert not doubles, f"double commits: {doubles}"
            assert all(audit.get(r.seq, 0) == 1 for r in results)
        finally:
            router.stop()

    def test_spare_degrades_remote_to_local(self, tmp_path):
        remotes = [
            make_remote(
                i, tmp_path, call_timeout_s=0.3,
                breaker_threshold=2, breaker_cooldown_s=0.2,
            )
            for i in range(2)
        ]
        router = ClusterRouter(
            remotes, heartbeat_s=0.05, miss_threshold=2, detect_interval_s=0.02,
            spare_factory=lambda: ClusterShard(100, slots=4, workers=4),
        ).start()
        try:
            tickets = [
                router.submit(f"t{i % 3}", slow_alts(i)) for i in range(8)
            ]
            for shard in remotes:
                shard.sigkill()  # the whole remote fleet dies
            results = [t.result(timeout=30) for t in tickets]
            assert all(r.committed for r in results), [
                (r.status, r.reason) for r in results if not r.committed
            ]
            assert 100 in router.snapshot()["retired"] or any(
                m["shard"] == 100 for m in router.snapshot()["members"]
            )
            audit = router.audit_applied()
            assert not {s: c for s, c in audit.items() if c > 1}
        finally:
            router.stop()


class TestBreaker:
    def test_unit_state_machine(self):
        now = [0.0]
        transitions = []
        b = CircuitBreaker(
            threshold=2, cooldown_s=1.0, clock=lambda: now[0],
            on_transition=transitions.append,
        )
        assert b.allow() and b.state == "closed"
        b.record_failure()
        assert b.allow()  # one failure: still closed
        b.record_failure()
        assert b.state == "open" and not b.allow()
        now[0] = 1.5  # past cooldown: exactly one probe allowed
        assert b.allow() and b.state == "half-open"
        assert not b.allow()
        b.record_failure()  # probe failed: re-open
        assert b.state == "open" and not b.allow()
        now[0] = 3.0
        assert b.allow()
        b.record_ok()  # probe succeeded: closed again
        assert b.state == "closed" and b.allow()
        assert transitions == ["open", "half-open", "open", "half-open", "closed"]

    def test_sigstop_opens_breaker_and_cont_recovers(self, tmp_path):
        shard = make_remote(
            0, tmp_path, call_timeout_s=0.2, heartbeat_timeout_s=0.2,
            breaker_threshold=2, breaker_cooldown_s=0.3,
        )
        shard.start()
        try:
            assert shard.answers_heartbeat()
            shard.sigstop()
            assert not shard.answers_heartbeat()
            assert not shard.answers_heartbeat()
            assert shard.breaker.state == "open"
            # while open, beats fail fast (no socket wait)
            t0 = time.monotonic()
            assert not shard.answers_heartbeat()
            assert time.monotonic() - t0 < 0.1
            shard.sigcont()
            time.sleep(0.35)  # past cooldown: half-open probe runs
            recovered = any(
                shard.answers_heartbeat() or time.sleep(0.1)
                for _ in range(20)
            )
            assert recovered
            assert shard.breaker.state == "closed"
        finally:
            shard.stop()


class TestTransportFaults:
    def test_torn_frames_are_retried_through(self, tmp_path):
        plan = FaultPlan(seed=11, rates={FaultKind.TORN_FRAME: 0.3})
        shard = make_remote(0, tmp_path, fault_plan=plan)
        shard.start()
        resolved = []
        shard.service.on_resolve = lambda req, res: resolved.append(req.seq)
        try:
            seqs = [shard.service.submit(f"t{i % 3}", alts(i)) for i in range(10)]
            deadline = time.monotonic() + 20
            while len(resolved) < len(seqs) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert sorted(resolved) == sorted(seqs)
        finally:
            shard.stop()
        torn = [r for r in plan.injections if r["kind"] == "torn-frame"]
        assert torn, "the plan must actually have torn frames"
        applied = [
            i["data"]["block"] for i, _ in shard.journal.applied_intents("block")
        ]
        assert sorted(applied) == sorted(seqs)  # exactly once despite resends

    def test_socket_stall_rides_timeout_and_dedup(self, tmp_path):
        # stalls longer than the per-call timeout force resends; the
        # host's idempotency cache must keep submits single-execution
        plan = FaultPlan(
            seed=7, rates={FaultKind.SOCKET_STALL: 0.25}, socket_stall_s=0.35,
        )
        shard = make_remote(0, tmp_path, fault_plan=plan, call_timeout_s=0.15)
        shard.start()
        resolved = []
        shard.service.on_resolve = lambda req, res: resolved.append(req.seq)
        try:
            seqs = [shard.service.submit(f"t{i % 3}", alts(i)) for i in range(8)]
            deadline = time.monotonic() + 30
            while len(set(resolved)) < len(seqs) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert sorted(set(resolved)) == sorted(seqs)
        finally:
            shard.stop()
        stalls = [r for r in plan.injections if r["kind"] == "socket-stall"]
        assert stalls, "the plan must actually have stalled"
        applied = [
            i["data"]["block"] for i, _ in shard.journal.applied_intents("block")
        ]
        assert sorted(applied) == sorted(seqs), "a resend double-executed"

    def test_connect_refused_beats_fail_but_recover(self, tmp_path):
        # seed 3 refuses beats 13-15, 20, 26, 28: bursts of failure that
        # never reach the breaker threshold, so the shard stays usable
        plan = FaultPlan(seed=3, rates={FaultKind.CONNECT_REFUSED: 0.3})
        shard = make_remote(0, tmp_path, fault_plan=plan)
        shard.start()
        try:
            beats = [shard.answers_heartbeat() for _ in range(30)]
            assert sum(beats) >= 20, "most beats must land"
            assert not all(beats), "some beats must be refused"
            assert shard.breaker.state == "closed"
        finally:
            shard.stop()
        refused = [r for r in plan.injections if r["kind"] == "connect-refused"]
        assert refused, "the plan must actually have refused connects"


class TestDetectorHygiene:
    """Satellite: stop()/close() must reap the detector thread."""

    def test_stop_joins_detector_thread(self, tmp_path):
        router = ClusterRouter(
            [ClusterShard(0, slots=2, workers=2)], detect_interval_s=0.01
        ).start()
        assert any(
            t.name == "cluster-detector" for t in threading.enumerate()
        )
        router.stop()
        assert router._detector is None
        assert no_dangling_threads("cluster-detector")

    def test_close_is_stop(self):
        router = ClusterRouter(
            [ClusterShard(0, slots=2, workers=2)], detect_interval_s=0.01
        ).start()
        router.close()
        assert router._detector is None
        assert no_dangling_threads("cluster-detector")
        router.close()  # idempotent

    def test_stop_with_remote_members_leaves_no_threads(self, tmp_path):
        remotes = [make_remote(i, tmp_path) for i in range(2)]
        router = ClusterRouter(remotes, detect_interval_s=0.02).start()
        router.submit("t0", alts(1)).result(timeout=30)
        router.stop()
        assert no_dangling_threads("cluster-detector")
        assert all(not r.process_alive() for r in remotes)
