"""The cluster router: placement, spill/steal, decommission, failover."""

import time

import pytest

from repro.cluster import ClusterRouter, ClusterShard, ShardState
from repro.distrib.lease import LeaseState
from repro.errors import ClusterError, NoSurvivingShard, ServiceStopped
from repro.faults.plan import CLUSTER_SITE, FaultKind, FaultPlan
from repro.obs import Observability


def value_alts(i):
    def alt(ws):
        return i

    return [alt]


def slow_alt(duration_s=0.15):
    def slow(ws):
        time.sleep(duration_s)
        return "slow"

    return [slow]


def make_router(n=3, slots=2, workers=2, **kw):
    shards = [ClusterShard(i, slots=slots, workers=workers) for i in range(n)]
    return ClusterRouter(shards, **kw)


class TestPlacement:
    def test_requests_route_by_ring_and_commit(self):
        with make_router(3).start(detect=False) as router:
            tickets = [
                router.submit(f"tenant-{i % 5}", value_alts(i)) for i in range(15)
            ]
            results = [t.result(timeout=10) for t in tickets]
        assert all(r.committed for r in results)
        assert {r.value for r in results} == set(range(15))
        # placement followed the ring (no failover happened)
        for r in results:
            assert r.shard_id == router.ring.route(r.tenant)
            assert r.failover == ""

    def test_submit_requires_running_cluster(self):
        router = make_router(2)
        with pytest.raises(ServiceStopped):
            router.submit("t", value_alts(1))

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ClusterError):
            ClusterRouter([ClusterShard(1), ClusterShard(1)])

    def test_no_surviving_shard_surfaces(self):
        router = make_router(1).start(detect=False)
        router.kill_shard(0)
        router.takeover(0)
        with pytest.raises(NoSurvivingShard):
            router.submit("t", value_alts(1))
        router.stop()

    def test_audit_counts_every_commit_once(self):
        with make_router(3).start(detect=False) as router:
            results = [
                router.submit(f"t{i % 4}", value_alts(i)).result(timeout=10)
                for i in range(12)
            ]
            audit = router.audit_applied()
        assert all(audit[r.seq] == 1 for r in results)


class TestSpillAndSteal:
    def test_saturated_home_spills_to_idle_shard(self):
        shards = [ClusterShard(i, slots=1, workers=1) for i in range(2)]
        router = ClusterRouter(shards, steal=False).start(detect=False)
        try:
            tenant = "sp"
            home = router.ring.route(tenant)
            blockers = [router.submit(tenant, slow_alt()) for _ in range(3)]
            time.sleep(0.05)  # let the blocker occupy home's only slot
            spilled = router.submit(tenant, value_alts(42)).result(timeout=10)
            assert spilled.committed
            assert spilled.shard_id != home
            for b in blockers:
                assert b.result(timeout=10).committed
        finally:
            router.stop()

    def test_steal_round_moves_backlog_to_idle_shard(self):
        shards = [ClusterShard(i, slots=1, workers=1) for i in range(2)]
        router = ClusterRouter(
            shards, steal=False, spill=False
        ).start(detect=False)
        try:
            tenant = "sp"
            home = router.ring.route(tenant)
            blockers = [router.submit(tenant, slow_alt()) for _ in range(2)]
            queued = [router.submit(tenant, value_alts(i)) for i in range(4)]
            time.sleep(0.05)
            moved = router.steal_round()
            assert moved > 0
            results = [q.result(timeout=10) for q in queued]
            assert all(r.committed for r in results)
            assert any(r.shard_id != home for r in results)
            for b in blockers:
                b.result(timeout=10)
        finally:
            router.stop()


class TestDecommission:
    def test_decommission_reroutes_backlog(self):
        shards = [ClusterShard(i, slots=1, workers=1) for i in range(2)]
        router = ClusterRouter(
            shards, steal=False, spill=False
        ).start(detect=False)
        try:
            tenant = "sp"
            home = router.ring.route(tenant)
            blockers = [router.submit(tenant, slow_alt()) for _ in range(2)]
            queued = [router.submit(tenant, value_alts(i)) for i in range(3)]
            time.sleep(0.03)
            router.decommission(home)
            results = [q.result(timeout=10) for q in queued]
            # the backlog re-routed to the survivor instead of failing
            assert all(r.committed for r in results)
            assert all(r.failover == "rerouted" for r in results)
            assert all(r.shard_id != home for r in results)
            for b in blockers:
                assert b.result(timeout=10).committed
        finally:
            router.stop()


class TestCrashTakeover:
    def test_kill_and_takeover_settles_every_request(self):
        with make_router(3).start(detect=False) as router:
            tickets = [router.submit(f"t{i}", value_alts(i)) for i in range(9)]
            victim = router.ring.route("t0")
            router.kill_shard(victim)
            report = router.takeover(victim)
            assert not report["stale"]
            results = [t.result(timeout=10) for t in tickets]
            assert all(r.committed for r in results)
            # failover work is marked
            moved = [r for r in results if r.failover]
            assert all(r.failover in ("replayed", "relanded") for r in moved)
            audit = router.audit_applied()
        assert all(audit.get(r.seq, 0) == 1 for r in results)

    def test_replayed_results_carry_the_journal_value(self):
        with make_router(2).start(detect=False) as router:
            tickets = [router.submit(f"t{i}", value_alts(i)) for i in range(6)]
            # wait for all to finish serving, so every commit is journaled
            results = [t.result(timeout=10) for t in tickets]
            assert all(r.committed for r in results)

            # now a fresh burst, killed immediately: whatever committed
            # before the crash must replay with its original value
            tickets = [router.submit(f"t{i}", value_alts(i + 100)) for i in range(6)]
            victim = router.ring.route("t0")
            router.kill_shard(victim)
            router.takeover(victim)
            for i, t in enumerate(tickets):
                r = t.result(timeout=10)
                assert r.committed
                assert r.value == i + 100
                if r.failover == "replayed":
                    assert r.result.replayed

    def test_takeover_is_idempotent(self):
        with make_router(2).start(detect=False) as router:
            router.kill_shard(0)
            first = router.takeover(0)
            second = router.takeover(0)
        assert not first["stale"]
        assert second["stale"]
        assert second["replayed"] == second["relanded"] == 0

    def test_takeover_hands_over_the_shard_lease(self):
        with make_router(2).start(detect=False) as router:
            victim = router.shard(0)
            router.kill_shard(0)
            router.takeover(0)
            assert victim.lease.state is LeaseState.RECLAIMED
            assert victim.state is ShardState.DEAD


class TestHeartbeatDetection:
    def test_silent_crash_is_detected_and_taken_over(self):
        with make_router(2, miss_threshold=3).start(detect=False) as router:
            victim = router.shard(router.ring.route("tX"))
            victim.crash()  # dies without telling the router
            for _ in range(4):
                router.heartbeat_round()
            members = {s["shard"] for s in router.snapshot()["members"]}
            assert victim.shard_id not in members
            assert victim.lease.state is LeaseState.RECLAIMED
            assert "declare-dead" in victim.lease.event_names

    def test_healthy_shards_keep_renewing(self):
        with make_router(2).start(detect=False) as router:
            for _ in range(10):
                router.heartbeat_round()
            assert router.shards_up == 2
            for shard in (router.shard(0), router.shard(1)):
                assert shard.lease.state is LeaseState.ACTIVE
                assert shard.lease.beats_ok == 10

    def test_background_detector_catches_a_kill(self):
        router = make_router(3, detect_interval_s=0.005).start()
        try:
            tickets = [router.submit(f"t{i}", value_alts(i)) for i in range(9)]
            victim = router.ring.route("t0")
            router.shard(victim).crash()
            deadline = time.time() + 5
            while router.shards_up > 2 and time.time() < deadline:
                time.sleep(0.01)
            assert router.shards_up == 2
            results = [t.result(timeout=10) for t in tickets]
            assert all(r.committed for r in results)
            audit = router.audit_applied()
            assert all(audit.get(r.seq, 0) == 1 for r in results)
        finally:
            router.stop()


class TestInjectedClusterFaults:
    def test_stale_takeover_never_double_commits(self):
        plan = FaultPlan(seed=7, rates={FaultKind.STALE_TAKEOVER: 0.2})
        obs = Observability()
        shards = [
            ClusterShard(i, slots=2, workers=2, fault_plan=plan, obs=obs)
            for i in range(3)
        ]
        router = ClusterRouter(shards, fault_plan=plan, obs=obs).start(detect=False)
        try:
            tickets = [router.submit(f"t{i}", value_alts(i)) for i in range(9)]
            takeovers = 0
            for _ in range(12):
                before = router.shards_up
                router.heartbeat_round()
                takeovers += before - router.shards_up
            assert takeovers > 0, "seed 7 should fire at least one stale takeover"
            results = [t.result(timeout=10) for t in tickets]
            assert all(r.committed for r in results)
            audit = router.audit_applied()
            assert all(audit.get(r.seq, 0) == 1 for r in results)
        finally:
            router.stop()

    def test_router_partition_suspects_then_recovers(self):
        # find a seed+shard where a partition window fires
        plan = FaultPlan(seed=11, rates={FaultKind.ROUTER_PARTITION: 0.5})
        shards = [ClusterShard(i, slots=1, workers=1, fault_plan=plan) for i in range(2)]
        # long miss threshold: the partition (4 beats) ends before
        # declaration (6 misses), so the shard must recover, not die
        router = ClusterRouter(
            shards, fault_plan=plan, miss_threshold=6, lease_term_s=10.0
        ).start(detect=False)
        try:
            suspected = False
            for _ in range(24):
                router.heartbeat_round()
                if any(
                    s["state"] == "suspect"
                    for s in router.snapshot()["members"]
                ):
                    suspected = True
            assert suspected, "seed 11 should partition the router at least once"
            assert router.shards_up == 2  # everyone recovered
            for i in range(2):
                assert router.shard(i).lease.alive
        finally:
            router.stop()

    def test_crash_decision_is_deterministic(self):
        plan = FaultPlan(seed=4, rates={FaultKind.SHARD_CRASH: 0.5})
        shards = [ClusterShard(i, fault_plan=plan) for i in range(4)]
        router = ClusterRouter(shards, fault_plan=plan)
        decisions = [router.crash_decision(i, epoch=0) for i in range(4)]
        again = [router.crash_decision(i, epoch=0) for i in range(4)]
        assert decisions == again
        assert any(d is not None for d in decisions)
        for d in decisions:
            if d is not None:
                assert 0.0 <= d <= 1.0


class TestScaleOut:
    def test_add_shard_joins_ring_and_serves(self):
        with make_router(2).start(detect=False) as router:
            router.add_shard(ClusterShard(2))
            assert router.shards_up == 3
            results = [
                router.submit(f"t{i}", value_alts(i)).result(timeout=10)
                for i in range(12)
            ]
            assert all(r.committed for r in results)
            assert {r.shard_id for r in results} == {0, 1, 2}

    def test_cluster_metrics_are_exported(self):
        obs = Observability()
        shards = [ClusterShard(i, slots=1, workers=1, obs=obs) for i in range(2)]
        router = ClusterRouter(shards, obs=obs).start(detect=False)
        try:
            for i in range(6):
                router.submit(f"t{i}", value_alts(i)).result(timeout=10)
            router.kill_shard(0)
            router.takeover(0)
        finally:
            router.stop()
        reg = obs.registry
        assert "mw_cluster_requests_total" in reg
        assert "mw_cluster_takeovers_total" in reg
        assert "mw_cluster_shards_up" in reg
        assert reg.get("mw_cluster_requests_total").total() >= 6
        assert reg.get("mw_cluster_takeovers_total").total() == 1
