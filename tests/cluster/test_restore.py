"""ClusterRouter.restore: whole-cluster cold restart from shard journals.

The nastiest restart shape: requests died mid-flight on several shards,
some had already been taken over and committed on a *survivor* rather
than their home shard, some admits were duplicated by steal/re-land
races. Restore must cross-audit every journal — a durable block win
anywhere means replay, never re-run — deduplicate sealed admits, and
re-admit the rest under their original seqs.
"""

import threading
import time

from repro.cluster import ClusterRouter, ClusterShard
from repro.journal import CommitJournal, MemoryJournalStorage, find_block_win


def build_alternatives(spec):
    n = spec["n"]

    def compute(ws):
        ws["n"] = n
        return n * 13

    return [compute]


def _cluster(storages, **shard_kwargs):
    shards = [
        ClusterShard(
            sid, slots=2, workers=2,
            journal=CommitJournal(storage=storage),
            journal_admission=True, **shard_kwargs,
        )
        for sid, storage in sorted(storages.items())
    ]
    return ClusterRouter(shards).start(detect=False)


def _reopen(storages):
    return {sid: CommitJournal(storage=s) for sid, s in sorted(storages.items())}


def test_restore_replays_committed_and_readmits_sealed():
    storages = {sid: MemoryJournalStorage() for sid in range(3)}
    router = _cluster(storages)
    gate = threading.Event()

    # half commit before the crash, half jam behind a blocked worker
    done = [
        router.submit(f"t{i}", build_alternatives({"n": i}), spec={"n": i})
        for i in range(3)
    ]
    committed = {t.seq: t.result(timeout=30) for t in done}
    assert all(r.committed for r in committed.values())
    jammed = []
    for i in range(3, 9):
        jammed.append(
            router.submit(
                "jam", [lambda ws, _g=gate: _g.wait(30)], spec={"n": i}
            )
        )
    router.crash()
    gate.set()

    restored, report = ClusterRouter.restore(
        _reopen(storages), build_alternatives=build_alternatives,
        shard_kwargs=dict(slots=2, workers=2), detect=False,
    )
    try:
        # committed-before-crash seqs are never re-run: either replayed
        # into report.results now, or left settled in the journals
        for seq, res in committed.items():
            if seq in report.results:
                assert report.results[seq].status == "committed"
                assert report.results[seq].value == res.value
            assert seq not in report.re_admitted
        # jammed seqs come back: replayed if their block raced to apply
        # before the crash, re-admitted (original seq) otherwise
        for t in jammed:
            covered = (
                t.seq in report.results
                or t.seq in report.tickets
                or t.seq in report.dropped
            )
            assert covered, f"request {t.seq} lost by restore"
            assert t.seq not in report.dropped, "spec'd requests are rebuildable"
            if t.seq in report.tickets:
                result = report.tickets[t.seq].result(timeout=30)
                assert result.seq == t.seq
        # cross-journal exactly-once audit
        audit = restored.audit_applied()
        for seq, count in audit.items():
            assert count <= 1, f"request {seq} applied {count} times"
        # fresh admissions never reuse a journalled seq
        floor_ticket = restored.submit(
            "t", build_alternatives({"n": 99}), spec={"n": 99}
        )
        assert floor_ticket.seq >= report.seq_floor
        assert floor_ticket.result(timeout=30).committed
    finally:
        restored.stop()


def test_takeover_survivor_win_is_never_rerun_by_restarted_home():
    storages = {sid: MemoryJournalStorage() for sid in range(3)}
    router = _cluster(storages)

    calls = []

    def build_counting(spec):
        n = spec["n"]

        def compute(ws):
            calls.append(n)
            return n * 13

        return [compute]

    # land a request, kill its home shard before the worker finishes,
    # and let takeover re-land it on a survivor — which commits it
    slow_gate = threading.Event()

    def slow(ws):
        slow_gate.wait(5)
        return 4 * 13

    ticket = router.submit("victim", [slow], spec={"n": 4})
    time.sleep(0.05)
    home = None
    with router._lock:
        home = router._inflight[ticket.seq].shard_id
    router.kill_shard(home)
    slow_gate.set()
    router.takeover(home)
    result = ticket.result(timeout=30)
    assert result.committed
    winner_sid = next(
        sid for sid, j in _reopen(storages).items()
        if find_block_win(j, ticket.seq) is not None
    )

    router.crash()
    calls.clear()
    restored, report = ClusterRouter.restore(
        _reopen(storages), build_alternatives=build_counting,
        shard_kwargs=dict(slots=2, workers=2), detect=False,
    )
    try:
        # the home shard's sealed admit is settled from the survivor's
        # durable win — replayed, not re-run
        assert ticket.seq in report.results
        replayed = report.results[ticket.seq]
        assert replayed.status == "committed"
        assert replayed.value == result.value, "byte-identical replay"
        assert replayed.failover == "replayed"
        assert replayed.shard_id == winner_sid
        assert ticket.seq not in report.re_admitted
        assert calls == [], "restore must not re-execute the block"
    finally:
        restored.stop()


def test_duplicate_sealed_admits_deduplicated_as_superseded():
    storages = {sid: MemoryJournalStorage() for sid in range(2)}
    # forge the post-crash shape a steal/re-land race leaves behind:
    # the same request sealed (unapplied) in two journals
    for sid, storage in storages.items():
        journal = CommitJournal(storage=storage)
        txn = journal.begin(
            "admit", request=5, tenant="dup", spec={"n": 5},
            priority=0, cost=1.0, timeout=None,
        )
        journal.seal(txn)

    restored, report = ClusterRouter.restore(
        _reopen(storages), build_alternatives=build_alternatives,
        shard_kwargs=dict(slots=2, workers=2), detect=False,
    )
    try:
        assert report.superseded == [5]
        assert report.re_admitted == [5], "one copy survives, one is cut"
        result = report.tickets[5].result(timeout=30)
        assert result.committed and result.value == 5 * 13
        audit = restored.audit_applied()
        assert audit.get(5) == 1, "exactly one applied block win"
    finally:
        restored.stop()


def test_fenced_shards_sealed_work_recovers_at_restart():
    """A fenced (false-positive-dead) shard's requests survive a cold
    restart exactly like a crashed shard's: sealed admits re-admitted,
    survivor wins replayed — fencing must not strand durable work."""
    storages = {sid: MemoryJournalStorage() for sid in range(3)}
    router = _cluster(storages)
    gate = threading.Event()
    jam = [
        router.submit("jam", [lambda ws, _g=gate: _g.wait(30)], spec={"n": i})
        for i in range(4)
    ]
    # excommunicate every shard that holds work (partition false positive)
    with router._lock:
        holding = {router._inflight[t.seq].shard_id for t in jam}
    for sid in holding:
        router._shards[sid].fence()
    router.crash()
    gate.set()

    restored, report = ClusterRouter.restore(
        _reopen(storages), build_alternatives=build_alternatives,
        shard_kwargs=dict(slots=2, workers=2), detect=False,
    )
    try:
        for t in jam:
            assert (
                t.seq in report.results or t.seq in report.tickets
            ), f"fenced shard stranded request {t.seq}"
            if t.seq in report.tickets:
                assert report.tickets[t.seq].result(timeout=30).seq == t.seq
        for seq, count in restored.audit_applied().items():
            assert count <= 1, (seq, count)
    finally:
        restored.stop()
