"""Seeded shard-kill fuzz: every admitted request commits exactly once.

Each seed runs a burst against a 3-shard cluster, consults the fault
plan's ``cluster`` site for which shard dies and when (mid-burst), kills
it there, runs takeover, then audits every journal the cluster ever
owned: a committed request's ``block`` transaction applied in exactly
one journal — 0 would be a lost commit, ≥2 a double commit. The
benchmark (``bench_cluster_scale``) runs the same audit over ≥25 seeds;
this is the always-on subset. ``CLUSTER_FUZZ_SEEDS`` raises the count.
"""

import os
import time

import pytest

from repro.cluster import ClusterRouter, ClusterShard
from repro.faults.plan import FaultKind, FaultPlan

SEEDS = range(1, 1 + int(os.environ.get("CLUSTER_FUZZ_SEEDS", "6")))


def alts(i):
    def compute(ws):
        time.sleep(0.001)
        return i * 7

    return [compute]


@pytest.mark.parametrize("seed", SEEDS)
def test_mid_burst_shard_kill_commits_exactly_once(seed):
    plan = FaultPlan(
        seed=seed,
        rates={FaultKind.SHARD_CRASH: 0.6},
        shard_crash_fraction=0.5,
    )
    shards = [ClusterShard(i, slots=2, workers=2, fault_plan=None) for i in range(3)]
    router = ClusterRouter(shards, fault_plan=plan).start(detect=False)
    n_requests = 30
    try:
        # which shard dies this epoch, and at what point of the burst?
        doomed = [
            (sid, router.crash_decision(sid, epoch=0))
            for sid in range(3)
            if router.crash_decision(sid, epoch=0) is not None
        ]
        kill_at = {
            sid: int(frac * n_requests) for sid, frac in doomed[:2]
        }  # keep one survivor

        tickets = []
        for i in range(n_requests):
            for sid, at in list(kill_at.items()):
                if i == at:
                    router.kill_shard(sid)
                    router.takeover(sid)
                    del kill_at[sid]
            tickets.append(router.submit(f"tenant-{i % 6}", alts(i)))
        for sid in kill_at:
            router.kill_shard(sid)
            router.takeover(sid)

        results = [t.result(timeout=30) for t in tickets]
        committed = [r for r in results if r.committed]
        # nothing may be lost: every admitted request settles committed
        # (failed would mean the re-land path dropped it on the floor —
        # with a survivor left there is always somewhere to land)
        assert len(committed) == n_requests, [
            (r.status, r.reason) for r in results if not r.committed
        ]
        # and every result — served, replayed or re-landed — carries the
        # value its alternatives compute
        for i, r in enumerate(results):
            assert r.value == i * 7, (i, r)

        audit = router.audit_applied()
        for r in committed:
            applied = audit.get(r.seq, 0)
            assert applied == 1, (
                f"seed {seed}: request {r.seq} applied {applied} times "
                f"(failover={r.failover!r})"
            )
    finally:
        router.stop()


@pytest.mark.parametrize("seed", [2, 9])
def test_detector_driven_kill_with_partitions(seed):
    """Crash + router partitions at once, detection via heartbeats only."""
    plan = FaultPlan(
        seed=seed,
        rates={
            FaultKind.ROUTER_PARTITION: 0.15,
            FaultKind.HEARTBEAT_MISS: 0.05,
        },
        partition_beats=2.0,
    )
    shards = [ClusterShard(i, slots=2, workers=2) for i in range(3)]
    router = ClusterRouter(
        shards, fault_plan=plan, miss_threshold=4, lease_term_s=100.0
    ).start(detect=False)
    try:
        tickets = [router.submit(f"t{i % 5}", alts(i)) for i in range(20)]
        victim = router.ring.route("t0")
        router.shard(victim).crash()
        for _ in range(60):
            router.heartbeat_round()
            if victim not in {s["shard"] for s in router.snapshot()["members"]}:
                break
        members = {s["shard"] for s in router.snapshot()["members"]}
        assert victim not in members, "heartbeats must find the corpse"
        results = [t.result(timeout=30) for t in tickets]
        assert all(r.committed for r in results)
        audit = router.audit_applied()
        assert all(audit.get(r.seq, 0) == 1 for r in results)
    finally:
        router.stop()
