"""Unit tests for sink/source devices and source buffering."""

import pytest

from repro.devices.backing_store import BackingStoreDevice
from repro.devices.buffered import BufferedSource
from repro.devices.teletype import Teletype
from repro.errors import InputExhausted


class TestTeletype:
    def test_is_source(self):
        assert Teletype().is_source

    def test_write_is_observable(self):
        tty = Teletype()
        tty.write(b"hello ")
        tty.write(b"world")
        assert tty.text == "hello world"

    def test_read_consumes_input(self):
        tty = Teletype(input_script=b"abcdef")
        assert tty.read(3) == b"abc"
        assert tty.read(10) == b"def"  # partial tail still returned
        with pytest.raises(InputExhausted):
            tty.read(1)  # no silent b"" past the script's end

    def test_exhaustion_clears_after_feed(self):
        tty = Teletype(input_script=b"ab")
        tty.read(2)
        with pytest.raises(InputExhausted):
            tty.read(1)
        tty.feed(b"c")
        assert tty.read(1) == b"c"

    def test_legacy_empty_policy(self):
        tty = Teletype(input_script=b"ab", exhausted="empty")
        tty.read(2)
        assert tty.read(1) == b""  # opt-in EOF-as-empty

    def test_zero_byte_read_never_raises(self):
        tty = Teletype()
        assert tty.read(0) == b""

    def test_feed_appends(self):
        tty = Teletype()
        tty.feed(b"xy")
        assert tty.read(2) == b"xy"


class TestBackingStore:
    def test_is_sink(self):
        assert not BackingStoreDevice().is_source

    def test_direct_write_read(self):
        disk = BackingStoreDevice(size=64)
        disk.write(b"data", offset=10)
        assert disk.read(4, offset=10) == b"data"

    def test_out_of_range_write_rejected(self):
        disk = BackingStoreDevice(size=8)
        with pytest.raises(ValueError):
            disk.write(b"123456789")

    def test_staged_write_invisible_until_commit(self):
        disk = BackingStoreDevice(size=32)
        disk.stage_write(world=7, data=b"WORLD7", offset=0)
        assert disk.read(6) == bytes(6)  # outsiders see nothing
        disk.commit_world(7)
        assert disk.read(6) == b"WORLD7"

    def test_staging_world_reads_own_writes(self):
        # the transaction "can read what was written" (paper section 2.1)
        disk = BackingStoreDevice(size=32)
        disk.write(b"base", offset=0)
        disk.stage_write(world=7, data=b"X", offset=1)
        assert disk.read(4, offset=0, world=7) == b"bXse"
        assert disk.read(4, offset=0, world=8) == b"base"

    def test_discard_leaves_no_trace(self):
        disk = BackingStoreDevice(size=32)
        disk.stage_write(world=7, data=b"SPECULATIVE")
        disk.discard_world(7)
        assert disk.read(11) == bytes(11)
        assert disk.discarded_writes == 1
        assert 7 not in disk.staged_worlds()

    def test_commit_applies_in_fifo_order(self):
        disk = BackingStoreDevice(size=8)
        disk.stage_write(world=1, data=b"AAAA", offset=0)
        disk.stage_write(world=1, data=b"BB", offset=1)
        disk.commit_world(1)
        assert disk.read(4) == b"ABBA"

    def test_transfer_world_moves_journal_in_order(self):
        disk = BackingStoreDevice(size=16)
        disk.stage_write(world=1, data=b"A", offset=0)
        disk.stage_write(world=2, data=b"B", offset=0)  # dst has prior writes
        disk.stage_write(world=1, data=b"C", offset=1)
        moved = disk.transfer_world(1, 2)
        assert moved == 2
        assert disk.staged_worlds() == [2]
        disk.commit_world(2)
        # dst's own write first, then src's in their original order
        assert disk.read(2) == b"AC"

    def test_transfer_world_empty_src(self):
        disk = BackingStoreDevice(size=16)
        assert disk.transfer_world(9, 2) == 0

    def test_independent_worlds(self):
        disk = BackingStoreDevice(size=8)
        disk.stage_write(world=1, data=b"1", offset=0)
        disk.stage_write(world=2, data=b"2", offset=0)
        disk.commit_world(2)
        disk.discard_world(1)
        assert disk.read(1) == b"2"


class TestBufferedSource:
    def test_wraps_sources_only(self):
        with pytest.raises(ValueError):
            BufferedSource(BackingStoreDevice())  # type: ignore[arg-type]

    def test_first_reader_pulls_later_readers_replay(self):
        tty = Teletype(input_script=b"abcdef")
        buf = BufferedSource(tty)
        assert buf.read(3, client="r1") == b"abc"
        assert buf.read(3, client="r2") == b"abc"  # replayed, not re-read
        assert tty.input_remaining == 3
        assert buf.real_reads == 1
        assert buf.replayed_reads == 1

    def test_readers_advance_independently(self):
        tty = Teletype(input_script=b"abcdef")
        buf = BufferedSource(tty)
        assert buf.read(2, client="r1") == b"ab"
        assert buf.read(4, client="r2") == b"abcd"
        assert buf.read(2, client="r1") == b"cd"

    def test_replicated_writes_deduplicated(self):
        tty = Teletype()
        buf = BufferedSource(tty)
        buf.write(b"out", client="r1")
        buf.write(b"out", client="r2")  # replica of the same computation
        assert tty.text == "out"

    def test_writer_extends_frontier(self):
        tty = Teletype()
        buf = BufferedSource(tty)
        buf.write(b"ab", client="r1")
        buf.write(b"abcd", client="r2")  # r2 is further along
        assert tty.text == "abcd"

    def test_forget_client(self):
        tty = Teletype(input_script=b"abc")
        buf = BufferedSource(tty)
        buf.read(2, client="gone")
        buf.forget_client("gone")
        assert buf.read(2, client="gone") == b"ab"  # starts over

    def test_reexecuted_world_replays_identical_bytes(self):
        # regression: a world that re-executes from scratch (attempt 2 of
        # a supervised retry) must see byte-identical input even though
        # the underlying source advanced past it in the meantime — the
        # Jefferson buffering that makes a source idempotent per world.
        tty = Teletype(input_script=b"0123456789")
        buf = BufferedSource(tty)
        first = buf.read(4, client="w1")
        # another world advances the underlying source well past w1
        buf.read(9, client="w2")
        advanced = tty.input_remaining
        # w1 dies and is re-executed from the top
        buf.forget_client("w1")
        replay = buf.read(4, client="w1")
        assert replay == first == b"0123"
        # and the replay came from the buffer: the source did not move
        assert tty.input_remaining == advanced

    def test_replay_identical_even_when_source_exhausted(self):
        # the re-executed world's bytes survive even total source
        # exhaustion — only reads past the buffered frontier would fault
        tty = Teletype(input_script=b"abcd")
        buf = BufferedSource(tty)
        first = buf.read(4, client="w1")
        buf.forget_client("w1")
        assert buf.read(4, client="w1") == first
        assert tty.input_remaining == 0
