"""Tests for machine profiles and the 1989 calibrations."""

import pytest

from repro.analysis.calibration import (
    ATT_3B2_310,
    HP_9000_350,
    MODERN_SIM,
    RFORK_LINK,
    MachineProfile,
    NetworkProfile,
)


class TestCalibration:
    def test_3b2_fork_matches_paper(self):
        pages = (320 * 1024) // ATT_3B2_310.page_size
        assert ATT_3B2_310.fork_cost(pages) == pytest.approx(0.031, rel=1e-6)

    def test_hp_fork_matches_paper(self):
        pages = (320 * 1024) // HP_9000_350.page_size
        assert HP_9000_350.fork_cost(pages) == pytest.approx(0.012, rel=1e-6)

    def test_copy_rates_match_paper(self):
        assert 1.0 / ATT_3B2_310.page_copy_s == pytest.approx(326.0)
        assert 1.0 / HP_9000_350.page_copy_s == pytest.approx(1034.0)

    def test_page_sizes(self):
        assert ATT_3B2_310.page_size == 2048
        assert HP_9000_350.page_size == 4096

    def test_elimination_constants_match_paper(self):
        # 16 children: ~40 ms waiting, ~20 ms asynchronous
        assert ATT_3B2_310.elimination_cost(16, synchronous=True) == pytest.approx(0.040)
        assert ATT_3B2_310.elimination_cost(16, synchronous=False) == pytest.approx(0.020)


class TestMachineProfile:
    def test_cost_helpers(self):
        p = MODERN_SIM
        assert p.fork_cost(0) == p.fork_fixed_s
        assert p.copy_cost(3) == pytest.approx(3 * p.page_copy_s)
        assert p.message_cost(0) == p.msg_fixed_s
        assert p.message_cost(1000) > p.msg_fixed_s

    def test_with_cpus(self):
        assert MODERN_SIM.with_cpus(8).cpus == 8
        assert MODERN_SIM.cpus == 1  # original untouched (frozen)

    def test_scaled(self):
        doubled = MODERN_SIM.scaled(2.0)
        assert doubled.fork_fixed_s == pytest.approx(2 * MODERN_SIM.fork_fixed_s)
        assert doubled.page_copy_s == pytest.approx(2 * MODERN_SIM.page_copy_s)
        assert doubled.page_size == MODERN_SIM.page_size  # sizes not scaled


class TestNetworkProfile:
    def test_transfer_time(self):
        link = NetworkProfile("t", latency_s=0.1, bandwidth_bytes_s=1000.0)
        assert link.transfer_time(500) == pytest.approx(0.6)

    def test_rfork_link_reproduces_observation(self):
        # ~0.85 s checkpoint + this link's transfer of 70K ≈ 1.3 s total
        transfer = RFORK_LINK.transfer_time(70 * 1024)
        assert 0.85 + transfer + 0.05 == pytest.approx(1.3, abs=0.05)
