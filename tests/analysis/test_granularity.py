"""Tests for the page-vs-value granularity ablation model."""

import math

import pytest

from repro.analysis.granularity import (
    AccessProfile,
    GranularityCosts,
    crossover_references,
    page_based_overhead,
    preferred_scheme,
    value_based_overhead,
)

COARSE = AccessProfile(
    objects=200, object_bytes=1024, objects_written=40, references=2_000_000
)
FINE = AccessProfile(
    objects=50, object_bytes=64, objects_written=5, references=200
)


class TestProfiles:
    def test_pages(self):
        p = AccessProfile(objects=10, object_bytes=1024, objects_written=2, references=0)
        assert p.state_bytes == 10_240
        assert p.pages(2048) == 5

    def test_pages_written_bounds(self):
        p = AccessProfile(objects=10, object_bytes=1024, objects_written=10, references=0)
        assert p.pages_written(2048) == 5  # fully dirty
        none = AccessProfile(objects=10, object_bytes=1024, objects_written=0, references=0)
        assert none.pages_written(2048) == 0

    def test_big_objects_dirty_at_least_one_page_each(self):
        p = AccessProfile(objects=4, object_bytes=8192, objects_written=3, references=0)
        assert p.pages_written(2048) >= 3


class TestSchemes:
    def test_page_wins_on_many_references(self):
        # the paper's domain: long computations, heavy referencing
        assert preferred_scheme(COARSE) == "page"
        assert value_based_overhead(COARSE) > page_based_overhead(COARSE)

    def test_value_wins_on_fine_grained_work(self):
        # Wilson's domain: tiny state, few references
        assert preferred_scheme(FINE) == "value"

    def test_page_overhead_is_startup_plus_dirty_pages(self):
        costs = GranularityCosts()
        expected = (
            COARSE.pages(costs.page_size) * costs.pte_copy_s
            + COARSE.pages_written(costs.page_size) * costs.page_copy_s
        )
        assert page_based_overhead(COARSE) == pytest.approx(expected)

    def test_value_overhead_scales_with_references(self):
        light = AccessProfile(100, 256, 10, references=1000)
        heavy = AccessProfile(100, 256, 10, references=100_000)
        assert value_based_overhead(heavy) > value_based_overhead(light)


class TestCrossover:
    def test_crossover_separates_regimes(self):
        base = AccessProfile(200, 1024, 40, references=0)
        cross = crossover_references(base)
        assert 0 < cross < math.inf
        below = AccessProfile(200, 1024, 40, references=int(cross * 0.5))
        above = AccessProfile(200, 1024, 40, references=int(cross * 2.0))
        assert preferred_scheme(below) == "value"
        assert preferred_scheme(above) == "page"

    def test_zero_when_page_always_wins(self):
        cheap_pages = GranularityCosts(pte_copy_s=0.0, page_copy_s=0.0)
        assert crossover_references(COARSE, cheap_pages) == 0.0

    def test_infinite_when_no_reference_tax(self):
        no_tax = GranularityCosts(ref_check_s=0.0)
        profile = AccessProfile(200, 1024, 40, references=0)
        if page_based_overhead(profile, no_tax) > value_based_overhead(profile, no_tax):
            assert math.isinf(crossover_references(profile, no_tax))
