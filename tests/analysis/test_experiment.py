"""Tests for the repeat-run experiment harness."""

import pytest

from repro.analysis.experiment import ExperimentRunner, speedup
from repro.core import Alternative
from repro.errors import WorldsError


def _make_alternatives():
    return [
        Alternative(lambda ws: "fast", name="fast", sim_cost=0.5),
        Alternative(lambda ws: "slow", name="slow", sim_cost=2.0),
    ]


def test_repeats_validated():
    with pytest.raises(WorldsError):
        ExperimentRunner(_make_alternatives, repeats=0)


def test_summary_statistics_on_sim():
    runner = ExperimentRunner(_make_alternatives, repeats=4)
    summary = runner.summarize("sim", backend="sim", cpus=2)
    assert summary.runs == 4
    assert summary.failures == 0
    assert summary.mean_s == pytest.approx(0.5, rel=0.05)
    assert summary.std_s == pytest.approx(0.0, abs=1e-6)  # sim is deterministic
    assert summary.winners == {"fast": 4}
    assert summary.dominant_winner == "fast"


def test_failures_counted():
    def make():
        def bad(ws):
            raise RuntimeError("x")

        return [Alternative(bad, name="bad", sim_cost=0.1)]

    runner = ExperimentRunner(make, repeats=3)
    summary = runner.summarize("failing", backend="sim")
    assert summary.failures == 3
    assert summary.dominant_winner is None


def test_fresh_state_per_run():
    counter = {"built": 0}

    def make_initial():
        counter["built"] += 1
        return {"n": counter["built"]}

    seen = []

    def make():
        def record(ws):
            seen.append(ws["n"])
            return ws["n"]

        return [Alternative(record, name="r", sim_cost=0.01)]

    ExperimentRunner(make, make_initial, repeats=3).summarize("s", backend="sim")
    assert seen == [1, 2, 3]


def test_compare_multiple_configurations():
    runner = ExperimentRunner(_make_alternatives, repeats=2)
    summaries = runner.compare(
        {
            "two-cpus": {"backend": "sim", "cpus": 2},
            "one-cpu": {"backend": "sim", "cpus": 1},
        }
    )
    by_label = {s.label: s for s in summaries}
    # with one CPU the fast alternative timeshares with the slow one
    assert by_label["one-cpu"].mean_s > by_label["two-cpus"].mean_s
    assert speedup(by_label["one-cpu"], by_label["two-cpus"]) > 1.5


def test_as_row_shape():
    runner = ExperimentRunner(_make_alternatives, repeats=1)
    row = runner.summarize("x", backend="sim", cpus=2).as_row()
    assert row[0] == "x" and row[1] == 1 and row[-1] == "fast"


def test_thread_backend_integration():
    import time

    def make():
        def quick(ws):
            time.sleep(0.01)
            return "quick"

        return [Alternative(quick, name="quick")]

    summary = ExperimentRunner(make, repeats=2).summarize("t", backend="thread")
    assert summary.failures == 0
    assert summary.mean_s >= 0.01
