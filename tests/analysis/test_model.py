"""Tests for the section 3 performance algebra."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.model import (
    PerformanceModel,
    breakeven_overhead,
    breakeven_r_mu,
    c_best,
    c_mean,
    c_worst,
    figure3_curve,
    figure4_curve,
    parallel_wins,
    performance_improvement,
    pi_from_ratios,
    r_mu,
    r_o,
    speedup_vs_parallelized,
    superlinear_condition,
)

TIMES = [1.0, 2.0, 3.0, 6.0]


class TestBasics:
    def test_c_statistics(self):
        assert c_mean(TIMES) == 3.0
        assert c_best(TIMES) == 1.0
        assert c_worst(TIMES) == 6.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            c_mean([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            c_best([1.0, -0.5])

    def test_ratios(self):
        assert r_mu(TIMES) == 3.0
        assert r_o(TIMES, 0.5) == 0.5

    def test_zero_best_gives_infinite_ratio(self):
        assert math.isinf(r_mu([0.0, 1.0]))

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            r_o(TIMES, -1.0)


class TestPI:
    def test_pi_definition(self):
        # PI = mean / (best + overhead)
        assert performance_improvement(TIMES, 0.5) == pytest.approx(3.0 / 1.5)

    def test_pi_reexpression_equivalence(self):
        """The paper's PI = R_mu/(1+R_o) equals the direct ratio."""
        direct = performance_improvement(TIMES, 0.5)
        algebraic = pi_from_ratios(r_mu(TIMES), r_o(TIMES, 0.5))
        assert direct == pytest.approx(algebraic)

    def test_parallel_wins_iff_pi_above_one(self):
        assert parallel_wins(TIMES, 0.5)
        assert not parallel_wins([1.0, 1.0], 0.5)

    def test_breakeven_r_mu(self):
        assert breakeven_r_mu(0.5) == 1.5

    def test_breakeven_overhead(self):
        # at overhead == mean - best, PI == 1 exactly
        edge = breakeven_overhead(TIMES)
        assert performance_improvement(TIMES, edge) == pytest.approx(1.0)

    def test_zero_denominator_infinite_pi(self):
        assert math.isinf(performance_improvement([0.0, 4.0], 0.0))


class TestSuperlinear:
    def test_condition(self):
        n = 4
        hot = [1.0] + [100.0] * (n - 1)
        assert superlinear_condition(hot, 0.0)
        assert not superlinear_condition([1.0] * n, 0.0)

    def test_speedup_normalization(self):
        times = [1.0] + [100.0] * 3
        assert speedup_vs_parallelized(times, 0.0) == pytest.approx(
            performance_improvement(times) / 4
        )


class TestPerformanceModel:
    def test_from_times(self):
        model = PerformanceModel.from_times(TIMES, overhead=0.5)
        assert model.r_mu == 3.0
        assert model.r_o == 0.5
        assert model.pi == pytest.approx(2.0)
        assert model.wins

    def test_scale_invariance(self):
        model = PerformanceModel.from_times(TIMES, overhead=0.5)
        scaled = model.scaled(1000.0)
        assert scaled.pi == pytest.approx(model.pi)
        assert scaled.r_mu == pytest.approx(model.r_mu)

    def test_zero_best_edge(self):
        model = PerformanceModel(tau_mean=1.0, tau_best=0.0, tau_overhead=0.0)
        assert math.isinf(model.pi)


class TestCurves:
    def test_figure3_is_linear(self):
        pts = figure3_curve([0.0, 1.0, 2.0], 0.5)
        ys = [y for _, y in pts]
        assert ys[2] - ys[1] == pytest.approx(ys[1] - ys[0])
        assert ys[0] == 0.0

    def test_figure4_endpoints(self):
        pts = dict(figure4_curve([0.0, 1.0]))
        assert pts[0.0] == pytest.approx(math.e)
        assert pts[1.0] == pytest.approx(math.e / 2)


positive_times = st.lists(
    st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=10
)


@given(positive_times, st.floats(min_value=0, max_value=100))
@settings(max_examples=200, deadline=None)
def test_pi_identity_property(times, overhead):
    """Direct and re-expressed PI agree on arbitrary inputs."""
    direct = performance_improvement(times, overhead)
    algebraic = pi_from_ratios(r_mu(times), r_o(times, overhead))
    assert direct == pytest.approx(algebraic, rel=1e-9)


@given(positive_times)
@settings(max_examples=200, deadline=None)
def test_pi_zero_overhead_at_least_one(times):
    """With no overhead, racing can never lose: mean >= best."""
    assert performance_improvement(times, 0.0) >= 1.0 - 1e-12


@given(positive_times, st.floats(min_value=0, max_value=10),
       st.floats(min_value=0.01, max_value=10))
@settings(max_examples=200, deadline=None)
def test_pi_monotone_in_overhead(times, overhead, extra):
    assert performance_improvement(times, overhead + extra) <= performance_improvement(
        times, overhead
    )
