"""Tests for whole-domain analysis and overhead decomposition."""

import numpy as np
import pytest

from repro.analysis.domain import DomainAnalysis
from repro.analysis.overhead import OverheadBreakdown

ROTATING = [
    [1.0, 5.0],
    [5.0, 1.0],
    [1.0, 5.0],
    [5.0, 1.0],
]


class TestDomainAnalysis:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DomainAnalysis([])
        with pytest.raises(ValueError):
            DomainAnalysis([1.0, 2.0])  # 1-D
        with pytest.raises(ValueError):
            DomainAnalysis([[1.0, -1.0]])
        with pytest.raises(ValueError):
            DomainAnalysis([[1.0, 1.0]], overhead=-0.1)

    def test_scheme_expectations(self):
        domain = DomainAnalysis(ROTATING, overhead=0.5)
        assert domain.scheme_b_expected() == pytest.approx(3.0)
        assert domain.scheme_a_expected() == pytest.approx(3.0)  # both tie
        assert domain.scheme_c_expected() == pytest.approx(1.5)

    def test_domain_pi_and_best_fixed(self):
        domain = DomainAnalysis(ROTATING, overhead=0.5)
        assert domain.domain_pi() == pytest.approx(2.0)
        assert domain.pi_vs_best_fixed() == pytest.approx(2.0)

    def test_rotating_winners_histogram(self):
        domain = DomainAnalysis(ROTATING)
        assert domain.winner_histogram().tolist() == [2, 2]

    def test_complementarity_extremes(self):
        perfect = DomainAnalysis([[1.0, 100.0], [100.0, 1.0]])
        uniform = DomainAnalysis([[3.0, 3.0], [3.0, 3.0]])
        assert perfect.complementarity() > 0.9
        assert uniform.complementarity() == 0.0

    def test_win_fraction(self):
        mixed = DomainAnalysis(
            [[1.0, 10.0], [2.0, 2.0]],  # second input: no dispersion
            overhead=0.5,
        )
        assert mixed.win_fraction() == pytest.approx(0.5)

    def test_per_input_overhead_vector(self):
        domain = DomainAnalysis(ROTATING, overhead=[0.1, 0.2, 0.3, 0.4])
        expected = np.mean([1.1, 1.2, 1.3, 1.4])
        assert domain.scheme_c_expected() == pytest.approx(expected)

    def test_points(self):
        domain = DomainAnalysis(ROTATING, overhead=0.5)
        points = domain.points()
        assert len(points) == 4
        assert points[0].winner == 0
        assert points[1].winner == 1
        assert all(p.wins for p in points)

    def test_summary_keys(self):
        summary = DomainAnalysis(ROTATING).summary()
        assert set(summary) == {
            "scheme_a_expected",
            "scheme_b_expected",
            "scheme_c_expected",
            "domain_pi",
            "pi_vs_best_fixed",
            "win_fraction",
            "complementarity",
        }


class TestOverheadBreakdown:
    def test_total(self):
        b = OverheadBreakdown(setup_s=1.0, runtime_s=2.0, completion_s=0.5)
        assert b.total_s == 3.5

    def test_addition(self):
        a = OverheadBreakdown(setup_s=1.0)
        b = OverheadBreakdown(runtime_s=2.0, completion_s=1.0)
        combined = a + b
        assert combined.total_s == 4.0
        assert combined.setup_s == 1.0

    def test_dominated_by(self):
        assert OverheadBreakdown(runtime_s=5.0).dominated_by() == "runtime"
        assert OverheadBreakdown(setup_s=5.0, runtime_s=1.0).dominated_by() == "setup"

    def test_as_dict(self):
        d = OverheadBreakdown(setup_s=1.0).as_dict()
        assert d["setup_s"] == 1.0 and d["total_s"] == 1.0
