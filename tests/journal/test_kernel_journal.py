"""The journal wired through the simulation kernel's commit path."""

import pytest

from repro.devices.backing_store import BackingStoreDevice
from repro.devices.buffered import BufferedSource
from repro.devices.teletype import Teletype
from repro.journal import (
    CommitJournal,
    MemoryJournalStorage,
    SourceGate,
    recover,
)
from repro.kernel import Kernel


def K(**kw):
    kw.setdefault("cpus", 8)
    return Kernel(**kw)


def racing_block(ctx):
    """Two alternatives race through the gate; `a` is faster and wins."""

    def a(c):
        yield c.compute(0.5)
        yield c.device_write("tty", b"<a>")
        return "a"

    def b(c):
        yield c.compute(2.0)
        yield c.device_write("tty", b"<b>")
        return "b"

    yield ctx.device_write("tty", b"[start]")
    out = yield from ctx.run_alternatives([a, b])
    yield ctx.device_write("tty", b"[done]")
    return out.value


class TestKernelTransactions:
    def run_block(self, journal=None):
        # the gate always has *a* journal (it cannot work without one);
        # `journal` controls whether the KERNEL journals its transitions
        k = K(journal=journal)
        tty = Teletype("tty")
        k.add_device(SourceGate(tty, journal if journal is not None else CommitJournal()))
        pid = k.spawn(racing_block)
        k.run()
        return k, tty, pid

    def test_commit_eliminate_sync_all_journaled(self):
        j = CommitJournal()
        k, tty, pid = self.run_block(journal=j)
        assert k.result_of(pid) == "a"
        assert tty.output == b"[start]<a>[done]"
        kinds = [r["kind"] for r in j.records() if r["t"] == "intent"]
        assert "sync" in kinds
        assert "commit" in kinds
        assert "eliminate" in kinds
        assert "release" in kinds
        # every decision both sealed and applied: a clean shutdown
        assert recover(CommitJournal(MemoryJournalStorage(j.storage.load()))).clean

    def test_journal_disabled_behaviour_unchanged(self):
        j = CommitJournal()
        k1, tty1, p1 = self.run_block(journal=j)
        k2, tty2, p2 = self.run_block(journal=None)
        assert k1.result_of(p1) == k2.result_of(p2)
        assert tty1.output == tty2.output

    def test_split_journaled_on_predicated_message(self):
        # a receiver accepting a speculative message splits: that split
        # must leave an applied "split" txn with the clone's wid
        j = CommitJournal()
        k = K(journal=j, trace=True)

        def receiver(ctx):
            msg = yield ctx.recv(timeout=60.0)
            return "got" if msg else "timeout"

        def parent(ctx, dst):
            def talker(c):
                yield c.compute(0.1)
                yield c.send(dst, "news")
                yield c.compute(0.4)
                return "talker"

            out = yield from ctx.run_alternatives([talker])
            return out.value

        rpid = k.spawn(receiver, name="receiver")
        k.spawn(parent, rpid, name="parent")
        k.run()
        assert k.result_of(rpid) == "got"
        splits = [
            r for r in j.records()
            if r["t"] == "intent" and r["kind"] == "split"
        ]
        assert splits
        seq = splits[0]["seq"]
        assert j.status(seq) == "applied"
        assert "clone_wid" in j._applied[seq]


class TestDoubleCommitGuard:
    def test_backing_store_repeat_commit_is_noop(self):
        disk = BackingStoreDevice("disk", size=64)
        disk.stage_write(7, b"DATA", 0)
        disk.commit_world(7)
        assert disk.read(4) == b"DATA"
        assert disk.committed_writes == 1
        disk.commit_world(7)  # the kernel's second path reaches here
        assert disk.committed_writes == 1
        assert disk.double_commits == 1

    def test_recommit_after_restaging_applies(self):
        disk = BackingStoreDevice("disk", size=64)
        disk.stage_write(7, b"A", 0)
        disk.commit_world(7)
        disk.stage_write(7, b"B", 1)
        disk.commit_world(7)
        assert disk.read(2) == b"AB"
        assert disk.double_commits == 0

    def test_kernel_block_commits_each_sink_write_once(self):
        k = K()
        disk = BackingStoreDevice("disk", size=64)
        k.add_device(disk)

        def parent(ctx):
            def writer(c):
                yield c.compute(0.1)
                yield c.device_write("disk", b"WINNER", 0)
                return "writer"

            out = yield from ctx.run_alternatives([writer])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == "writer"
        assert disk.read(6) == b"WINNER"
        assert disk.committed_writes == 1


class TestEliminationForgetsDeviceState:
    def test_gate_ledger_and_positions_dropped_for_losers(self):
        j = CommitJournal()
        k = K(journal=j)
        tty = Teletype("tty", input_script=b"0123456789")
        gate = SourceGate(tty, j)
        k.add_device(gate)

        def parent(ctx):
            def fast(c):
                yield c.compute(0.1)
                data = yield c.device_read("tty", 2)
                return data

            def slow(c):
                data = yield c.device_read("tty", 2)
                yield c.device_write("tty", b"loser noise")
                yield c.compute(9.0)
                return data

            out = yield from ctx.run_alternatives([fast, slow])
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == b"01"
        assert tty.output == b""  # the loser's staged write evaporated
        # the loser's ledger and read position were forgotten at its
        # elimination; the winner's position migrated to the parent world
        # (wid 1), so the parent resumes reading where the winner stopped
        assert gate.staged_worlds() == []
        assert gate._read_pos == {1: 2}

    def test_buffered_source_positions_dropped_for_eliminated_pids(self):
        k = K()
        raw = Teletype("raw", input_script=b"0123456789")
        buffered = BufferedSource(raw, name="input")
        k.add_device(buffered)
        box = {}

        def parent(ctx):
            def fast(c):
                yield c.compute(0.1)
                data = yield c.device_read("input", 4)
                return data

            def slow(c):
                data = yield c.device_read("input", 4)
                yield c.compute(9.0)
                return data

            out = yield from ctx.run_alternatives([fast, slow])
            box["losers"] = [rec.index for rec in out.children if rec.status != "committed"]
            return out.value

        pid = k.spawn(parent)
        k.run()
        assert k.result_of(pid) == b"0123"
        # satellite regression: the eliminated alternative's pid must not
        # pin a per-client read position forever (only committed pids may)
        committed = {p for p in k.pid_worlds if p in k._committed}
        assert set(buffered._read_pos) <= committed


class TestCrashRecoverRerun:
    def test_crash_mid_block_then_recover_and_rerun(self):
        from repro.errors import JournalCrash
        from repro.faults import FaultKind, FaultPlan

        storage = MemoryJournalStorage()
        tty = Teletype("tty", input_script=b"XY")

        def program(ctx):
            yield ctx.device_write("tty", b"[start]")
            data = yield ctx.device_read("tty", 2)

            def a(c):
                yield c.compute(0.5)
                yield c.device_write("tty", b"<a>")
                return "a"

            def b(c):
                yield c.compute(2.0)
                yield c.device_write("tty", b"<b>")
                return "b"

            out = yield from ctx.run_alternatives([a, b])
            yield ctx.device_write("tty", b"[done]")
            return (data, out.value)

        # incarnation 1: the plan tears the first intent record
        plan = FaultPlan(seed=0, rates={FaultKind.TORN_RECORD: 1.0})
        j1 = CommitJournal(storage, fault_plan=plan)
        k1 = K(journal=j1)
        k1.add_device(SourceGate(tty, j1))
        k1.spawn(program)
        with pytest.raises(JournalCrash):
            k1.run()

        # incarnation 2: recover, then a full deterministic re-run
        j2 = CommitJournal(MemoryJournalStorage(storage.load()))
        gate2 = SourceGate(tty, j2)
        recover(j2, gates=[gate2])
        k2 = K(journal=j2)
        k2.add_device(gate2)
        pid = k2.spawn(program)
        k2.run()
        assert k2.result_of(pid) == (b"XY", "a")
        # exactly-once on the real device, despite the full re-run
        assert tty.output == b"[start]<a>[done]"
        assert tty.input_remaining == 0
