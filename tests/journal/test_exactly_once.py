"""Exactly-once at the layers above the kernel: backends, supervisor, rfork."""

import pytest

from repro.core.worlds import run_alternatives
from repro.faults import Supervisor
from repro.journal import CommitJournal, find_block_win
from repro.runtime.checkpoint import CheckpointImage


def fast(ws):
    ws["who"] = "fast"
    return "fast"


def slow(ws):
    import time

    time.sleep(0.3)
    ws["who"] = "slow"
    return "slow"


def boom(ws):
    raise RuntimeError("boom")


CALLS = {"n": 0}


def counting_task(state):
    CALLS["n"] += 1
    return state["x"] * 2


class TestBackendsRecordWins:
    @pytest.mark.parametrize("backend", ["fork", "thread", "sequential"])
    def test_win_journaled(self, backend):
        j = CommitJournal()
        outcome = run_alternatives(
            [fast, slow], backend=backend, block_id=3, journal=j
        )
        assert outcome.value == "fast"
        hit = find_block_win(j, 3)
        assert hit is not None
        assert hit["winner_name"] == "fast"
        assert hit["value"] == "fast"
        # exactly one block txn, sealed and applied
        blocks = [
            r for r in j.records() if r["t"] == "intent" and r["kind"] == "block"
        ]
        assert len(blocks) == 1
        assert j.status(blocks[0]["seq"]) == "applied"

    def test_no_journal_no_records(self):
        outcome = run_alternatives([fast], backend="sequential", block_id=3)
        assert outcome.value == "fast"

    def test_failed_block_records_nothing(self):
        j = CommitJournal()
        outcome = run_alternatives(
            [boom], backend="sequential", block_id=3, journal=j
        )
        assert outcome.winner is None
        assert find_block_win(j, 3) is None


class TestSupervisorReplay:
    def test_restarted_supervisor_replays_win(self):
        j = CommitJournal()
        sup = Supervisor(max_retries=0, block_id=11, journal=j)
        first = sup.run([fast], backend="sequential")
        assert first.value == "fast"
        assert "journal_recovered" not in first.extras
        # "restart": a new supervisor over the same journal — the block
        # must not run again (alternatives that would fail loudly prove it)
        sup2 = Supervisor(max_retries=0, block_id=11, journal=j)
        second = sup2.run([boom], backend="sequential")
        assert second.value == "fast"
        assert second.extras["journal_recovered"] is True

    def test_different_block_id_not_replayed(self):
        j = CommitJournal()
        Supervisor(max_retries=0, block_id=11, journal=j).run(
            [fast], backend="sequential"
        )
        outcome = Supervisor(max_retries=0, block_id=12, journal=j).run(
            [fast], backend="sequential"
        )
        assert "journal_recovered" not in outcome.extras

    def test_without_journal_reruns(self):
        sup = Supervisor(max_retries=0, block_id=11)
        assert sup.run([fast], backend="sequential").value == "fast"
        assert sup.run([fast], backend="sequential").value == "fast"


class TestRestartDedupe:
    def test_restart_in_fork_exactly_once_per_image(self):
        j = CommitJournal()
        image = CheckpointImage.capture(counting_task, {"x": 21}, "job")
        assert image.restart_in_fork(journal=j) == 42
        # the repeat (crash between child finish and caller consume)
        # replays the journalled value; a second run would have begun a
        # second "restart" txn, so one intent proves the task ran once
        assert image.restart_in_fork(journal=j) == 42
        restarts = [
            r for r in j.records() if r["t"] == "intent" and r["kind"] == "restart"
        ]
        assert len(restarts) == 1

    def test_different_payload_not_deduped(self):
        j = CommitJournal()
        a = CheckpointImage.capture(counting_task, {"x": 1}, "job")
        b = CheckpointImage.capture(counting_task, {"x": 2}, "job")
        assert a.restart_in_fork(journal=j) == 2
        assert b.restart_in_fork(journal=j) == 4

    def test_without_journal_unchanged(self):
        image = CheckpointImage.capture(counting_task, {"x": 5}, "job")
        assert image.restart_in_fork() == 10
