"""Crash-at-every-journal-site fuzz: exactly-once, one winner, deterministic.

Each seed runs one speculative block through a journalled kernel with a
fault plan aimed at the journal site. The crash-once model mirrors a real
process death: the first incarnation runs under the plan; if it dies
(:class:`~repro.errors.JournalCrash`), only the journal bytes and the
inner teletype survive. The second incarnation reopens the journal,
recovers, and re-runs the whole program deterministically.

Per-seed assertions:

- the inner device's output is byte-identical to a fault-free control run
  (source effects exactly once, no matter where the crash landed);
- scripted input was consumed exactly once;
- exactly one alternative committed (single surviving winner);
- the entire scenario — crash, recovery, re-run — is byte-identical when
  repeated (journal bytes included), i.e. recovery itself is
  deterministic per seed.

Seeds rotate through five rate profiles so every journal fault kind
(torn record, crash-before-seal, crash-after-seal, partial release,
double recovery) gets dense coverage. ``JOURNAL_FUZZ_SEEDS`` shrinks the
sweep for CI smoke (5 seeds covers all five profiles).
"""

import os

import numpy as np
import pytest

from repro.devices.teletype import Teletype
from repro.errors import JournalCrash
from repro.faults import FaultKind, FaultPlan
from repro.journal import (
    CommitJournal,
    MemoryJournalStorage,
    SourceGate,
    recover,
)
from repro.kernel import Kernel

FUZZ_SEEDS = int(os.environ.get("JOURNAL_FUZZ_SEEDS", "50"))

#: Per-seed-group rate profiles: uniform moderate rates would almost
#: never arm PARTIAL_RELEASE on the one release txn, so each group aims
#: the plan at one kind (group 4 stacks a crash under DOUBLE_RECOVERY).
PROFILES = (
    {FaultKind.TORN_RECORD: 0.5},
    {FaultKind.CRASH_BEFORE_SEAL: 0.5},
    {FaultKind.CRASH_AFTER_SEAL: 0.5},
    {FaultKind.PARTIAL_RELEASE: 0.7},
    {FaultKind.CRASH_BEFORE_SEAL: 0.45, FaultKind.DOUBLE_RECOVERY: 0.95},
)

SCRIPT = b"XY"


def build_program(costs):
    def program(ctx):
        yield ctx.device_write("tty", b"[start]")
        data = yield ctx.device_read("tty", 2)

        def make_alt(i, cost):
            def alt(c):
                yield c.compute(cost)
                yield c.device_write("tty", f"<alt{i}>".encode())
                return f"alt{i}"

            alt.__name__ = f"alt{i}"
            return alt

        alts = [make_alt(i, cost) for i, cost in enumerate(costs)]
        out = yield from ctx.run_alternatives(alts)
        yield ctx.device_write("tty", b"[done]")
        return (data, out.value)

    return program


def costs_for(seed):
    return [round(c, 3) for c in np.random.default_rng(seed).uniform(0.5, 5.0, 3)]


def run_incarnation(seed, storage, tty, plan):
    """One process incarnation; returns (result, crash, journal)."""
    journal = CommitJournal(storage, fault_plan=plan)
    gate = SourceGate(tty, journal)
    if plan is None:
        # a fresh incarnation recovers before re-running (no-op when clean);
        # the original plan never reaches the reopened journal, only the
        # recovery pass's own DOUBLE_RECOVERY decision
        recover(journal, gates=[gate])
    kernel = Kernel(cpus=8, seed=seed, journal=journal)
    kernel.add_device(gate)
    pid = kernel.spawn(build_program(costs_for(seed)))
    try:
        kernel.run()
    except JournalCrash as crash:
        return None, crash, journal
    return kernel.result_of(pid), None, journal


def run_scenario(seed, profile_plan):
    """Full crash-once lifecycle over one simulated disk + teletype."""
    storage = MemoryJournalStorage()
    tty = Teletype("tty", input_script=SCRIPT)
    result, crash, journal = run_incarnation(seed, storage, tty, profile_plan)
    recovery = None
    if crash is not None:
        # incarnation 2: only the storage bytes and the teletype survived
        journal2 = CommitJournal(MemoryJournalStorage(storage.load()))
        gate2 = SourceGate(tty, journal2)
        recovery = recover(journal2, gates=[gate2], fault_plan=profile_plan)
        kernel2 = Kernel(cpus=8, seed=seed, journal=journal2)
        kernel2.add_device(gate2)
        pid = kernel2.spawn(build_program(costs_for(seed)))
        kernel2.run()  # no plan: the re-run must complete
        result = kernel2.result_of(pid)
        journal = journal2
    return {
        "result": result,
        "output": bytes(tty.output),
        "input_remaining": tty.input_remaining,
        "crash": None if crash is None else crash.kind,
        "recovery": recovery,
        "journal_bytes": journal.storage.load(),
    }


def control_run(seed):
    storage = MemoryJournalStorage()
    tty = Teletype("tty", input_script=SCRIPT)
    result, crash, _ = run_incarnation(seed, storage, tty, None)
    assert crash is None
    return result, bytes(tty.output)


@pytest.mark.parametrize("seed", range(FUZZ_SEEDS))
def test_crash_recover_rerun_is_exactly_once(seed):
    plan = FaultPlan(seed=seed, rates=PROFILES[seed % len(PROFILES)])
    expected_result, expected_output = control_run(seed)
    got = run_scenario(seed, plan)
    # exactly-once source effects and exactly one committed winner,
    # regardless of where (or whether) the crash landed
    assert got["result"] == expected_result
    assert got["output"] == expected_output
    assert got["input_remaining"] == 0
    # byte-identical determinism: the whole lifecycle replays exactly,
    # journal bytes included
    again = run_scenario(seed, plan)
    assert again["crash"] == got["crash"]
    assert again["output"] == got["output"]
    assert again["journal_bytes"] == got["journal_bytes"]


def test_sweep_covers_every_journal_fault_kind():
    """The profiles are only worth their complexity if they actually hit."""
    if FUZZ_SEEDS < 25:
        pytest.skip("coverage census needs the full sweep")
    fired = set()
    doubles = 0
    for seed in range(FUZZ_SEEDS):
        plan = FaultPlan(seed=seed, rates=PROFILES[seed % len(PROFILES)])
        got = run_scenario(seed, plan)
        if got["crash"] is not None:
            fired.add(got["crash"])
        if got["recovery"] is not None and got["recovery"].double_recovery:
            doubles += 1
    assert {
        FaultKind.TORN_RECORD,
        FaultKind.CRASH_BEFORE_SEAL,
        FaultKind.CRASH_AFTER_SEAL,
        FaultKind.PARTIAL_RELEASE,
    } <= fired
    assert doubles > 0
