"""The SourceGate: ledgers, positional exactly-once, read replay."""

import pytest

from repro.devices.teletype import Teletype
from repro.errors import InputExhausted, JournalCrash
from repro.faults import FaultKind, FaultPlan
from repro.journal import CommitJournal, MemoryJournalStorage, SourceGate


def make(script=b"", storage=None, plan=None):
    # NB: empty storage is falsy (it has __len__), so test identity, not truth
    j = CommitJournal(
        storage if storage is not None else MemoryJournalStorage(),
        fault_plan=plan,
    )
    tty = Teletype("tty", input_script=script)
    return j, tty, SourceGate(tty, j)


class TestWrites:
    def test_direct_write_releases_immediately(self):
        j, tty, gate = make()
        gate.write(b"now")
        assert tty.output == b"now"
        assert gate.frontier == 3

    def test_staged_write_invisible_until_commit(self):
        j, tty, gate = make()
        gate.stage_write(7, b"later")
        assert tty.output == b""
        assert gate.pending_effects(7) == 1
        gate.commit_world(7)
        assert tty.output == b"later"
        assert gate.pending_effects(7) == 0

    def test_discard_leaves_no_trace(self):
        j, tty, gate = make()
        gate.stage_write(7, b"doomed")
        gate.discard_world(7)
        gate.commit_world(7)  # nothing staged: no-op
        assert tty.output == b""
        assert gate.frontier == 0

    def test_transfer_preserves_order(self):
        j, tty, gate = make()
        gate.stage_write(5, b"a")
        gate.stage_write(7, b"b")
        gate.transfer_world(7, 5)
        gate.commit_world(5)
        assert tty.output == b"ab"

    def test_commit_order_interleaves_direct_writes(self):
        j, tty, gate = make()
        gate.write(b"[")
        gate.stage_write(7, b"mid")
        gate.commit_world(7)
        gate.write(b"]")
        assert tty.output == b"[mid]"
        assert gate.frontier == 5

    def test_repeat_commit_is_counted_noop(self):
        j, tty, gate = make()
        gate.stage_write(7, b"once")
        gate.commit_world(7)
        gate.commit_world(7)
        assert tty.output == b"once"
        assert gate.double_commits == 1

    def test_recommit_after_restaging_still_releases(self):
        # a world that re-speculates after committing must not be starved
        # by the double-commit guard
        j, tty, gate = make()
        gate.stage_write(7, b"first")
        gate.commit_world(7)
        gate.stage_write(7, b"+more")
        gate.commit_world(7)
        assert tty.output == b"first+more"
        assert gate.double_commits == 0


class TestExactlyOnce:
    def test_rerun_releases_are_frontier_deduped(self):
        storage = MemoryJournalStorage()
        j, tty, gate = make(storage=storage)
        gate.write(b"[start]")
        gate.stage_write(7, b"<a>")
        gate.commit_world(7)
        # simulated crash + deterministic re-run over the SAME inner device
        j2 = CommitJournal(MemoryJournalStorage(storage.load()))
        gate2 = SourceGate(tty, j2)
        gate2.write(b"[start]")
        gate2.stage_write(7, b"<a>")
        gate2.commit_world(7)
        gate2.write(b"[done]")  # only the new suffix reaches the device
        assert tty.output == b"[start]<a>[done]"
        assert gate2.skipped_bytes == 10

    def test_partial_overlap_sliced(self):
        j, tty, gate = make()
        j.release(None, "tty", 1, 0, 4)  # frontier mid-way through the write
        gate.write(b"abcdef")
        assert tty.output == b"ef"
        assert gate.frontier == 6

    def test_partial_release_crash_then_redo(self):
        plan = FaultPlan(seed=0, rates={FaultKind.PARTIAL_RELEASE: 1.0})
        storage = MemoryJournalStorage()
        j, tty, gate = make(storage=storage, plan=plan)
        for chunk in (b"one", b"two", b"three", b"four"):
            gate.stage_write(7, chunk)
        with pytest.raises(JournalCrash) as exc:
            gate.commit_world(7)
        assert exc.value.kind is FaultKind.PARTIAL_RELEASE
        assert tty.output == b"onetwo"  # half of 4 entries released
        # restart: recover redoes the sealed txn's remaining entries
        from repro.journal import recover

        j2 = CommitJournal(MemoryJournalStorage(storage.load()))
        gate2 = SourceGate(tty, j2)
        report = recover(j2, gates=[gate2])
        assert report.redone_entries == 2
        assert tty.output == b"onetwothreefour"
        # and a second recovery changes nothing
        assert recover(j2, gates=[gate2]).redone_entries == 0
        assert tty.output == b"onetwothreefour"


class TestReads:
    def test_fresh_read_journaled_and_replayed(self):
        storage = MemoryJournalStorage()
        j, tty, gate = make(script=b"XYZ", storage=storage)
        assert gate.read(2, world=1) == b"XY"
        assert tty.input_remaining == 1  # destructively consumed once
        # a new gate over the surviving journal replays from the buffer
        j2 = CommitJournal(MemoryJournalStorage(storage.load()))
        gate2 = SourceGate(tty, j2)
        assert gate2.read(2, world=1) == b"XY"
        assert tty.input_remaining == 1  # not consumed again
        assert gate2.replayed_reads == 1

    def test_independent_positions_per_world(self):
        j, tty, gate = make(script=b"0123")
        assert gate.read(2, world=1) == b"01"
        assert gate.read(2, world=2) == b"01"  # same bytes, one consume
        assert tty.input_remaining == 2

    def test_fork_reader_inherits_position(self):
        j, tty, gate = make(script=b"0123")
        gate.read(2, world=1)
        gate.fork_reader(1, 9)
        assert gate.read(2, world=9) == b"23"

    def test_transfer_world_carries_read_position(self):
        j, tty, gate = make(script=b"0123")
        gate.fork_reader("default", 7)  # child of the direct reader
        gate.read(2, world=7)
        gate.transfer_world(7, 1)  # 7 commits into parent world 1
        assert gate.read(2, world=1) == b"23"

    def test_forget_client_drops_state(self):
        j, tty, gate = make(script=b"0123")
        gate.read(2, world=7)
        gate.stage_write(7, b"x")
        gate.forget_client(7)
        assert 7 not in gate._read_pos
        assert gate.pending_effects(7) == 0

    def test_exhausted_only_past_buffer(self):
        j, tty, gate = make(script=b"ab")
        assert gate.read(5, world=1) == b"ab"  # partial tail
        with pytest.raises(InputExhausted):
            gate.read(1, world=1)
        # a world still behind the buffer is served without touching inner
        assert gate.read(2, world=2) == b"ab"
