"""FileJournalStorage durability: dir fsync, torn tails, quarantine sidecar.

Simulated power loss at the file layer: the bytes a crash leaves behind
must reopen into exactly the committed prefix, the parent directory
must be fsynced whenever a name is created or renamed (an unsynced
directory entry can vanish wholesale on power loss), and quarantined
bytes must land in a ``.quarantine`` JSONL sidecar for post-mortems.
"""

import json
import os
import stat

import pytest

from repro.journal import CommitJournal, FileJournalStorage
from repro.journal.wal import MAGIC, SNAP_MAGIC


def _fill(journal, n=4):
    for i in range(n):
        txn = journal.begin("admit", request=i, tenant="t", spec={"n": i})
        journal.seal(txn)
    return journal


class _FsyncSpy:
    """Record which fsynced fds were directories."""

    def __init__(self, monkeypatch):
        self.dir_syncs = 0
        self.file_syncs = 0
        real = os.fsync

        def spy(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                self.dir_syncs += 1
            else:
                self.file_syncs += 1
            return real(fd)

        monkeypatch.setattr(os, "fsync", spy)


def test_parent_dir_fsynced_on_create(tmp_path, monkeypatch):
    spy = _FsyncSpy(monkeypatch)
    storage = FileJournalStorage(str(tmp_path / "j.wal"))
    storage.append(b"x")
    assert spy.dir_syncs == 1, "file creation must fsync the parent dir"
    assert spy.file_syncs >= 1
    spy.dir_syncs = 0
    storage.append(b"y")
    assert spy.dir_syncs == 0, "appends to an existing file need no dir fsync"


def test_parent_dir_fsynced_on_replace(tmp_path, monkeypatch):
    storage = FileJournalStorage(str(tmp_path / "j.wal"))
    storage.append(b"old")
    spy = _FsyncSpy(monkeypatch)
    storage.replace(b"new")
    assert spy.dir_syncs == 1, "rename must fsync the parent dir"
    assert storage.load() == b"new"
    assert not (tmp_path / "j.wal.tmp").exists(), "no temp file left behind"


def test_torn_final_record_truncated_on_reopen(tmp_path):
    path = tmp_path / "j.wal"
    storage = FileJournalStorage(str(path))
    _fill(CommitJournal(storage=storage))
    good = storage.load()

    # power cut mid-append: a prefix of the next frame reaches the disk
    with open(path, "ab") as fh:
        fh.write(b"\x07\x00\x00\x00\xde\xad")

    reopened = CommitJournal(storage=FileJournalStorage(str(path)))
    # O_APPEND protects earlier records; the torn tail is quarantined
    # and truncated away, leaving exactly the committed prefix
    assert len(reopened.quarantines) == 1
    assert reopened.quarantines[0].site == "tail"
    assert storage.load() == good
    sealed = {
        intent["data"]["request"]
        for intent in reopened.sealed_unapplied_intents("admit")
    }
    assert sealed == {0, 1, 2, 3}


def test_quarantine_sidecar_is_structured_jsonl(tmp_path):
    path = tmp_path / "j.wal"
    storage = FileJournalStorage(str(path))
    _fill(CommitJournal(storage=storage))
    with open(path, "ab") as fh:
        fh.write(b"\x99\x00\x00\x00")
    CommitJournal(storage=FileJournalStorage(str(path)))

    sidecar = tmp_path / "j.wal.quarantine"
    assert sidecar.exists()
    entries = [json.loads(line) for line in sidecar.read_text().splitlines()]
    assert len(entries) == 1
    entry = entries[0]
    assert entry["site"] == "tail"
    assert entry["blob_len"] == 4
    assert bytes.fromhex(entry["blob_hex"]) == b"\x99\x00\x00\x00"
    assert {"offset", "length", "reason"} <= set(entry)


def test_compacted_file_is_magic_plus_snapshot(tmp_path):
    path = tmp_path / "j.wal"
    storage = FileJournalStorage(str(path))
    journal = _fill(CommitJournal(storage=storage), n=8)
    journal.compact()
    raw = storage.load()
    assert raw.startswith(MAGIC + SNAP_MAGIC)
    assert journal.records_since_snapshot() == 0

    reopened = CommitJournal(storage=FileJournalStorage(str(path)))
    assert reopened.restored_from_snapshot
    assert len(reopened.sealed_unapplied_intents("admit")) == 8
