"""The write-ahead journal: framing, torn-tail repair, the txn protocol."""

import pickle
import struct
import zlib

import pytest

from repro.errors import JournalCrash, JournalError
from repro.faults import FaultKind, FaultPlan
from repro.journal import (
    CommitJournal,
    FileJournalStorage,
    MemoryJournalStorage,
    find_block_win,
    record_block_win,
)
from repro.journal.wal import MAGIC, _FRAME


def reopen(journal: CommitJournal) -> CommitJournal:
    """A fresh journal over the same surviving bytes (simulated restart)."""
    return CommitJournal(MemoryJournalStorage(journal.storage.load()))


class TestFraming:
    def test_empty_storage_gets_magic(self):
        storage = MemoryJournalStorage()
        CommitJournal(storage)
        assert storage.load() == MAGIC

    def test_bad_magic_rejected(self):
        with pytest.raises(JournalError, match="bad magic"):
            CommitJournal(MemoryJournalStorage(b"NOTAJRNL" + b"x" * 40))

    def test_torn_magic_repaired(self):
        j = CommitJournal(MemoryJournalStorage(MAGIC[:3]))
        assert j.repaired_bytes == 3
        assert j.storage.load() == MAGIC

    def test_records_survive_reopen(self):
        j = CommitJournal()
        seq = j.begin("commit", group=1, winner_wid=2)
        j.seal(seq)
        j.mark_applied(seq)
        j2 = reopen(j)
        assert j2.status(seq) == "applied"
        assert j2.intent(seq)["data"] == {"group": 1, "winner_wid": 2}
        assert j2._next_seq > seq

    def test_torn_tail_truncated_on_open(self):
        j = CommitJournal()
        seq = j.begin("commit", group=1)
        j.seal(seq)
        storage = MemoryJournalStorage(j.storage.load()[:-5])  # torn seal
        j2 = CommitJournal(storage)
        assert j2.repaired_bytes > 0
        assert j2.status(seq) == "open"  # the seal never became durable
        # the repair is itself durable: a third open finds a clean stream
        assert CommitJournal(MemoryJournalStorage(storage.load())).repaired_bytes == 0

    def test_corrupt_record_truncated_without_unpickling(self):
        j = CommitJournal()
        seq = j.begin("commit", group=1)
        raw = bytearray(j.storage.load())
        raw[-1] ^= 0xFF  # flip a byte inside the intent body
        j2 = CommitJournal(MemoryJournalStorage(bytes(raw)))
        assert j2.repaired_bytes > 0
        with pytest.raises(JournalError):
            j2.intent(seq)

    def test_crc_checked_before_body_parse(self):
        # a frame whose header promises garbage of the right length: the
        # CRC must reject it before pickle ever sees the bytes
        body = b"\x80\x04garbage-not-a-pickle"
        frame = _FRAME.pack(len(body), zlib.crc32(body) ^ 1) + body
        j = CommitJournal(MemoryJournalStorage(MAGIC + frame))
        assert j.repaired_bytes == len(frame)
        assert j.records() == []

    def test_file_storage_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        j = CommitJournal(FileJournalStorage(path))
        seq = j.begin("commit", group=9)
        j.seal(seq)
        j2 = CommitJournal(FileJournalStorage(path))
        assert j2.status(seq) == "sealed"
        assert j2.intent(seq)["data"]["group"] == 9


class TestProtocol:
    def test_intent_seal_apply_lifecycle(self):
        j = CommitJournal()
        seq = j.begin("eliminate", wid=3)
        assert j.status(seq) == "open"
        j.seal(seq)
        assert j.status(seq) == "sealed"
        j.mark_applied(seq, note="done")
        assert j.status(seq) == "applied"

    def test_seqs_monotonic(self):
        j = CommitJournal()
        assert [j.begin("a"), j.begin("b"), j.begin("c")] == [1, 2, 3]

    def test_apply_unsealed_rejected(self):
        j = CommitJournal()
        seq = j.begin("commit")
        with pytest.raises(JournalError, match="unsealed"):
            j.mark_applied(seq)

    def test_abort_rolls_back_open_txn(self):
        j = CommitJournal()
        seq = j.begin("commit")
        j.abort(seq, reason="test")
        assert j.status(seq) == "aborted"
        j.abort(seq)  # idempotent

    def test_abort_sealed_rejected(self):
        j = CommitJournal()
        seq = j.begin("commit")
        j.seal(seq)
        with pytest.raises(JournalError, match="sealed"):
            j.abort(seq)

    def test_double_seal_rejected(self):
        j = CommitJournal()
        seq = j.begin("commit")
        j.seal(seq)
        with pytest.raises(JournalError):
            j.seal(seq)

    def test_mark_applied_idempotent(self):
        j = CommitJournal()
        seq = j.begin("commit")
        j.seal(seq)
        j.mark_applied(seq)
        before = len(j.records())
        j.mark_applied(seq)
        assert len(j.records()) == before

    def test_unsealed_and_sealed_unapplied_views(self):
        j = CommitJournal()
        open_seq = j.begin("a")
        sealed_seq = j.begin("b")
        j.seal(sealed_seq)
        done_seq = j.begin("c")
        j.seal(done_seq)
        j.mark_applied(done_seq)
        assert j.unsealed_txns() == [open_seq]
        assert j.sealed_unapplied() == [sealed_seq]

    def test_unpicklable_intent_raises_journal_error(self):
        j = CommitJournal()
        with pytest.raises(JournalError, match="unpicklable"):
            j.begin("commit", payload=lambda: None)

    def test_unpicklable_apply_data_degrades_to_marker(self):
        j = CommitJournal()
        seq = j.begin("restart")
        j.seal(seq)
        j.mark_applied(seq, value=lambda: None)  # not picklable
        assert j.status(seq) == "applied"
        assert reopen(j).status(seq) == "applied"


class TestFrontierAndReads:
    def test_release_frontier_is_max_pos_end(self):
        j = CommitJournal()
        j.release(None, "tty", 1, 0, 7)
        j.release(None, "tty", 2, 7, 10)
        assert j.release_frontier("tty") == 10
        assert j.release_frontier("other") == 0
        assert reopen(j).release_frontier("tty") == 10

    def test_reads_accumulate_in_order(self):
        j = CommitJournal()
        j.note_read("tty", b"ab")
        j.note_read("tty", b"cd")
        j.note_read("tty", b"")  # no-op
        assert j.reads_for("tty") == b"abcd"
        assert reopen(j).reads_for("tty") == b"abcd"

    def test_find_sealed_and_applied_match_latest(self):
        j = CommitJournal()
        s1 = j.begin("block", block=7, attempt=0)
        j.seal(s1)
        j.mark_applied(s1, value="first")
        s2 = j.begin("block", block=7, attempt=1)
        j.seal(s2)
        j.mark_applied(s2, value="second")
        assert j.find_sealed("block", block=7)["seq"] == s2
        intent, applied = j.find_applied("block", block=7)
        assert applied["value"] == "second"
        assert j.find_applied("block", block=99) is None


class TestFaultInjection:
    def plan(self, kind, seed=0):
        return FaultPlan(seed=seed, rates={kind: 1.0})

    def test_torn_record_half_frame_then_crash(self):
        j = CommitJournal(fault_plan=self.plan(FaultKind.TORN_RECORD))
        before = len(j.storage)
        with pytest.raises(JournalCrash) as exc:
            j.begin("commit", group=1)
        assert exc.value.kind is FaultKind.TORN_RECORD
        assert len(j.storage) > before  # some bytes landed...
        j2 = reopen(j)
        assert j2.repaired_bytes > 0  # ...and the reopen cuts them away
        assert j2.records() == []

    def test_crash_before_seal_leaves_intent_unsealed(self):
        j = CommitJournal(fault_plan=self.plan(FaultKind.CRASH_BEFORE_SEAL))
        seq = j.begin("commit", group=1)
        with pytest.raises(JournalCrash):
            j.seal(seq)
        assert reopen(j).status(seq) == "open"

    def test_crash_after_seal_leaves_seal_durable(self):
        j = CommitJournal(fault_plan=self.plan(FaultKind.CRASH_AFTER_SEAL))
        seq = j.begin("commit", group=1)
        with pytest.raises(JournalCrash):
            j.seal(seq)
        assert reopen(j).status(seq) == "sealed"

    def test_partial_release_is_armed_not_fired(self):
        j = CommitJournal(fault_plan=self.plan(FaultKind.PARTIAL_RELEASE))
        seq = j.begin("release", device="tty")
        j.seal(seq)  # seal passes: the gate's loop consumes the arm
        assert j.take_armed(seq) is FaultKind.PARTIAL_RELEASE
        assert j.take_armed(seq) is None  # consumed


class TestBlockWinHelpers:
    def test_record_and_find(self):
        from repro.core.outcome import AlternativeResult

        j = CommitJournal()
        win = AlternativeResult(index=1, name="fast", value=42, succeeded=True)
        record_block_win(j, block_id=5, attempt=2, winner=win)
        hit = find_block_win(j, 5)
        assert hit == {"winner_index": 1, "winner_name": "fast", "value": 42}
        assert find_block_win(j, 6) is None

    def test_unpicklable_value_not_replayable(self):
        from repro.core.outcome import AlternativeResult

        j = CommitJournal()
        win = AlternativeResult(index=0, name="odd", value=lambda: 1, succeeded=True)
        record_block_win(j, block_id=5, attempt=0, winner=win)
        assert find_block_win(j, 5) is None  # must re-run, never half-replay
