"""Journal lifecycle: snapshots, compaction, quarantine, poisoning.

The durable-restart layer's ground floor: a snapshot checkpoints the
whole exactly-once ledger, ``compact()`` truncates the WAL to it, a
torn or corrupt snapshot is quarantined (structured report) and the
open degrades to full replay — never data loss, never a crash — and a
journal that suffered a torn write is *poisoned*: the owning process
is dead and every further append is refused until a reopen.
"""

import pickle
import struct
import zlib
from dataclasses import dataclass

import pytest

from repro.errors import JournalCrash
from repro.faults.plan import FaultKind, FaultPlan
from repro.journal import (
    CommitJournal,
    MemoryJournalStorage,
    find_block_win,
    record_block_win,
)
from repro.journal.wal import MAGIC, SNAP_MAGIC, _FRAME


@dataclass
class _Winner:
    index: int
    name: str
    value: object


def _ledger(journal, n=5):
    """Grow a representative ledger: applied, sealed, aborted, reads."""
    for i in range(n):
        txn = journal.begin("admit", request=i, tenant=f"t{i % 2}", spec={"n": i})
        journal.seal(txn)
        if i % 2 == 0:
            journal.mark_applied(txn, status="committed")
            record_block_win(journal, i, 0, _Winner(0, "fast", i * 7))
    journal.note_read("tty", b"hello-")
    journal.release(None, "disk", eid=1, pos_start=0, pos_end=4)


def _assert_ledger(journal, n=5):
    for i in range(0, n, 2):
        win = find_block_win(journal, i)
        assert win is not None and win["value"] == i * 7, i
    sealed = {
        intent["data"]["request"]
        for intent in journal.sealed_unapplied_intents("admit")
    }
    assert {i for i in range(n) if i % 2 == 1} <= sealed
    assert journal.reads_for("tty") == b"hello-"
    assert journal.release_frontier("disk") == 4


def test_snapshot_reopen_restores_whole_ledger():
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    _ledger(journal)
    journal.snapshot()
    # post-snapshot suffix must replay on top of the snapshot
    txn = journal.begin("admit", request=100, tenant="late", spec={"n": 100})
    journal.seal(txn)

    reopened = CommitJournal(storage=storage)
    assert reopened.restored_from_snapshot
    assert not reopened.quarantines
    _assert_ledger(reopened)
    late = [
        intent for intent in reopened.sealed_unapplied_intents("admit")
        if intent["data"]["request"] == 100
    ]
    assert len(late) == 1
    # the restored incarnation never reuses a txn seq
    assert reopened.begin("admit", request=101) > txn


def test_compact_truncates_and_preserves_exactly_once_ledger():
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    _ledger(journal, n=20)
    before = len(storage)
    stats = journal.compact()
    assert len(storage) < before
    assert stats["records_dropped"] > 0
    # the replay bound: nothing outside the snapshot remains
    assert journal.records_since_snapshot() == 0

    reopened = CommitJournal(storage=storage)
    assert reopened.restored_from_snapshot
    _assert_ledger(reopened, n=20)


def test_corrupt_snapshot_quarantined_and_degrades_to_full_replay():
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    _ledger(journal)
    journal.snapshot()
    txn = journal.begin("admit", request=100, tenant="late", spec={"n": 100})
    journal.seal(txn)

    # flip one byte inside the snapshot body: CRC must catch it
    raw = bytearray(storage.load())
    at = raw.index(SNAP_MAGIC) + len(SNAP_MAGIC) + _FRAME.size + 3
    raw[at] ^= 0xFF
    corrupted = MemoryJournalStorage(bytes(raw))

    reopened = CommitJournal(storage=corrupted)
    # degraded, not broken: the snapshot is stepped over and every
    # record before AND after it replays — no data loss
    assert not reopened.restored_from_snapshot
    _assert_ledger(reopened)
    assert any(
        intent["data"]["request"] == 100
        for intent in reopened.sealed_unapplied_intents("admit")
    )
    # ... and the damage is reported structurally, not as a warning
    assert len(reopened.quarantines) == 1
    entry = reopened.quarantines[0]
    assert entry.site == "snapshot"
    assert entry.length > 0
    assert entry.crc_expected != entry.crc_got
    # the bad bytes landed in the storage's quarantine sidecar
    assert len(corrupted.quarantine_log) == 1
    assert corrupted.quarantine_log[0]["site"] == "snapshot"


def test_torn_snapshot_poisons_then_reopen_quarantines():
    storage = MemoryJournalStorage()
    plan = FaultPlan(seed=1, rates={FaultKind.TORN_SNAPSHOT: 1.0})
    journal = CommitJournal(storage=storage, fault_plan=plan)
    _ledger(journal)
    with pytest.raises(JournalCrash):
        journal.snapshot()
    # the process is dead: every further append is refused
    assert journal.poisoned
    with pytest.raises(JournalCrash, match="poisoned"):
        journal.begin("admit", request=9)
    with pytest.raises(JournalCrash, match="poisoned"):
        journal.snapshot()

    reopened = CommitJournal(storage=storage)
    assert not reopened.poisoned
    assert reopened.quarantines, "torn snapshot tail must be quarantined"
    _assert_ledger(reopened)


def test_compaction_crash_leaves_durable_snapshot():
    storage = MemoryJournalStorage()
    plan = FaultPlan(seed=1, rates={FaultKind.COMPACTION_CRASH: 1.0})
    journal = CommitJournal(storage=storage, fault_plan=plan)
    _ledger(journal)
    with pytest.raises(JournalCrash, match="mid-compaction"):
        journal.compact()

    # the snapshot was appended durably before the rewrite: the reopen
    # loads it (nothing to quarantine, nothing lost)
    reopened = CommitJournal(storage=storage)
    assert reopened.restored_from_snapshot
    _assert_ledger(reopened)


def test_torn_record_poisons_journal():
    storage = MemoryJournalStorage()
    plan = FaultPlan(seed=1, rates={FaultKind.TORN_RECORD: 1.0})
    journal = CommitJournal(storage=storage, fault_plan=plan)
    with pytest.raises(JournalCrash):
        journal.begin("admit", request=0)
    assert journal.poisoned
    with pytest.raises(JournalCrash, match="poisoned"):
        journal.begin("admit", request=1)

    # reopen truncates the torn tail and carries on clean
    reopened = CommitJournal(storage=storage)
    assert not reopened.poisoned
    assert reopened.sealed_unapplied_intents("admit") == []
    txn = reopened.begin("admit", request=1)
    reopened.seal(txn)
    assert reopened.status(txn) == "sealed"


def test_snapshot_body_is_crc_framed():
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    _ledger(journal, n=2)
    journal.snapshot()
    raw = storage.load()
    at = raw.index(SNAP_MAGIC) + len(SNAP_MAGIC)
    length, crc = _FRAME.unpack_from(raw, at)
    body = raw[at + _FRAME.size:at + _FRAME.size + length]
    assert zlib.crc32(body) == crc
    state = pickle.loads(body)
    assert state["snap_index"] == 1
    assert "intents" in state and "applied" in state and "frontiers" in state
