"""The recovery pass: roll forward sealed, roll back torn, idempotent."""

from repro.devices.teletype import Teletype
from repro.faults import FaultKind, FaultPlan
from repro.journal import (
    CommitJournal,
    MemoryJournalStorage,
    SourceGate,
    recover,
)


def survived(journal):
    """A fresh journal over the dead incarnation's surviving bytes."""
    return CommitJournal(MemoryJournalStorage(journal.storage.load()))


class TestRollback:
    def test_unsealed_intent_aborted(self):
        j = CommitJournal()
        seq = j.begin("commit", group=1)
        j2 = survived(j)
        report = recover(j2)
        assert report.rolled_back == [seq]
        assert j2.status(seq) == "aborted"
        assert not report.clean

    def test_clean_journal_reports_clean(self):
        j = CommitJournal()
        seq = j.begin("commit")
        j.seal(seq)
        j.mark_applied(seq)
        report = recover(survived(j))
        assert report.clean


class TestRollForward:
    def test_sealed_nonrelease_gets_applied_marker(self):
        j = CommitJournal()
        seq = j.begin("eliminate", wid=4)
        j.seal(seq)
        j2 = survived(j)
        report = recover(j2)
        assert report.rolled_forward == [seq]
        assert j2.status(seq) == "applied"

    def test_sealed_release_redone_through_gate(self):
        j = CommitJournal()
        seq = j.begin(
            "release", device="tty", world=7,
            entries=[(1, 0, 3, b"abc"), (2, 3, 6, b"def")],
        )
        j.seal(seq)
        j.release(seq, "tty", 1, 0, 3)  # first entry landed before the crash
        tty = Teletype("tty")
        tty.write(b"abc")
        j2 = survived(j)
        gate = SourceGate(tty, j2)
        report = recover(j2, gates=[gate])
        assert report.rolled_forward == [seq]
        assert report.redone_entries == 1
        assert tty.output == b"abcdef"

    def test_release_without_gate_skipped_not_lost(self):
        j = CommitJournal()
        seq = j.begin("release", device="tty", world=7, entries=[(1, 0, 3, b"abc")])
        j.seal(seq)
        j2 = survived(j)
        report = recover(j2)  # no gates
        assert report.skipped == [seq]
        assert j2.status(seq) == "sealed"  # left for a later recovery
        # ...which can then finish the job
        tty = Teletype("tty")
        gate = SourceGate(tty, j2)
        report2 = recover(j2, gates=[gate])
        assert report2.rolled_forward == [seq]
        assert tty.output == b"abc"


class TestIdempotence:
    def scenario(self):
        j = CommitJournal()
        j.begin("commit", group=1)  # unsealed: to roll back
        seq = j.begin("release", device="tty", world=7, entries=[(1, 0, 2, b"ok")])
        j.seal(seq)
        return survived(j)

    def test_second_recovery_is_noop(self):
        j = self.scenario()
        tty = Teletype("tty")
        gate = SourceGate(tty, j)
        first = recover(j, gates=[gate])
        assert not first.clean
        second = recover(j, gates=[gate])
        assert second.clean
        assert tty.output == b"ok"

    def test_double_recovery_fault_runs_two_identical_passes(self):
        plan = FaultPlan(seed=0, rates={FaultKind.DOUBLE_RECOVERY: 1.0})
        j = self.scenario()
        tty = Teletype("tty")
        gate = SourceGate(tty, j)
        report = recover(j, gates=[gate], fault_plan=plan)
        assert report.double_recovery and report.passes == 2
        # the second pass added nothing: one rollback, one roll-forward,
        # one redone entry, effects exactly once
        assert len(report.rolled_back) == 1
        assert len(report.rolled_forward) == 1
        assert report.redone_entries == 1
        assert tty.output == b"ok"

    def test_repaired_bytes_surface_in_report(self):
        j = CommitJournal()
        seq = j.begin("commit")
        j.seal(seq)
        torn = CommitJournal(MemoryJournalStorage(j.storage.load()[:-4]))
        report = recover(torn)
        assert report.repaired_bytes > 0
