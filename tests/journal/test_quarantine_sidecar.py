"""Reading ``.quarantine`` sidecars back: round-trips and damaged lines.

``test_file_durability`` proves the *writer* side (torn tails land in a
structured JSONL sidecar). This file proves the *reader* side that the
remote-shard restore path leans on: :func:`repro.journal.read_quarantine`
must round-trip every entry a real repair wrote, and — because the
sidecar is itself an unsynced append-only file — must skip malformed or
truncated lines with a warning instead of crashing the restore.
"""

import json
import warnings

import pytest

from repro.journal import CommitJournal, FileJournalStorage, read_quarantine
from repro.journal.wal import QuarantineEntry


def _fill(journal, n=4):
    for i in range(n):
        txn = journal.begin("admit", request=i, tenant="t", spec={"n": i})
        journal.seal(txn)
    return journal


def _torn_journal(tmp_path, tail=b"\x07\x00\x00\x00\xde\xad"):
    """Build a journal, tear its tail, reopen (which quarantines)."""
    path = tmp_path / "j.wal"
    storage = FileJournalStorage(str(path))
    _fill(CommitJournal(storage=storage))
    with open(path, "ab") as fh:
        fh.write(tail)
    CommitJournal(storage=FileJournalStorage(str(path)))
    return path, path.with_suffix(".wal.quarantine")


class TestRoundTrip:
    def test_entry_dict_round_trip(self):
        entry = QuarantineEntry(
            site="tail", offset=128, length=6, reason="torn record",
            crc_expected=0xDEAD, crc_got=0xBEEF,
        )
        assert QuarantineEntry.from_dict(entry.as_dict()) == entry

    def test_from_dict_tolerates_sidecar_extras(self):
        # a sidecar line carries blob_len/blob_hex on top of as_dict()
        data = QuarantineEntry("tail", 0, 4, "torn").as_dict()
        data.update(blob_len=4, blob_hex="99000000", future_field=1)
        entry = QuarantineEntry.from_dict(data)
        assert (entry.site, entry.offset, entry.length) == ("tail", 0, 4)

    def test_from_dict_insists_on_structural_fields(self):
        with pytest.raises((KeyError, TypeError)):
            QuarantineEntry.from_dict({"site": "tail", "reason": "torn"})

    def test_real_torn_tail_round_trips(self, tmp_path):
        tail = b"\x07\x00\x00\x00\xde\xad"
        path, sidecar = _torn_journal(tmp_path, tail)
        assert sidecar.exists()
        entries = read_quarantine(str(sidecar))
        assert len(entries) == 1
        entry, blob = entries[0]
        assert isinstance(entry, QuarantineEntry)
        assert entry.site == "tail"
        assert entry.length == len(tail)
        assert blob == tail, "quarantined bytes must come back verbatim"

    def test_storage_method_matches_module_function(self, tmp_path):
        path, sidecar = _torn_journal(tmp_path)
        storage = FileJournalStorage(str(path))
        assert storage.read_quarantine() == read_quarantine(str(sidecar))

    def test_missing_sidecar_is_empty(self, tmp_path):
        assert read_quarantine(str(tmp_path / "nope.quarantine")) == []
        storage = FileJournalStorage(str(tmp_path / "clean.wal"))
        assert storage.read_quarantine() == []

    def test_multiple_entries_preserve_order(self, tmp_path):
        sidecar = tmp_path / "multi.quarantine"
        lines = []
        for i in range(3):
            data = QuarantineEntry(
                "tail", offset=100 * i, length=4, reason=f"torn {i}"
            ).as_dict()
            data.update(blob_len=4, blob_hex=f"{i:02x}000000")
            lines.append(json.dumps(data))
        sidecar.write_text("\n".join(lines) + "\n")
        entries = read_quarantine(str(sidecar))
        assert [e.offset for e, _ in entries] == [0, 100, 200]
        assert [b for _, b in entries] == [
            b"\x00\x00\x00\x00", b"\x01\x00\x00\x00", b"\x02\x00\x00\x00",
        ]


class TestDamagedSidecar:
    """The corruption report can itself be corrupt; restores must not die."""

    def _good_line(self, offset=0):
        data = QuarantineEntry("tail", offset, 4, "torn").as_dict()
        data.update(blob_len=4, blob_hex="99000000")
        return json.dumps(data)

    def test_malformed_lines_skipped_with_warning(self, tmp_path):
        sidecar = tmp_path / "j.quarantine"
        sidecar.write_text(
            "\n".join(
                [
                    self._good_line(offset=0),
                    "{not json at all",              # bad JSON
                    json.dumps(["a", "list"]),       # wrong shape
                    json.dumps({"site": "tail"}),    # missing fields
                    self._good_line(offset=64),
                ]
            )
            + "\n"
        )
        with pytest.warns(RuntimeWarning) as caught:
            entries = read_quarantine(str(sidecar))
        # the good lines survive in order; each bad one warned
        assert [e.offset for e, _ in entries] == [0, 64]
        assert len(caught) == 3
        assert all("quarantine line" in str(w.message) for w in caught)

    def test_truncated_final_line_skipped(self, tmp_path):
        # the sidecar is append-only and unsynced: a crash can tear its
        # own last line, exactly like the journal it reports on
        sidecar = tmp_path / "j.quarantine"
        whole = self._good_line()
        sidecar.write_text(whole + "\n" + whole[: len(whole) // 2])
        with pytest.warns(RuntimeWarning):
            entries = read_quarantine(str(sidecar))
        assert len(entries) == 1

    def test_odd_length_hex_blob_skipped(self, tmp_path):
        sidecar = tmp_path / "j.quarantine"
        data = json.loads(self._good_line())
        data["blob_hex"] = "abc"  # odd length: undecodable
        sidecar.write_text(json.dumps(data) + "\n" + self._good_line() + "\n")
        with pytest.warns(RuntimeWarning):
            entries = read_quarantine(str(sidecar))
        assert len(entries) == 1

    def test_blank_lines_ignored_silently(self, tmp_path):
        sidecar = tmp_path / "j.quarantine"
        sidecar.write_text("\n\n" + self._good_line() + "\n\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            entries = read_quarantine(str(sidecar))
        assert len(entries) == 1

    def test_restore_survives_damaged_sidecar(self, tmp_path):
        # end-to-end: reopening a journal whose sidecar is garbage must
        # still restore the committed prefix
        path, sidecar = _torn_journal(tmp_path)
        sidecar.write_bytes(b"\xff\xfe garbage \x00" + sidecar.read_bytes())
        reopened = CommitJournal(storage=FileJournalStorage(str(path)))
        sealed = {
            intent["data"]["request"]
            for intent in reopened.sealed_unapplied_intents("admit")
        }
        assert sealed == {0, 1, 2, 3}
