"""Supervisor: retry spares, backend degradation, watchdog wiring,
and the determinism guarantee for supervised outcomes."""

import os
import time

import pytest

from repro.apps.recovery import RecoveryBlock
from repro.core.alternative import Alternative
from repro.core.policy import WatchdogPolicy
from repro.errors import SpawnError
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.supervisor import DEFAULT_FALLBACK, Supervisor, run_supervised

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")


def _worker(seconds, label, value):
    def alt(ws):
        time.sleep(seconds)
        ws["by"] = label
        return value

    alt.__name__ = label
    return alt


def _block():
    """Three alternatives with well-separated finish times (so the
    winner among survivors is deterministic) all computing the right
    answer."""
    return [
        _worker(0.01, "a0", 42),
        _worker(0.06, "a1", 42),
        _worker(0.12, "a2", 42),
    ]


def _structure(outcome):
    """The seed-determined shape of a supervised outcome."""
    sup = outcome.extras["supervisor"]
    return {
        "winner": outcome.winner.name if outcome.winner else None,
        "attempts": sup["attempts"],
        "history": [
            (h["attempt"], h["backend"], h["winner"], sorted(h["losers"]))
            for h in sup["history"]
        ],
        "degraded": [d["backend"] for d in outcome.extras.get("degraded", [])],
    }


class TestRetrySpares:
    def test_retry_recovers_after_total_first_wave_crash(self):
        # seed 1, rate 0.6: attempt 0 crashes all three; attempt 1
        # crashes only wave index 0, so a1 (faster than a2) wins
        plan = FaultPlan.crashes(seed=1, rate=0.6)
        assert all(d.fires for _, _, d in plan.schedule(0, 3))
        sup = Supervisor(max_retries=2, backoff_s=0.005, fault_plan=plan)
        out = sup.run(_block(), backend="fork")
        assert out.value == 42
        assert out.winner.name == "a1"
        assert out.winner.index == 1  # mapped back to the caller's position
        assert out.attempts == 2
        history = out.extras["supervisor"]["history"]
        assert history[0]["winner"] is None and len(history[0]["losers"]) == 3
        assert history[1]["winner"] == "a1"

    def test_thirty_percent_crash_rate_always_commits(self):
        """Acceptance criterion: under a 30% child-crash rate a
        supervised block commits the correct winner, for every seed."""
        for seed in range(8):
            plan = FaultPlan.crashes(seed=seed, rate=0.3)
            out = run_supervised(
                _block(),
                supervisor=Supervisor(
                    max_retries=3, backoff_s=0.005, fault_plan=plan
                ),
            )
            assert out.winner is not None, f"seed {seed} failed to commit"
            assert out.value == 42
            assert out.extras["state"]["by"] == out.winner.name

    def test_zero_retries_disables_respawn(self):
        plan = FaultPlan.crashes(seed=1, rate=0.6)  # first wave all crash
        out = Supervisor(max_retries=0, fault_plan=plan).run(_block())
        assert out.failed
        assert out.attempts == 1

    def test_spare_stagger_applied_to_retry_waves(self):
        plan = FaultPlan.crashes(seed=1, rate=0.6)
        sup = Supervisor(
            max_retries=2, backoff_s=0.0, spare_stagger_s=0.05, fault_plan=plan
        )
        out = sup.run(_block())
        # wave 2's winner (wave index 1) started one stagger late on top
        # of its own runtime
        assert out.value == 42
        assert out.extras["supervisor"]["history"][1]["elapsed_s"] >= 0.05

    def test_timeout_budget_bounds_retries(self):
        plan = FaultPlan.crashes(seed=0, rate=1.0)  # nothing ever survives
        t0 = time.perf_counter()
        out = Supervisor(max_retries=50, backoff_s=0.05, fault_plan=plan).run(
            _block(), timeout=0.4
        )
        wall = time.perf_counter() - t0
        assert out.failed
        assert wall < 3.0
        assert out.attempts < 51

    def test_unsupervised_outcome_reports_one_attempt(self):
        from repro.core.worlds import run_alternatives

        out = run_alternatives(_block(), backend="fork")
        assert out.attempts == 1
        assert not out.degraded


class TestDeterminism:
    def test_outcome_structure_identical_across_runs(self):
        """Acceptance criterion: same seed, same winner/loser structure."""
        def once():
            plan = FaultPlan.crashes(seed=1, rate=0.6)
            sup = Supervisor(max_retries=2, backoff_s=0.005, fault_plan=plan)
            return _structure(sup.run(_block(), backend="fork"))

        first, second = once(), once()
        assert first == second
        assert first["winner"] == "a1" and first["attempts"] == 2

    def test_structure_changes_with_seed(self):
        def once(seed):
            plan = FaultPlan.crashes(seed=seed, rate=0.6)
            sup = Supervisor(max_retries=3, backoff_s=0.005, fault_plan=plan)
            return _structure(sup.run(_block(), backend="fork"))

        # seed 1: first wave wiped out; seed 9: first wave untouched
        assert once(1)["attempts"] == 2
        assert once(9)["attempts"] == 1


class TestDegradation:
    def test_fork_degrades_through_thread_to_sequential(self):
        plan = FaultPlan(seed=0, rates={FaultKind.SPAWN_FAIL: 1.0})
        out = Supervisor(fault_plan=plan).run(_block(), backend="fork")
        assert out.value == 42
        assert out.degraded
        assert [d["backend"] for d in out.extras["degraded"]] == ["fork", "thread"]
        assert out.extras["backend"] == "sequential"
        assert out.extras["sequential"] is True

    def test_degradation_starts_at_the_requested_rung(self):
        plan = FaultPlan(seed=0, rates={FaultKind.SPAWN_FAIL: 1.0})
        out = Supervisor(fault_plan=plan).run(_block(), backend="thread")
        assert out.value == 42
        assert [d["backend"] for d in out.extras["degraded"]] == ["thread"]
        assert out.extras["backend"] == "sequential"

    def test_exhausted_chain_raises(self):
        plan = FaultPlan(seed=0, rates={FaultKind.SPAWN_FAIL: 1.0})
        sup = Supervisor(fault_plan=plan, fallback=("fork",))
        with pytest.raises(SpawnError):
            sup.run(_block(), backend="fork")

    def test_no_degradation_without_spawn_faults(self):
        out = Supervisor(fault_plan=FaultPlan.quiet()).run(_block())
        assert out.value == 42
        assert "degraded" not in out.extras
        assert out.extras["backend"] == "fork"

    def test_default_chain_order(self):
        assert DEFAULT_FALLBACK == ("fork", "thread", "sequential")
        assert Supervisor()._chain_from("thread") == ("thread", "sequential")
        assert Supervisor()._chain_from("sim") == ("sim",)


class TestWatchdogWiring:
    def test_supervisor_watchdog_reaps_injected_hangs(self):
        plan = FaultPlan(seed=0, rates={FaultKind.HANG: 1.0}, hang_s=30.0)
        sup = Supervisor(
            max_retries=0,
            watchdog=WatchdogPolicy(soft_deadline_s=0.15, term_grace_s=0.05),
            fault_plan=plan,
        )
        t0 = time.perf_counter()
        out = sup.run(_block(), backend="fork")
        wall = time.perf_counter() - t0
        assert wall < 5.0
        assert out.failed
        assert out.watchdog_events
        assert all(
            l.error == "killed by watchdog (soft deadline exceeded)"
            for l in out.losers
        )


class TestValidation:
    def test_negative_retries_rejected(self):
        from repro.errors import WorldsError

        with pytest.raises(WorldsError):
            Supervisor(max_retries=-1)
        with pytest.raises(WorldsError):
            Supervisor(backoff_s=-0.1)


class TestRecoveryBlockIntegration:
    def test_run_supervised_commits_under_crashes(self):
        def primary(ws):
            time.sleep(0.01)
            ws["result"] = 10
            return 10

        def backup(ws):
            time.sleep(0.05)
            ws["result"] = 10
            return 10

        block = RecoveryBlock(lambda ws, v: v == 10, primary, backup)
        plan = FaultPlan.crashes(seed=1, rate=0.6)
        res = block.run_supervised(
            {}, supervisor=Supervisor(max_retries=3, backoff_s=0.005, fault_plan=plan)
        )
        assert res.succeeded
        assert res.value == 10
        assert res.attempts[-1] == res.alternate
        assert res.outcome.attempts >= 2
