"""Tests for the deterministic fault-injection plane and supervision."""
