"""Injected faults against real forked worlds: crash, corrupt reports,
hangs under watchdog escalation, lost kill signals, spawn failure."""

import os
import signal
import time

import pytest

from repro.core.alternative import Alternative
from repro.core.policy import EliminationPolicy, WatchdogPolicy
from repro.errors import SpawnError
from repro.faults.plan import FaultKind, FaultPlan
from repro.runtime.fork_backend import run_alternatives_fork

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")


def _sleep_then(seconds, label):
    def alt(ws):
        time.sleep(seconds)
        ws["winner"] = label
        return label

    alt.__name__ = label
    return alt


def _assert_no_children():
    with pytest.raises(ChildProcessError):
        os.waitpid(-1, os.WNOHANG)


def _rate1(kind, **knobs):
    return FaultPlan(seed=0, rates={kind: 1.0}, **knobs)


class TestChildFaults:
    def test_injected_crash_is_a_deterministic_loser(self):
        # seed 4, rate 0.3: attempt 0 dooms exactly index 0
        plan = FaultPlan.crashes(seed=4, rate=0.3)
        sched = [i for i, _, d in plan.schedule(0, 2) if d.fires]
        assert sched == [0]
        out = run_alternatives_fork(
            [_sleep_then(0.01, "doomed"), _sleep_then(0.05, "backup")],
            fault_plan=plan,
        )
        assert out.value == "backup"
        doomed = next(l for l in out.losers if l.name == "doomed")
        assert doomed.error == "child died without reporting"
        assert out.extras["injected_faults"] == [
            {"index": 0, "name": "doomed", "kind": "crash-before-report"}
        ]

    def test_truncated_report_diagnosed(self):
        out = run_alternatives_fork(
            [_sleep_then(0.0, "only")],
            fault_plan=_rate1(FaultKind.TRUNCATE_REPORT),
        )
        assert out.failed
        assert "truncated report" in out.losers[0].error
        assert out.losers[0].elapsed_s > 0

    def test_corrupt_report_is_a_clean_failure(self):
        out = run_alternatives_fork(
            [_sleep_then(0.0, "only")],
            fault_plan=_rate1(FaultKind.CORRUPT_REPORT),
        )
        assert out.failed
        assert "unpicklable report" in out.losers[0].error

    def test_injected_guard_exception_fails_guard(self):
        out = run_alternatives_fork(
            [_sleep_then(0.0, "only")],
            fault_plan=_rate1(FaultKind.GUARD_EXCEPTION),
        )
        assert out.failed
        assert out.losers[0].guard_failed
        assert "injected exception" in out.losers[0].error

    def test_slow_start_delays_but_still_wins(self):
        out = run_alternatives_fork(
            [_sleep_then(0.0, "only")],
            fault_plan=_rate1(FaultKind.SLOW_START, slow_start_s=0.2),
        )
        assert out.value == "only"
        assert out.winner.elapsed_s >= 0.2


class TestSpawnAndKillFaults:
    def test_spawn_failure_raises_spawnerror_and_cleans_up(self):
        with pytest.raises(SpawnError, match="injected"):
            run_alternatives_fork(
                [_sleep_then(5.0, "a"), _sleep_then(5.0, "b")],
                fault_plan=_rate1(FaultKind.SPAWN_FAIL),
            )
        _assert_no_children()

    def test_lost_kill_signal_is_resent_no_zombies(self):
        # every child's first signal is "lost"; verified reaping must
        # notice the survivor and resend until it is actually gone
        plan = _rate1(FaultKind.KILL_FAIL)
        for policy in (EliminationPolicy.SYNCHRONOUS, EliminationPolicy.ASYNCHRONOUS):
            out = run_alternatives_fork(
                [_sleep_then(0.02, "fast")]
                + [_sleep_then(30.0, f"s{i}") for i in range(3)],
                elimination=policy,
                fault_plan=plan,
            )
            assert out.value == "fast"
            assert "zombies" not in out.extras
            _assert_no_children()


class TestWatchdog:
    def test_sigterm_then_sigkill_for_term_ignoring_child(self):
        def stubborn(ws):
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            time.sleep(30.0)
            return "never"

        t0 = time.perf_counter()
        out = run_alternatives_fork(
            [stubborn],
            watchdog=WatchdogPolicy(soft_deadline_s=0.15, term_grace_s=0.1),
        )
        wall = time.perf_counter() - t0
        assert wall < 5.0
        assert out.failed
        assert out.losers[0].error == "killed by watchdog (soft deadline exceeded)"
        actions = [e["action"] for e in out.extras["watchdog"]]
        assert actions.index("sigterm") < actions.index("sigkill")
        assert out.extras["watchdog_grace_s"] >= 0.1
        assert out.watchdog_events  # BlockOutcome property surfaces them
        _assert_no_children()

    def test_grace_period_allows_clean_exit(self, tmp_path):
        marker = tmp_path / "cleanup-ran"

        def polite(ws):
            def on_term(signum, frame):
                marker.write_text("released resources")
                os._exit(0)

            signal.signal(signal.SIGTERM, on_term)
            time.sleep(30.0)
            return "never"

        out = run_alternatives_fork(
            [polite],
            watchdog=WatchdogPolicy(soft_deadline_s=0.1, term_grace_s=1.0),
        )
        assert out.failed
        events = out.extras["watchdog"]
        assert [e["action"] for e in events] == ["sigterm"]  # never escalated
        assert marker.read_text() == "released resources"
        _assert_no_children()

    def test_injected_hangs_cannot_wedge_a_watchdogged_block(self):
        plan = _rate1(FaultKind.HANG, hang_s=30.0)
        t0 = time.perf_counter()
        out = run_alternatives_fork(
            [_sleep_then(0.0, "a"), _sleep_then(0.0, "b")],
            fault_plan=plan,
            watchdog=WatchdogPolicy(soft_deadline_s=0.2, term_grace_s=0.1),
        )
        wall = time.perf_counter() - t0
        assert wall < 5.0  # the 30s hangs were escalated away
        assert out.failed and not out.timed_out
        assert all(
            l.error == "killed by watchdog (soft deadline exceeded)"
            for l in out.losers
        )
        _assert_no_children()

    def test_watchdog_spares_children_within_deadline(self):
        out = run_alternatives_fork(
            [_sleep_then(0.05, "fine")],
            watchdog=WatchdogPolicy(soft_deadline_s=5.0, term_grace_s=0.1),
        )
        assert out.value == "fine"
        assert "watchdog" not in out.extras

    def test_watchdog_deadline_respects_stagger(self):
        # start_delay shifts the soft deadline, so a staggered spare is
        # not condemned for time it spent deliberately idle
        spare = Alternative(
            _sleep_then(0.05, "spare"), name="spare", start_delay=0.3
        )
        out = run_alternatives_fork(
            [spare],
            watchdog=WatchdogPolicy(soft_deadline_s=0.2, term_grace_s=0.05),
        )
        assert out.value == "spare"
