"""Injected faults on the thread backend: in-process analogues of the
fork faults, plus the cooperative CancelToken contract."""

import time

import pytest

from repro.core.policy import EliminationPolicy
from repro.core.worlds import run_alternatives
from repro.errors import SpawnError
from repro.faults.plan import FaultKind, FaultPlan
from repro.runtime.thread_backend import CancelToken, run_alternatives_thread


def _sleep_then(seconds, label):
    def alt(ws):
        time.sleep(seconds)
        return label

    alt.__name__ = label
    return alt


def _rate1(kind, **knobs):
    return FaultPlan(seed=0, rates={kind: 1.0}, **knobs)


def test_injected_crash_fails_the_worker():
    out = run_alternatives_thread(
        [_sleep_then(0.0, "only")], fault_plan=_rate1(FaultKind.CRASH)
    )
    assert out.failed
    assert "injected crash-before-report" in out.losers[0].error
    assert out.extras["injected_faults"][0]["kind"] == "crash-before-report"


def test_injected_guard_exception():
    out = run_alternatives_thread(
        [_sleep_then(0.0, "only")], fault_plan=_rate1(FaultKind.GUARD_EXCEPTION)
    )
    assert out.failed
    assert out.losers[0].guard_failed


def test_injected_spawn_failure_raises():
    with pytest.raises(SpawnError, match="thread-start"):
        run_alternatives_thread(
            [_sleep_then(5.0, "a")], fault_plan=_rate1(FaultKind.SPAWN_FAIL)
        )


def test_deterministic_crash_schedule_matches_fork_site():
    """Thread and fork backends consult the same child-site decisions."""
    plan = FaultPlan.crashes(seed=4, rate=0.3)  # dooms index 0 only
    out = run_alternatives_thread(
        [_sleep_then(0.0, "doomed"), _sleep_then(0.05, "backup")],
        fault_plan=plan,
    )
    assert out.value == "backup"
    assert [f["index"] for f in out.extras["injected_faults"]] == [0]


class TestCancelToken:
    def test_token_api(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled

    def test_workspace_carries_token_and_winner_state_is_clean(self):
        seen = {}

        def observer(ws):
            seen["token"] = ws.get("_cancel")
            ws["out"] = 1
            return "ok"

        out = run_alternatives_thread([observer])
        assert isinstance(seen["token"], CancelToken)
        assert "_cancel" not in out.extras["state"]
        assert out.extras["state"]["out"] == 1

    def test_cooperative_loser_observes_cancellation(self):
        witnessed = []

        def cooperative(ws):
            token = ws["_cancel"]
            deadline = time.perf_counter() + 10.0
            while not token.cancelled:
                if time.perf_counter() > deadline:  # pragma: no cover
                    return "never-cancelled"
                time.sleep(0.005)
            witnessed.append(True)
            raise RuntimeError("cancelled")  # loser bows out

        out = run_alternatives_thread(
            [cooperative, _sleep_then(0.05, "fast")],
            elimination=EliminationPolicy.SYNCHRONOUS,
        )
        assert out.value == "fast"
        assert witnessed == [True]
        # synchronous elimination joined the cooperating loser out
        assert out.extras["uncollected"] == 0
        assert out.extras["elimination_policy"] == "sync"


class TestEliminationParameter:
    def test_asynchronous_leaves_oblivious_losers_running(self):
        out = run_alternatives_thread(
            [_sleep_then(0.02, "fast"), _sleep_then(1.0, "oblivious")],
            elimination=EliminationPolicy.ASYNCHRONOUS,
        )
        assert out.value == "fast"
        assert out.extras["uncollected"] == 1
        assert out.extras["elimination_policy"] == "async"

    def test_elimination_threads_through_run_alternatives(self):
        out = run_alternatives(
            [_sleep_then(0.02, "fast"), _sleep_then(0.3, "slow")],
            backend="thread",
            elimination=EliminationPolicy.SYNCHRONOUS,
        )
        assert out.value == "fast"
        assert out.extras["elimination_policy"] == "sync"
