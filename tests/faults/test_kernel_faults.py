"""Fault hooks inside the simulation kernel: message drop/delay and
compute stalls — deterministic, and visible in traces and stats."""

from repro.core.alternative import Alternative
from repro.core.worlds import run_alternatives_sim
from repro.faults.plan import FaultKind, FaultPlan
from repro.kernel import Kernel, TIMEOUT


def _chat(kernel):
    """One sender, one receiver with a recv timeout; returns the pids."""

    def receiver(ctx):
        msg = yield ctx.recv(timeout=1.0)
        return "timeout" if msg is TIMEOUT else msg.data

    def sender(ctx, dst):
        yield ctx.send(dst, "payload")
        return "sent"

    rpid = kernel.spawn(receiver)
    kernel.spawn(sender, rpid)
    return rpid


class TestMessageFaults:
    def test_dropped_message_times_out_receiver(self):
        k = Kernel(
            cpus=4,
            trace=True,
            fault_plan=FaultPlan(seed=0, rates={FaultKind.MSG_DROP: 1.0}),
        )
        rpid = _chat(k)
        k.run()
        assert k.result_of(rpid) == "timeout"
        assert any(f["kind"] == "msg-drop" for f in k.faults_injected)
        assert any(e.kind == "fault-msg-drop" for e in k.trace.events)

    def test_quiet_plan_delivers_normally(self):
        k = Kernel(cpus=4, fault_plan=FaultPlan.quiet())
        rpid = _chat(k)
        k.run()
        assert k.result_of(rpid) == "payload"
        assert k.faults_injected == []

    def test_delayed_message_arrives_later(self):
        plan = FaultPlan(
            seed=0, rates={FaultKind.MSG_DELAY: 1.0}, msg_delay_s=0.5
        )
        k = Kernel(cpus=4, fault_plan=plan)

        def receiver(ctx):
            msg = yield ctx.recv(timeout=5.0)
            return "timeout" if msg is TIMEOUT else msg.data

        def sender(ctx, dst):
            yield ctx.send(dst, "late")

        rpid = k.spawn(receiver)
        k.spawn(sender, rpid)
        k.run()
        assert k.result_of(rpid) == "late"  # delayed, not lost
        delays = [f for f in k.faults_injected if f["kind"] == "msg-delay"]
        assert delays and delays[0]["delay_s"] == 0.5
        assert k.now >= 0.5  # virtual clock advanced through the delay

    def test_delay_beyond_recv_timeout_behaves_as_loss(self):
        plan = FaultPlan(
            seed=0, rates={FaultKind.MSG_DELAY: 1.0}, msg_delay_s=2.0
        )
        k = Kernel(cpus=4, fault_plan=plan)
        rpid = _chat(k)  # receiver waits only 1.0 virtual second
        k.run()
        assert k.result_of(rpid) == "timeout"

    def test_drop_schedule_is_per_message_deterministic(self):
        def run_once():
            plan = FaultPlan(seed=7, rates={FaultKind.MSG_DROP: 0.4})
            k = Kernel(cpus=4, fault_plan=plan)

            def receiver(ctx):
                got = []
                for _ in range(10):
                    msg = yield ctx.recv(timeout=1.0)
                    got.append("lost" if msg is TIMEOUT else msg.data)
                return got

            def sender(ctx, dst):
                for i in range(10):
                    yield ctx.send(dst, i)
                    yield ctx.compute(2.0)  # keep sends ahead of timeouts

            rpid = k.spawn(receiver)
            k.spawn(sender, rpid)
            k.run()
            return k.result_of(rpid), [f["msg_id"] for f in k.faults_injected]

        first, second = run_once(), run_once()
        assert first == second
        received, dropped = first
        assert "lost" in received and dropped  # the 40% rate really bit


class TestComputeStalls:
    def test_stall_extends_virtual_time(self):
        def worker(ctx):
            yield ctx.compute(1.0)
            return "done"

        base = Kernel(cpus=1, fault_plan=FaultPlan.quiet())
        base.spawn(worker)
        base.run()

        stalled = Kernel(
            cpus=1,
            fault_plan=FaultPlan(seed=0, rates={FaultKind.STALL: 1.0}, stall_s=0.25),
        )
        stalled.spawn(worker)
        stalled.run()
        assert stalled.now > base.now
        assert any(f["kind"] == "stall" for f in stalled.faults_injected)

    def test_stall_does_not_change_results_or_log(self):
        """Faults perturb timing, never the replay log's contents."""

        def worker(ctx):
            yield ctx.compute(0.5)
            yield ctx.put("x", 9)
            return (yield ctx.get("x"))

        outs = []
        for plan in (FaultPlan.quiet(), FaultPlan(seed=0, rates={FaultKind.STALL: 1.0})):
            k = Kernel(cpus=2, fault_plan=plan)
            pid = k.spawn(worker)
            k.run()
            outs.append(k.result_of(pid))
        assert outs[0] == outs[1] == 9


class TestSimBlocks:
    def test_sim_block_outcome_deterministic_under_faults(self):
        plan_kw = dict(seed=3, rates={FaultKind.STALL: 0.5}, stall_s=0.2)

        def run_once():
            out, kernel = run_alternatives_sim(
                [
                    Alternative(lambda ws: "fast", name="fast", sim_cost=1.0),
                    Alternative(lambda ws: "slow", name="slow", sim_cost=3.0),
                ],
                fault_plan=FaultPlan(**plan_kw),
            )
            return out.winner.name, out.elapsed_s, kernel.faults_injected

        first, second = run_once(), run_once()
        assert first == second

    def test_sim_faults_can_reorder_the_race(self):
        """A stalled favourite loses: the schedule decides, reproducibly."""
        alts = [
            Alternative(lambda ws: "a", name="a", sim_cost=1.0),
            Alternative(lambda ws: "b", name="b", sim_cost=1.1),
        ]
        quiet, _ = run_alternatives_sim(alts, fault_plan=FaultPlan.quiet())
        assert quiet.winner.name == "a"
        # stall everything by far more than the 0.1 cost gap: both stall,
        # but per-(wid, op) streams mean the *amounts* differ by world —
        # whichever wins, it must win identically every time
        noisy_kw = dict(seed=1, rates={FaultKind.STALL: 1.0}, stall_s=5.0)
        w1, _ = run_alternatives_sim(alts, fault_plan=FaultPlan(**noisy_kw))
        w2, _ = run_alternatives_sim(alts, fault_plan=FaultPlan(**noisy_kw))
        assert w1.winner.name == w2.winner.name
