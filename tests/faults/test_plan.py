"""FaultPlan: seeded, pure, order-independent fault decisions."""

import os
import pickle

import pytest

from repro.faults.plan import (
    CHILD_SITE,
    COMPUTE_SITE,
    KILL_SITE,
    MESSAGE_SITE,
    SITE_KINDS,
    SPAWN_SITE,
    FaultDecision,
    FaultKind,
    FaultPlan,
)

ALL_RATES = {kind: 0.25 for kind in FaultKind}


def _full_schedule(plan, blocks=3, alts=4, attempts=3):
    """Every child/spawn/kill decision for a grid of keys."""
    out = []
    for site in (CHILD_SITE, SPAWN_SITE, KILL_SITE):
        for b in range(blocks):
            for i in range(alts):
                for a in range(attempts):
                    out.append((site, b, i, a, plan.decide(site, b, i, a)))
    for m in range(20):
        out.append((MESSAGE_SITE, m, plan.decide(MESSAGE_SITE, m)))
    for w in range(5):
        for op in range(5):
            out.append((COMPUTE_SITE, w, op, plan.decide(COMPUTE_SITE, w, op)))
    return out


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=42, rates=dict(ALL_RATES))
        b = FaultPlan(seed=42, rates=dict(ALL_RATES))
        assert _full_schedule(a) == _full_schedule(b)
        assert a.schedule(0, 8, attempts=3) == b.schedule(0, 8, attempts=3)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, rates=dict(ALL_RATES))
        b = FaultPlan(seed=2, rates=dict(ALL_RATES))
        assert _full_schedule(a) != _full_schedule(b)

    def test_decide_is_pure(self):
        plan = FaultPlan.crashes(seed=7, rate=0.5)
        first = plan.decide(CHILD_SITE, 0, 3, 1)
        for _ in range(5):
            assert plan.decide(CHILD_SITE, 0, 3, 1) == first

    def test_order_independent(self):
        """Querying keys in a different order cannot perturb decisions."""
        keys = [(b, i, a) for b in range(2) for i in range(4) for a in range(2)]
        plan = FaultPlan(seed=9, rates=dict(ALL_RATES))
        forward = {k: plan.decide(CHILD_SITE, *k) for k in keys}
        backward = {k: plan.decide(CHILD_SITE, *k) for k in reversed(keys)}
        assert forward == backward

    def test_attempt_number_rerolls(self):
        """Retries re-roll: the same child can be doomed then spared."""
        plan = FaultPlan.crashes(seed=1, rate=0.6)
        fired = {
            (i, a): plan.decide(CHILD_SITE, 0, i, a).fires
            for i in range(3)
            for a in range(4)
        }
        assert any(fired[(i, 0)] and not fired[(i, 1)] for i in range(3))

    def test_survives_pickle(self):
        """A plan shipped to another process must decide identically."""
        plan = FaultPlan(seed=13, rates=dict(ALL_RATES))
        clone = pickle.loads(pickle.dumps(plan))
        assert _full_schedule(clone) == _full_schedule(plan)

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
    def test_forked_child_computes_same_decision(self):
        plan = FaultPlan(seed=5, rates=dict(ALL_RATES))
        parent_view = plan.decide(CHILD_SITE, 0, 1, 0)
        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            os.close(r)
            os.write(w, pickle.dumps(plan.decide(CHILD_SITE, 0, 1, 0)))
            os.close(w)
            os._exit(0)
        os.close(w)
        child_view = pickle.loads(os.read(r, 1 << 16))
        os.close(r)
        os.waitpid(pid, 0)
        assert child_view == parent_view


class TestDecisionProcedure:
    def test_quiet_plan_never_fires(self):
        plan = FaultPlan.quiet()
        assert all(not d.fires for *_, d in _full_schedule(plan))

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=0, rates={FaultKind.SPAWN_FAIL: 1.0})
        for i in range(10):
            assert plan.decide(SPAWN_SITE, 0, i, 0).kind is FaultKind.SPAWN_FAIL

    def test_kinds_only_fire_at_their_site(self):
        plan = FaultPlan(seed=3, rates=dict(ALL_RATES))
        for site, kinds in SITE_KINDS.items():
            for key in range(30):
                d = plan.decide(site, key, 0, 0) if site in (
                    CHILD_SITE, SPAWN_SITE, KILL_SITE
                ) else plan.decide(site, key, 0)
                if d.fires:
                    assert d.kind in kinds

    def test_enabling_extra_kind_does_not_reshuffle_earlier_ones(self):
        """One uniform draw per kind, always: adding GUARD_EXCEPTION to the
        plan cannot change which children CRASH (CRASH draws first)."""
        only_crash = FaultPlan(seed=11, rates={FaultKind.CRASH: 0.3})
        crash_plus = FaultPlan(
            seed=11,
            rates={FaultKind.CRASH: 0.3, FaultKind.GUARD_EXCEPTION: 0.3},
        )
        for i in range(40):
            a = only_crash.decide(CHILD_SITE, 0, i, 0)
            b = crash_plus.decide(CHILD_SITE, 0, i, 0)
            if a.kind is FaultKind.CRASH:
                assert b.kind is FaultKind.CRASH
            if b.kind is FaultKind.CRASH:
                assert a.kind is FaultKind.CRASH

    def test_param_carries_the_right_knob(self):
        plan = FaultPlan(
            seed=0,
            rates={FaultKind.HANG: 1.0},
            hang_s=7.5,
        )
        d = plan.decide(CHILD_SITE, 0, 0, 0)
        assert d.kind is FaultKind.HANG and d.param == 7.5
        delay = FaultPlan(
            seed=0, rates={FaultKind.MSG_DELAY: 1.0}, msg_delay_s=0.25
        ).decide(MESSAGE_SITE, 4)
        assert delay.kind is FaultKind.MSG_DELAY and delay.param == 0.25
        stall = FaultPlan(
            seed=0, rates={FaultKind.STALL: 1.0}, stall_s=0.125
        ).decide(COMPUTE_SITE, 1, 2)
        assert stall.kind is FaultKind.STALL and stall.param == 0.125

    def test_decision_truthiness(self):
        assert not FaultDecision()
        assert not FaultDecision().fires
        assert FaultDecision(FaultKind.CRASH)
        assert FaultDecision(FaultKind.CRASH).fires


class TestValidation:
    def test_unknown_site_raises(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.quiet().decide("disk", 0)

    def test_rate_out_of_range_raises(self):
        with pytest.raises(ValueError, match=r"in \[0, 1\]"):
            FaultPlan(seed=0, rates={FaultKind.CRASH: 1.5})

    def test_non_faultkind_rate_key_raises(self):
        with pytest.raises(TypeError, match="FaultKind"):
            FaultPlan(seed=0, rates={"crash": 0.5})

    def test_crashes_classmethod(self):
        plan = FaultPlan.crashes(seed=4, rate=0.3)
        assert plan.rates == {FaultKind.CRASH: 0.3}
        assert plan.seed == 4

    def test_schedule_shape(self):
        sched = FaultPlan.crashes(seed=0, rate=0.3).schedule(0, 4, attempts=2)
        assert len(sched) == 8
        assert {(i, a) for i, a, _ in sched} == {
            (i, a) for a in range(2) for i in range(4)
        }
