"""The serve fault site: request bursts and slow tenants, deterministically."""

import time

import pytest

from repro.faults.plan import SERVE_SITE, FaultKind, FaultPlan
from repro.serve import SpeculationService, WorldBudget


def quick(ws):
    return "ok"


def test_serve_site_decisions_are_deterministic():
    a = FaultPlan(seed=7, rates={FaultKind.REQUEST_BURST: 0.5})
    b = FaultPlan(seed=7, rates={FaultKind.REQUEST_BURST: 0.5})
    decisions = [(a.decide(SERVE_SITE, 1, i), b.decide(SERVE_SITE, 1, i)) for i in range(50)]
    assert all(x == y for x, y in decisions)
    assert any(x.fires for x, _ in decisions)
    assert not all(x.fires for x, _ in decisions)


def test_serve_site_params():
    plan = FaultPlan(
        seed=0,
        rates={FaultKind.REQUEST_BURST: 1.0},
        burst_n=5, slow_tenant_s=0.123,
    )
    d = plan.decide(SERVE_SITE, 3, 4)
    assert d.kind is FaultKind.REQUEST_BURST
    assert d.param == 5.0
    slow_plan = FaultPlan(seed=0, rates={FaultKind.SLOW_TENANT: 1.0}, slow_tenant_s=0.123)
    d2 = slow_plan.decide(SERVE_SITE, 3, 4)
    assert d2.kind is FaultKind.SLOW_TENANT
    assert d2.param == pytest.approx(0.123)


def test_request_burst_floods_the_queue():
    plan = FaultPlan(seed=1, rates={FaultKind.REQUEST_BURST: 1.0}, burst_n=4)
    with SpeculationService(WorldBudget(2), workers=2, fault_plan=plan) as svc:
        ticket = svc.submit("storm", [quick])
        assert ticket.result(timeout=10).committed
        # the burst admitted 3 shadow copies alongside the real request
        deadline = time.monotonic() + 5.0
        while svc.queue.admitted < 4 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert svc.queue.admitted == 4
    burst_notes = [
        rec for rec in plan.injections if rec["kind"] == FaultKind.REQUEST_BURST.value
    ]
    assert len(burst_notes) == 1
    assert burst_notes[0]["tenant"] == "storm"


def test_shadow_requests_do_not_resolve_tickets():
    plan = FaultPlan(seed=1, rates={FaultKind.REQUEST_BURST: 1.0}, burst_n=3)
    with SpeculationService(WorldBudget(2), workers=2, fault_plan=plan) as svc:
        ticket = svc.submit("storm", [quick])
        result = ticket.result(timeout=10)
        assert result.committed
        # only the real request has a ticket; shadows run and vanish
        with svc._tickets_lock:
            assert svc._tickets == {}


def test_slow_tenant_charges_extra_latency():
    plan = FaultPlan(seed=3, rates={FaultKind.SLOW_TENANT: 1.0}, slow_tenant_s=0.15)
    with SpeculationService(WorldBudget(2), workers=1, fault_plan=plan) as svc:
        result = svc.submit("laggard", [quick]).result(timeout=10)
    assert result.committed
    assert result.latency_s >= 0.15
    slow_notes = [
        rec for rec in plan.injections if rec["kind"] == FaultKind.SLOW_TENANT.value
    ]
    assert len(slow_notes) == 1


def test_at_most_one_serve_fault_per_request():
    # both kinds enabled: SITE_KINDS order tries REQUEST_BURST first,
    # and at most one fires per (tenant, seq) key
    plan = FaultPlan(
        seed=5,
        rates={FaultKind.REQUEST_BURST: 1.0, FaultKind.SLOW_TENANT: 1.0},
    )
    d = plan.decide(SERVE_SITE, 9, 9)
    assert d.kind is FaultKind.REQUEST_BURST


def test_quiet_plan_never_bursts():
    plan = FaultPlan.quiet()
    with SpeculationService(WorldBudget(2), workers=1, fault_plan=plan) as svc:
        svc.submit("t", [quick]).result(timeout=10)
        assert svc.queue.admitted == 1
    assert plan.injections == []
