"""SpeculationService end-to-end: commits, budget, journal, preemption."""

import time

import pytest

from repro.errors import AdmissionRejected, ServiceStopped
from repro.journal import CommitJournal, MemoryJournalStorage
from repro.obs import Observability
from repro.serve import (
    AdmissionQueue,
    FixedSpeculationPolicy,
    SpeculationService,
    WorldBudget,
)
from repro.serve.policy import SpeculationDecision


def fast(ws):
    time.sleep(0.002)
    ws["who"] = "fast"
    return "fast"


def slow(ws):
    time.sleep(0.03)
    ws["who"] = "slow"
    return "slow"


def failing(ws):
    raise RuntimeError("nope")


def test_submit_commits_and_carries_outcome():
    with SpeculationService(WorldBudget(4), workers=2) as svc:
        result = svc.submit("t", [fast, slow]).result(timeout=10)
    assert result.committed
    assert result.value in ("fast", "slow")
    assert result.outcome.winner is not None
    assert result.latency_s > 0
    assert result.backend in ("thread", "sequential")


def test_all_failing_alternatives_report_failed():
    with SpeculationService(WorldBudget(2), workers=1, supervisor_retries=0) as svc:
        result = svc.submit("t", [failing]).result(timeout=10)
    assert result.status == "failed"
    assert result.outcome is not None
    assert result.outcome.winner is None


def test_submit_requires_running_service():
    svc = SpeculationService(WorldBudget(2))
    with pytest.raises(ServiceStopped):
        svc.submit("t", [fast])


def test_backpressure_surfaces_at_submit():
    # one slot, tiny queue, slow work: the backlog fills
    queue = AdmissionQueue(depth=2, tenant_depth=None)
    with SpeculationService(WorldBudget(1), queue=queue, workers=1) as svc:
        tickets = []
        rejected = 0
        for _ in range(12):
            try:
                tickets.append(svc.submit("t", [slow]))
            except AdmissionRejected as exc:
                rejected += 1
                assert exc.retry_after_s > 0
        assert rejected > 0
        for t in tickets:
            t.result(timeout=30)


def test_budget_high_watermark_never_exceeds_slots():
    budget = WorldBudget(3)
    with SpeculationService(budget, workers=4) as svc:
        tickets = [svc.submit(f"t{i % 4}", [fast, slow]) for i in range(16)]
        for t in tickets:
            assert t.result(timeout=30).status in ("committed", "failed")
    assert budget.high_watermark <= 3
    assert budget.in_use == 0


def test_deadline_expired_in_queue_is_shed():
    with SpeculationService(WorldBudget(1), workers=1) as svc:
        blocker = svc.submit("a", [slow])  # occupies the only slot
        doomed = svc.submit("b", [fast], deadline_s=0.001)
        result = doomed.result(timeout=10)
        blocker.result(timeout=10)
    assert result.status == "shed"
    assert "deadline" in result.reason


def test_stop_cancels_queued_requests():
    svc = SpeculationService(WorldBudget(1), workers=1).start()
    busy = svc.submit("a", [slow])
    queued = [svc.submit("b", [fast]) for _ in range(3)]
    svc.stop(timeout=5.0)
    statuses = {t.result(timeout=5).status for t in queued}
    assert statuses <= {"cancelled", "committed", "shed"}
    assert "cancelled" in statuses or all(t.done for t in queued)
    busy.result(timeout=5)


def test_exactly_once_commit_in_journal():
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    with SpeculationService(WorldBudget(4), workers=2, journal=journal) as svc:
        tickets = [svc.submit("t", [fast]) for _ in range(6)]
        seqs = [t.seq for t in tickets]
        for t in tickets:
            assert t.result(timeout=10).committed
    # one applied block transaction per request seq, none duplicated
    blocks = [
        r["data"]["block"] for r in journal.records()
        if r["t"] == "intent" and r["kind"] == "block"
    ]
    assert sorted(blocks) == sorted(seqs)
    for seq in seqs:
        assert journal.status(
            [r["seq"] for r in journal.records()
             if r["t"] == "intent" and r["kind"] == "block"
             and r["data"]["block"] == seq][0]
        ) == "applied"


def test_restarted_service_replays_journalled_wins():
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    with SpeculationService(WorldBudget(2), workers=1, journal=journal) as svc:
        ticket = svc.submit("t", [fast])
        first = ticket.result(timeout=10)
        assert first.committed and not first.replayed
        seq = ticket.seq

    # a new incarnation over the surviving journal bytes
    journal2 = CommitJournal(storage=storage)
    svc2 = SpeculationService(WorldBudget(2), workers=1, journal=journal2).start()
    try:
        # force the same request seq through the queue: simulate the
        # service redelivering an already-committed request after crash
        from repro.core.worlds import _normalize
        from repro.serve.admission import ServeRequest
        from repro.serve.service import ServeTicket

        request = ServeRequest(tenant="t", alternatives=_normalize([fast]))
        request.seq = seq
        ticket2 = ServeTicket("t", seq)
        with svc2._tickets_lock:
            svc2._tickets[seq] = ticket2
        svc2.queue.offer(request)
        replayed = ticket2.result(timeout=10)
    finally:
        svc2.stop()
    assert replayed.committed
    assert replayed.replayed
    assert replayed.value == first.value


class TwoPhasePolicy:
    """Test double: K=2 with a long stagger on the spare, so preemption
    has a deterministic window to land in."""

    def __init__(self, stagger_s):
        self.stagger_s = stagger_s

    def decide(self, names, granted, load=0.0):
        k = min(2, len(names), max(granted, 1))
        return SpeculationDecision(
            order=list(range(k)), staggers=[i * self.stagger_s for i in range(k)],
        )

    def observe(self, outcome, names=None, launched=None):
        return None


def test_priority_preempts_speculative_world():
    def plodding(ws):
        time.sleep(0.4)
        return "plodding"

    budget = WorldBudget(2)
    policy = TwoPhasePolicy(stagger_s=0.25)
    with SpeculationService(budget, policy=policy, workers=2) as svc:
        low = svc.submit("low", [plodding, plodding], priority=0)
        time.sleep(0.05)  # low holds both slots; its spare is still staggered
        high = svc.submit("high", [fast], priority=5)
        high_result = high.result(timeout=10)
        low_result = low.result(timeout=10)
    assert high_result.committed  # got a slot despite a full pool
    assert low_result.committed  # its firm world still won
    assert low_result.preempted_slots == 1
    preempted_losers = [
        l for l in low_result.outcome.losers if "preempted" in (l.error or "")
    ]
    assert len(preempted_losers) == 1
    assert budget.high_watermark <= 2


def test_service_metrics_and_spans():
    obs = Observability()
    budget = WorldBudget(4, obs=obs)
    with SpeculationService(budget, workers=2, obs=obs) as svc:
        for _ in range(4):
            assert svc.submit("t", [fast, slow]).result(timeout=10).committed
    reg = obs.registry
    assert reg.get("mw_serve_requests_total").value(tenant="t", status="committed") == 4.0
    assert reg.get("mw_serve_request_latency_seconds").count() == 4
    assert reg.get("mw_serve_k_chosen").count() == 4
    assert reg.get("mw_serve_slots_hwm").value() <= 4.0
    obs.finalize()
    serve_spans = [s for s in obs.tracer.spans if s.cat == "serve"]
    assert len(serve_spans) == 4
    assert all(s.disposition == "committed" for s in serve_spans)


def test_naive_policy_holds_more_slots_than_adaptive():
    # the naive spawn-all-N arm grabs N slots per request; the adaptive
    # arm backs off as the pool load rises
    naive_budget = WorldBudget(4)
    with SpeculationService(
        naive_budget, policy=FixedSpeculationPolicy(), workers=4
    ) as svc:
        tickets = [svc.submit(f"t{i}", [fast, slow, slow, slow]) for i in range(8)]
        for t in tickets:
            t.result(timeout=30)
    assert naive_budget.high_watermark == 4  # pegged at the pool limit


def test_shutdown_sheds_backlog_with_retry_hint():
    # one worker busy on slow work; the backlog at stop(drain=False) is
    # shed as cancelled + retry_after_s — a router's cue to re-route —
    # under the distinct shutdown shed label
    obs = Observability()
    queue = AdmissionQueue(depth=16, tenant_depth=None, obs=obs)
    svc = SpeculationService(WorldBudget(1), queue=queue, workers=1, obs=obs)
    svc.start()
    blocker = svc.submit("a", [slow])
    backlog = [svc.submit("b", [fast]) for _ in range(4)]
    time.sleep(0.005)
    svc.stop(drain=False)
    assert blocker.result(timeout=10).status in ("committed", "cancelled")
    shed = [t.result(timeout=10) for t in backlog]
    cancelled = [r for r in shed if r.status == "cancelled"]
    assert cancelled, "stop(drain=False) must shed the backlog"
    for r in cancelled:
        assert r.reason == "service stopped"
        assert r.retry_after_s > 0
    reg = obs.registry
    assert reg.get("mw_serve_shed_total").value(reason="shutdown") == len(cancelled)


def test_graceful_stop_still_drains_by_default():
    svc = SpeculationService(WorldBudget(1), workers=1)
    svc.start()
    tickets = [svc.submit("t", [fast]) for _ in range(4)]
    svc.stop()
    assert all(t.result(timeout=10).committed for t in tickets)


def test_crash_suppresses_resolution_but_journals_survive():
    # the cluster failover primitive: a crashed service reports nothing,
    # but whatever committed before the crash is in the journal
    journal = CommitJournal(storage=MemoryJournalStorage())
    svc = SpeculationService(WorldBudget(2), workers=2, journal=journal)
    svc.start()
    tickets = [svc.submit("t", [fast]) for _ in range(3)]
    for t in tickets:
        t.result(timeout=10)  # fully served: journaled
    svc.crash()
    applied = [
        r for r in journal.records()
        if r.get("t") == "intent" and r.get("kind") == "block"
    ]
    assert len(applied) == 3
    # crash twice is fine; submit after crash is refused
    svc.crash()
    with pytest.raises(ServiceStopped):
        svc.submit("t", [fast])


def test_on_resolve_hook_sees_every_resolution():
    seen = []
    svc = SpeculationService(
        WorldBudget(2), workers=2, on_resolve=lambda req, res: seen.append(
            (req.seq, res.status)
        )
    )
    svc.start()
    tickets = [svc.submit("t", [fast]) for _ in range(3)]
    results = [t.result(timeout=10) for t in tickets]
    svc.stop()
    assert all(r.committed for r in results)
    assert sorted(s for s, _ in seen) == sorted(t.result().seq for t in tickets)
    assert all(status == "committed" for _, status in seen)
