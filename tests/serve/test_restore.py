"""SpeculationService.restore: cold restart from the journal alone.

A full-process crash leaves only the WAL. ``restore`` must rebuild the
service, replay applied commits idempotently (byte-identical values,
never re-run), re-admit sealed-but-unapplied requests under their
original seq, bump the seq floor past everything journalled, and
settle unrebuildable admits as ``unrecoverable`` instead of retrying
them forever.
"""

import threading

from repro.journal import CommitJournal, MemoryJournalStorage, find_block_win
from repro.serve import SpeculationService, WorldBudget


def build_alternatives(spec):
    n = spec["n"]

    def compute(ws):
        ws["n"] = n
        return n * 11

    return [compute]


def _crashed_service_journal(n_requests=4, block=None):
    """Run a service over a journal, crash it, return the storage.

    ``block`` (an Event) keeps the worker from ever serving: every
    admit stays sealed-but-unapplied, the shape restore must re-admit.
    """
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    svc = SpeculationService(
        WorldBudget(2), workers=1, journal=journal, journal_admission=True
    )
    svc.start()
    tickets = []
    try:
        if block is not None:
            svc.submit("jam", [lambda ws: block.wait(30)], spec=None)
        for i in range(n_requests):
            tickets.append(
                svc.submit("t", build_alternatives({"n": i}), spec={"n": i})
            )
        if block is None:
            for t in tickets:
                t.result(timeout=30)
    finally:
        svc.crash()
    return storage, [t.seq for t in tickets]


def test_restore_replays_applied_commits_idempotently():
    storage, seqs = _crashed_service_journal()
    journal = CommitJournal(storage=storage)
    svc, report = SpeculationService.restore(
        journal, WorldBudget(2), build_alternatives=build_alternatives,
        workers=1,
    )
    try:
        assert sorted(seqs) == [
            s for s in report.already_applied if s in seqs
        ], "every committed request is recognised as already applied"
        assert report.re_admitted == []
        # the journalled values are replayable and byte-identical
        for i, seq in enumerate(seqs):
            win = find_block_win(journal, seq)
            assert win is not None and win["value"] == i * 11
    finally:
        svc.stop()


def test_restore_re_admits_sealed_unapplied_under_original_seq():
    block = threading.Event()
    storage, seqs = _crashed_service_journal(block=block)
    block.set()
    journal = CommitJournal(storage=storage)
    svc, report = SpeculationService.restore(
        journal, WorldBudget(2), build_alternatives=build_alternatives,
        workers=2,
    )
    try:
        assert sorted(report.re_admitted) == sorted(seqs)
        for i, seq in enumerate(seqs):
            result = report.tickets[seq].result(timeout=30)
            assert result.committed
            assert result.seq == seq, "original seq survives the restart"
            assert result.value == i * 11
            # exactly-once: the replayed run applied one block win
            assert find_block_win(journal, seq)["value"] == i * 11
    finally:
        svc.stop()


def test_restore_bumps_seq_floor_past_journal():
    storage, seqs = _crashed_service_journal()
    journal = CommitJournal(storage=storage)
    svc, report = SpeculationService.restore(
        journal, WorldBudget(2), build_alternatives=build_alternatives,
        workers=1,
    )
    try:
        assert report.seq_floor > max(seqs)
        ticket = svc.submit("t", build_alternatives({"n": 9}), spec={"n": 9})
        assert ticket.seq >= report.seq_floor, "no journalled seq is reused"
        assert ticket.result(timeout=30).committed
    finally:
        svc.stop()


def test_restore_drops_specless_admits_as_unrecoverable():
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    txn = journal.begin("admit", request=7, tenant="t", spec=None)
    journal.seal(txn)

    svc, report = SpeculationService.restore(
        journal, WorldBudget(2), build_alternatives=build_alternatives,
        workers=1,
    )
    try:
        assert report.dropped == [7]
        assert report.tickets == {}
        # settled, not retried forever: the admit txn is applied
        assert journal.status(txn) == "applied"
        hit = journal.find_applied("admit", request=7)
        assert hit is not None and hit[1]["status"] == "unrecoverable"
    finally:
        svc.stop()


def test_restore_without_builder_drops_everything_sealed():
    block = threading.Event()
    storage, seqs = _crashed_service_journal(n_requests=2, block=block)
    block.set()
    journal = CommitJournal(storage=storage)
    svc, report = SpeculationService.restore(journal, WorldBudget(2), workers=1)
    try:
        # the jam request (spec=None) is dropped too — only seqs matter
        assert set(seqs) <= set(report.dropped)
        assert report.re_admitted == []
    finally:
        svc.stop()
