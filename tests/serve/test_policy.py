"""AlternativeStats and the adaptive speculation policy."""

import pytest

from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.errors import ServeError
from repro.obs import Observability
from repro.serve import (
    AdaptiveSpeculationPolicy,
    AlternativeStats,
    FixedSpeculationPolicy,
)


def outcome(winner_name, winner_idx=0, losers=()):
    return BlockOutcome(
        winner=AlternativeResult(
            index=winner_idx, name=winner_name, value=1, succeeded=True,
            elapsed_s=0.01,
        ),
        elapsed_s=0.01,
        losers=[
            AlternativeResult(index=i, name=n, error="lost", elapsed_s=0.02)
            for i, n in losers
        ],
    )


# -- stats ----------------------------------------------------------------
def test_stats_track_wins_and_latency():
    s = AlternativeStats(alpha=0.5)
    s.observe("a", won=True, latency_s=0.1)
    s.observe("a", won=True, latency_s=0.2)
    s.observe("a", won=False, latency_s=0.3)
    rec = s.record("a")
    assert rec.attempts == 3
    assert rec.wins == 2
    assert 0.0 < rec.win_ewma < 1.0
    assert 0.1 < rec.latency_ewma_s < 0.3


def test_stats_observe_outcome_feeds_winner_and_losers():
    s = AlternativeStats()
    s.observe_outcome(outcome("fast", 0, losers=[(1, "slow")]))
    assert s.record("fast").wins == 1
    assert s.record("slow").wins == 0
    assert s.record("slow").attempts == 1


def test_abandoned_launches_are_charged_losses():
    # asynchronous elimination abandons still-running losers without a
    # loser entry; launched-but-unreported names must not stay "unseen"
    s = AlternativeStats()
    s.observe_outcome(outcome("fast"), launched=["fast", "slow"])
    rec = s.record("slow")
    assert rec is not None
    assert rec.attempts == 1 and rec.wins == 0
    assert rec.latency_ewma_s == pytest.approx(0.01)  # at least the winner's
    assert s.score("fast") > s.score("slow")


def test_unseen_alternatives_score_optimistically():
    s = AlternativeStats()
    s.observe("seen", won=True, latency_s=0.01)
    assert s.score("never-run") > s.score("seen")


def test_stats_obs_metrics_mirror():
    obs = Observability()
    s = AlternativeStats(obs=obs)
    s.observe("a", won=True, latency_s=0.05)
    assert obs.registry.get("mw_serve_alt_attempts_total").value(alt="a") == 1.0
    assert obs.registry.get("mw_serve_alt_wins_total").value(alt="a") == 1.0
    assert obs.registry.get("mw_serve_alt_latency_seconds").count(alt="a") == 1


def test_stats_warm_start_from_registry():
    obs = Observability()
    s = AlternativeStats(obs=obs)
    for _ in range(4):
        s.observe("a", won=True, latency_s=0.1)
    s.observe("b", won=False, latency_s=0.2)
    warmed = AlternativeStats.from_registry(obs.registry)
    assert warmed.record("a").attempts == 4
    assert warmed.record("a").win_ewma == 1.0
    assert warmed.record("b").wins == 0
    assert warmed.record("b").latency_ewma_s == pytest.approx(0.2)


def test_stats_bad_alpha():
    with pytest.raises(ValueError):
        AlternativeStats(alpha=0.0)


# -- adaptive policy -------------------------------------------------------
def test_idle_pool_speculates_wide():
    p = AdaptiveSpeculationPolicy()
    d = p.decide(["a", "b", "c"], granted=3, load=0.0)
    assert d.k == 3
    assert d.staggers == [0.0, 0.0, 0.0]  # idle: launch everything at once
    assert d.backend is None
    assert d.reason == "adaptive"


def test_k_capped_by_granted_slots():
    p = AdaptiveSpeculationPolicy()
    d = p.decide(["a", "b", "c", "d"], granted=2, load=0.0)
    assert d.k == 2


def test_saturation_degrades_to_sequential_k1():
    p = AdaptiveSpeculationPolicy(saturation=0.9)
    d = p.decide(["a", "b", "c"], granted=3, load=0.95)
    assert d.k == 1
    assert d.reason == "saturated"
    assert d.backend == "sequential"


def test_confident_winner_runs_alone():
    p = AdaptiveSpeculationPolicy(confident_win=0.9)
    for _ in range(10):  # EWMA from the 0.5 prior needs ~8 wins to clear 0.9
        p.observe(outcome("ace", 0, losers=[(1, "dud")]), ["ace", "dud"])
    d = p.decide(["ace", "dud"], granted=2, load=0.0)
    assert d.k == 1
    assert d.reason == "confident"
    assert d.order == [0]
    assert d.backend is None  # not saturated: stays on the default backend


def test_ranking_prefers_winning_fast_alternative():
    p = AdaptiveSpeculationPolicy(confident_win=1.0)  # EWMA never reaches 1.0
    for _ in range(5):
        p.observe(outcome("good", 1, losers=[(0, "bad")]), ["bad", "good"])
    d = p.decide(["bad", "good"], granted=1, load=0.0)
    assert d.order == [1]  # "good" ranked first despite caller order


def test_staggers_scale_with_load_and_latency():
    p = AdaptiveSpeculationPolicy(stagger_scale=1.0, max_stagger_s=10.0)
    for _ in range(3):
        p.observe(outcome("a", 0, losers=[(1, "b")]), ["a", "b"])
    lat = p.stats.latency_ewma("a")
    d = p.decide(["a", "b"], granted=2, load=0.5)
    assert d.staggers[0] == 0.0
    assert d.staggers[1] == pytest.approx(0.5 * lat, rel=1e-6)


def test_stagger_clamped_to_bounds():
    p = AdaptiveSpeculationPolicy(min_stagger_s=0.002, max_stagger_s=0.01)
    # cold stats + nonzero load -> the floor
    d = p.decide(["a", "b"], granted=2, load=0.5)
    assert d.staggers[1] == pytest.approx(0.002)
    # enormous observed latency -> the ceiling (both seen, "a" favourite)
    for _ in range(3):
        p.stats.observe("a", won=True, latency_s=100.0)
        p.stats.observe("b", won=False, latency_s=100.0)
    d = p.decide(["a", "b"], granted=2, load=0.5)
    assert d.order[0] == 0
    assert d.staggers[1] == pytest.approx(0.01)


def test_zero_alternatives_rejected():
    p = AdaptiveSpeculationPolicy()
    with pytest.raises(ServeError):
        p.decide([], granted=1, load=0.0)


def test_bad_knobs_rejected():
    with pytest.raises(ServeError):
        AdaptiveSpeculationPolicy(saturation=0.0)
    with pytest.raises(ServeError):
        AdaptiveSpeculationPolicy(confident_win=1.5)


# -- wide-K (per request class) --------------------------------------------
def test_io_class_widens_past_grant_cpu_class_stays_clamped():
    """The satellite contract: an I/O-bound tenant class speculates past
    its budget grant on the async backend, while a CPU-bound class is
    clamped tighter than the grant — same policy, same call, different
    ``request_class``."""
    p = AdaptiveSpeculationPolicy(
        class_max_k={"io-probe": 16, "cpu-crunch": 2}
    )
    names = [f"alt{i}" for i in range(16)]
    io = p.decide(names, granted=4, load=0.0, request_class="io-probe")
    assert io.k == 16
    assert io.wide is True
    assert io.reason == "wide"
    assert io.backend == "async"
    cpu = p.decide(names, granted=4, load=0.0, request_class="cpu-crunch")
    assert cpu.k == 2
    assert cpu.wide is False
    assert cpu.reason == "adaptive"
    assert cpu.backend is None


def test_unclassed_request_uses_global_max_k():
    p = AdaptiveSpeculationPolicy(max_k=3, class_max_k={"io": 16})
    d = p.decide([f"a{i}" for i in range(8)], granted=5, load=0.0)
    assert d.k == 3 and not d.wide
    unknown = p.decide(
        [f"a{i}" for i in range(8)], granted=5, load=0.0, request_class="other"
    )
    assert unknown.k == 3 and not unknown.wide


def test_wide_k_bounded_by_alternative_count():
    p = AdaptiveSpeculationPolicy(class_max_k={"io": 100})
    d = p.decide(["a", "b", "c"], granted=1, load=0.0, request_class="io")
    assert d.k == 3  # never more worlds than alternatives
    assert d.wide


def test_saturation_overrides_wide_k():
    # a saturated machine has no spare cycles even for cheap worlds
    p = AdaptiveSpeculationPolicy(class_max_k={"io": 16})
    d = p.decide(
        [f"a{i}" for i in range(16)], granted=4, load=0.95, request_class="io"
    )
    assert d.k == 1
    assert d.reason == "saturated"
    assert not d.wide
    assert d.backend == "sequential"


def test_confident_winner_overrides_wide_k():
    p = AdaptiveSpeculationPolicy(class_max_k={"io": 16}, confident_win=0.9)
    for _ in range(10):
        p.observe(outcome("ace", 0, losers=[(1, "dud")]), ["ace", "dud"])
    d = p.decide(["ace", "dud"], granted=2, load=0.0, request_class="io")
    assert d.k == 1 and d.reason == "confident" and not d.wide


def test_wide_backend_knob():
    p = AdaptiveSpeculationPolicy(class_max_k={"io": 8}, wide_backend="thread")
    d = p.decide([f"a{i}" for i in range(8)], granted=2, load=0.0, request_class="io")
    assert d.wide and d.backend == "thread"


def test_bad_class_cap_rejected():
    with pytest.raises(ServeError):
        AdaptiveSpeculationPolicy(class_max_k={"io": 0})
    with pytest.raises(ServeError):
        AdaptiveSpeculationPolicy(max_k=0)


# -- fixed policy ----------------------------------------------------------
def test_fixed_policy_spawns_everything():
    p = FixedSpeculationPolicy()
    d = p.decide(["a", "b", "c"], granted=1, load=1.0)
    assert d.order == [0, 1, 2]
    assert d.staggers == [0.0, 0.0, 0.0]
    assert d.reason == "fixed"
    p.observe(outcome("a"))  # learns nothing, raises nothing
