"""AdmissionQueue: backpressure, deadline shedding, DRR fairness."""

import time

import pytest

from repro.errors import AdmissionRejected, ServeError
from repro.obs import Observability
from repro.serve import AdmissionQueue, ServeRequest


def req(tenant, **kw):
    return ServeRequest(tenant=tenant, alternatives=[lambda ws: 1], **kw)


def test_fifo_within_a_tenant():
    q = AdmissionQueue(depth=8)
    a1, a2 = req("a"), req("a")
    q.offer(a1)
    q.offer(a2)
    got1, _ = q.take(timeout=0.1)
    got2, _ = q.take(timeout=0.1)
    assert [got1.seq, got2.seq] == [a1.seq, a2.seq]


def test_global_depth_backpressure():
    q = AdmissionQueue(depth=2, tenant_depth=None)
    q.offer(req("a"))
    q.offer(req("b"))
    with pytest.raises(AdmissionRejected) as exc:
        q.offer(req("c"))
    assert exc.value.retry_after_s > 0
    assert exc.value.tenant == "c"
    assert q.rejected == 1


def test_tenant_depth_backpressure():
    q = AdmissionQueue(depth=10, tenant_depth=2)
    q.offer(req("a"))
    q.offer(req("a"))
    with pytest.raises(AdmissionRejected, match="backlog full"):
        q.offer(req("a"))
    q.offer(req("b"))  # other tenants unaffected


def test_take_times_out_empty():
    q = AdmissionQueue()
    request, shed = q.take(timeout=0.02)
    assert request is None and shed == []


def test_round_robin_across_tenants():
    q = AdmissionQueue(depth=16)
    for _ in range(3):
        q.offer(req("a"))
    q.offer(req("b"))
    order = [q.take(timeout=0.1)[0].tenant for _ in range(4)]
    # b must not wait behind a's whole backlog
    assert order.index("b") <= 1
    assert sorted(order) == ["a", "a", "a", "b"]


def test_drr_cost_weighting():
    # an expensive request waits for deficit to accrue; cheap tenants
    # keep flowing meanwhile
    q = AdmissionQueue(depth=16, quantum=1.0)
    q.offer(req("pricey", cost=3.0))
    q.offer(req("cheap", cost=1.0))
    q.offer(req("cheap", cost=1.0))
    served = [q.take(timeout=0.2)[0].tenant for _ in range(3)]
    assert served.count("cheap") == 2
    assert served.count("pricey") == 1
    # the expensive one was not dispatched first
    assert served[0] == "cheap"


def test_expensive_head_does_not_deadlock():
    q = AdmissionQueue(depth=4, quantum=0.25)
    q.offer(req("a", cost=2.0))
    request, _ = q.take(timeout=1.0)
    assert request is not None and request.tenant == "a"


def test_expired_requests_are_shed_at_dispatch():
    q = AdmissionQueue()
    dead = req("a", deadline_s=time.monotonic() - 0.01)
    live = req("a")
    q.offer(dead)
    q.offer(live)
    got, shed = q.take(timeout=0.1)
    assert got.seq == live.seq
    assert [s.seq for s in shed] == [dead.seq]
    assert q.shed == 1


def test_all_expired_returns_shed_without_request():
    q = AdmissionQueue()
    dead = req("a", deadline_s=time.monotonic() - 0.01)
    q.offer(dead)
    got, shed = q.take(timeout=0.1)
    assert got is None
    assert [s.seq for s in shed] == [dead.seq]
    assert len(q) == 0


def test_close_wakes_take_and_rejects_offers():
    q = AdmissionQueue()
    q.close()
    got, _ = q.take(timeout=5.0)
    assert got is None
    with pytest.raises(AdmissionRejected, match="closed"):
        q.offer(req("a"))


def test_drain_empties_everything():
    q = AdmissionQueue()
    q.offer(req("a"))
    q.offer(req("b"))
    q.close()
    drained = q.drain()
    assert len(drained) == 2
    assert len(q) == 0


def test_obs_counters():
    obs = Observability()
    q = AdmissionQueue(depth=1, obs=obs)
    q.offer(req("a"))
    with pytest.raises(AdmissionRejected):
        q.offer(req("a"))
    assert obs.registry.get("mw_serve_admitted_total").value(tenant="a") == 1.0
    assert obs.registry.get("mw_serve_rejected_total").value(tenant="a") == 1.0
    assert obs.registry.get("mw_serve_queue_depth").value() == 1.0


def test_bad_arguments():
    with pytest.raises(ServeError):
        AdmissionQueue(depth=0)
    with pytest.raises(ServeError):
        AdmissionQueue(tenant_depth=0)
    with pytest.raises(ServeError):
        AdmissionQueue(quantum=0)
