"""WorldBudget: grants, quotas, preemption, accounting invariants."""

import threading

import pytest

from repro.errors import QuotaExceeded, ServeError
from repro.obs import Observability
from repro.serve import WorldBudget


def test_reserve_grants_want_when_free():
    b = WorldBudget(8)
    res = b.reserve("a", want=3)
    assert res is not None
    assert res.granted == 3
    assert b.in_use == 3
    assert b.free == 5


def test_elastic_grant_shrinks_to_available():
    b = WorldBudget(4)
    first = b.reserve("a", want=3)
    second = b.reserve("b", want=3)
    assert first.granted == 3
    assert second.granted == 1  # only one slot left, min_slots=1 satisfied


def test_reserve_returns_none_when_no_min_available():
    b = WorldBudget(2)
    b.reserve("a", want=2, min_slots=2)
    assert b.reserve("b", want=1, preempt=False) is None


def test_release_returns_slots_and_is_idempotent():
    b = WorldBudget(4)
    res = b.reserve("a", want=4)
    res.release()
    res.release()
    assert b.in_use == 0
    assert b.tenant_in_use("a") == 0


def test_partial_release():
    b = WorldBudget(4)
    res = b.reserve("a", want=4)
    res.release(3)
    assert res.granted == 1
    assert b.in_use == 1
    res.release()
    assert b.in_use == 0


def test_context_manager_releases():
    b = WorldBudget(4)
    with b.reserve("a", want=2) as res:
        assert b.in_use == 2
        assert res.granted == 2
    assert b.in_use == 0


def test_quota_caps_tenant():
    b = WorldBudget(8, default_quota=2)
    res = b.reserve("a", want=5)
    assert res.granted == 2
    assert b.reserve("a", want=1, preempt=False) is None  # at quota
    assert b.reserve("b", want=1).granted == 1  # other tenants unaffected


def test_explicit_quota_overrides_default():
    b = WorldBudget(8, default_quota=2)
    b.set_quota("big", 6)
    assert b.reserve("big", want=8).granted == 6


def test_min_above_quota_raises():
    b = WorldBudget(8, default_quota=2)
    with pytest.raises(QuotaExceeded):
        b.reserve("a", want=4, min_slots=3)


def test_bad_arguments():
    with pytest.raises(ServeError):
        WorldBudget(0)
    b = WorldBudget(2)
    with pytest.raises(ServeError):
        b.reserve("a", want=0)
    with pytest.raises(ServeError):
        b.reserve("a", want=1, min_slots=2)


def test_preemption_takes_speculative_from_lower_priority():
    b = WorldBudget(4)
    taken = []
    low = b.reserve("low", want=4, min_slots=1, priority=0,
                    on_preempt=lambda n: taken.append(n))
    assert low.granted == 4
    high = b.reserve("high", want=1, min_slots=1, priority=5)
    assert high is not None and high.granted == 1
    assert low.granted == 3
    assert low.preempted == 1
    assert taken == [1]
    assert b.in_use == 4  # never above the pool
    assert b.preempted_slots == 1


def test_preemption_never_takes_the_firm_minimum():
    b = WorldBudget(2)
    low = b.reserve("low", want=2, min_slots=2, priority=0)
    assert low.speculative == 0
    # nothing speculative to claw back: the high-priority request waits
    assert b.reserve("high", want=1, priority=5) is None
    assert low.granted == 2


def test_preemption_lowest_priority_pays_first():
    b = WorldBudget(6)
    mid = b.reserve("mid", want=3, min_slots=1, priority=2)
    low = b.reserve("low", want=3, min_slots=1, priority=1)
    high = b.reserve("high", want=1, min_slots=1, priority=9)
    assert high is not None
    assert low.preempted == 1  # the lower priority paid
    assert mid.preempted == 0


def test_equal_priority_never_preempts():
    b = WorldBudget(2)
    b.reserve("a", want=2, min_slots=1, priority=3)
    assert b.reserve("b", want=1, priority=3) is None


def test_high_watermark_tracks_peak():
    b = WorldBudget(4)
    r1 = b.reserve("a", want=3)
    r1.release()
    b.reserve("b", want=2)
    assert b.high_watermark == 3
    snap = b.snapshot()
    assert snap["high_watermark"] == 3
    assert snap["in_use"] == 2


def test_reserve_blocking_waits_for_release():
    b = WorldBudget(1)
    held = b.reserve("a", want=1)
    got = []

    def waiter():
        got.append(b.reserve_blocking("b", want=1, timeout=5.0))

    t = threading.Thread(target=waiter)
    t.start()
    held.release()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert got[0] is not None and got[0].granted == 1


def test_reserve_blocking_times_out():
    b = WorldBudget(1)
    b.reserve("a", want=1)
    assert b.reserve_blocking("b", want=1, timeout=0.05) is None


def test_obs_gauges_follow_accounting():
    obs = Observability()
    b = WorldBudget(4, obs=obs)
    res = b.reserve("a", want=3)
    assert obs.registry.get("mw_serve_slots_in_use").value() == 3.0
    assert obs.registry.get("mw_serve_slots_hwm").value() == 3.0
    res.release()
    assert obs.registry.get("mw_serve_slots_in_use").value() == 0.0
    assert obs.registry.get("mw_serve_slots_hwm").value() == 3.0
    low = b.reserve("low", want=4, priority=0)
    b.reserve("high", want=1, priority=1)
    assert (
        obs.registry.get("mw_serve_preemptions_total").value(tenant="low") == 1.0
    )
